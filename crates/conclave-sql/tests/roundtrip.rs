//! Property test: pretty-printing a generated AST and re-parsing it
//! round-trips.
//!
//! The AST `Display` implementations print canonical dialect text (uppercase
//! keywords, fully parenthesized expressions). For any generated script
//! `s`, `print(parse(print(s))) == print(s)` must hold — i.e. the printed
//! form is a fixed point of parse∘print, which pins both the printer (it
//! emits valid syntax for every node) and the parser (it reconstructs the
//! same tree, spans aside).

use conclave_ir::expr::BinOp;
use conclave_ir::ops::AggFunc;
use conclave_sql::ast::*;
use conclave_sql::error::Span;
use conclave_sql::parse_script;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const COLUMNS: &[&str] = &["k", "v", "zip", "score", "price", "diagnosis"];
const TABLES: &[&str] = &["ta", "tb", "tc", "scores", "trips"];
const ALIASES: &[&str] = &["x", "y", "lhs", "rhs"];

fn sp() -> Span {
    Span::default()
}

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

fn gen_qual_name(rng: &mut StdRng) -> QualName {
    QualName {
        qualifier: if rng.gen_range(0..4) == 0 {
            Some(pick(rng, ALIASES).to_string())
        } else {
            None
        },
        name: pick(rng, COLUMNS).to_string(),
        span: sp(),
    }
}

fn gen_lit(rng: &mut StdRng) -> Lit {
    match rng.gen_range(0..5) {
        0 => Lit::Int(rng.gen_range(-1000i64..1000)),
        1 => Lit::Float(rng.gen_range(-4000i64..4000) as f64 / 4.0),
        2 => Lit::Str(["a", "it's", "", "x y"][rng.gen_range(0..4usize)].to_string()),
        3 => Lit::Bool(rng.gen_range(0..2) == 0),
        _ => Lit::Null,
    }
}

fn gen_expr(rng: &mut StdRng, depth: usize) -> SqlExpr {
    if depth == 0 || rng.gen_range(0..3) == 0 {
        return if rng.gen_range(0..2) == 0 {
            SqlExpr::Column(gen_qual_name(rng))
        } else {
            SqlExpr::Literal(gen_lit(rng), sp())
        };
    }
    if rng.gen_range(0..5) == 0 {
        return SqlExpr::Not(Box::new(gen_expr(rng, depth - 1)), sp());
    }
    let ops = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::And,
        BinOp::Or,
    ];
    SqlExpr::Binary {
        op: ops[rng.gen_range(0..ops.len())],
        left: Box::new(gen_expr(rng, depth - 1)),
        right: Box::new(gen_expr(rng, depth - 1)),
        span: sp(),
    }
}

fn gen_party(rng: &mut StdRng) -> PartyRef {
    PartyRef {
        id: rng.gen_range(1u32..5),
        host: if rng.gen_range(0..3) == 0 {
            Some("mpc.example.org".to_string())
        } else {
            None
        },
        span: sp(),
    }
}

fn gen_select_item(rng: &mut StdRng) -> SelectItem {
    match rng.gen_range(0..4) {
        0 => SelectItem::Star(sp()),
        1 => SelectItem::Expr {
            expr: gen_expr(rng, 2),
            alias: if rng.gen_range(0..2) == 0 {
                Some(pick(rng, ALIASES).to_string())
            } else {
                None
            },
            span: sp(),
        },
        2 => SelectItem::Expr {
            expr: SqlExpr::Column(gen_qual_name(rng)),
            alias: None,
            span: sp(),
        },
        _ => {
            let funcs = [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max];
            let func = funcs[rng.gen_range(0..funcs.len())];
            // The parser only accepts `*` and DISTINCT for COUNT.
            let (arg, distinct) = if func == AggFunc::Count {
                match rng.gen_range(0..3) {
                    0 => (AggArg::Star, false),
                    1 => (AggArg::Column(gen_qual_name(rng)), true),
                    _ => (AggArg::Column(gen_qual_name(rng)), false),
                }
            } else {
                (AggArg::Column(gen_qual_name(rng)), false)
            };
            SelectItem::Agg {
                func,
                arg,
                distinct,
                alias: if rng.gen_range(0..2) == 0 {
                    Some(pick(rng, ALIASES).to_string())
                } else {
                    None
                },
                span: sp(),
            }
        }
    }
}

fn gen_table_expr(rng: &mut StdRng, depth: usize) -> TableExpr {
    let named = |rng: &mut StdRng| TableExpr::Named {
        name: pick(rng, TABLES).to_string(),
        alias: if rng.gen_range(0..3) == 0 {
            Some(pick(rng, ALIASES).to_string())
        } else {
            None
        },
        span: sp(),
    };
    if depth == 0 {
        return named(rng);
    }
    match rng.gen_range(0..5) {
        0 => {
            let n = rng.gen_range(2..4usize);
            TableExpr::Union {
                branches: (0..n).map(|_| gen_table_expr(rng, depth - 1)).collect(),
                span: sp(),
            }
        }
        1 => {
            let n = rng.gen_range(1..3usize);
            TableExpr::Join {
                left: Box::new(gen_table_expr(rng, depth - 1)),
                right: Box::new(gen_table_expr(rng, depth - 1)),
                on: (0..n)
                    .map(|_| (gen_qual_name(rng), gen_qual_name(rng)))
                    .collect(),
                span: sp(),
            }
        }
        2 => TableExpr::Subquery {
            select: Box::new(gen_select(rng, depth - 1, false)),
            alias: if rng.gen_range(0..2) == 0 {
                Some(pick(rng, ALIASES).to_string())
            } else {
                None
            },
            span: sp(),
        },
        _ => named(rng),
    }
}

fn gen_select(rng: &mut StdRng, depth: usize, top_level: bool) -> SelectStmt {
    let n_items = rng.gen_range(1..4usize);
    SelectStmt {
        distinct: rng.gen_range(0..4) == 0,
        items: (0..n_items).map(|_| gen_select_item(rng)).collect(),
        from: gen_table_expr(rng, depth),
        where_clause: if rng.gen_range(0..2) == 0 {
            Some(gen_expr(rng, 3))
        } else {
            None
        },
        group_by: (0..rng.gen_range(0..3usize))
            .map(|_| gen_qual_name(rng))
            .collect(),
        order_by: if rng.gen_range(0..2) == 0 {
            Some(OrderBy {
                column: gen_qual_name(rng),
                ascending: rng.gen_range(0..2) == 0,
            })
        } else {
            None
        },
        limit: if rng.gen_range(0..2) == 0 {
            Some(rng.gen_range(0..100usize))
        } else {
            None
        },
        reveal_to: if top_level {
            (0..rng.gen_range(1..3usize))
                .map(|_| gen_party(rng))
                .collect()
        } else {
            Vec::new()
        },
        span: sp(),
    }
}

fn gen_create_table(rng: &mut StdRng, idx: usize) -> CreateTable {
    let n_cols = rng.gen_range(1..4usize);
    let types = [
        TypeName::Int,
        TypeName::Float,
        TypeName::Bool,
        TypeName::Text,
    ];
    CreateTable {
        name: format!("{}{idx}", pick(rng, TABLES)),
        columns: (0..n_cols)
            .map(|c| ColumnSpec {
                name: format!("{}{c}", pick(rng, COLUMNS)),
                dtype: types[rng.gen_range(0..types.len())],
                trust: match rng.gen_range(0..3) {
                    0 => TrustSpec::Private,
                    1 => TrustSpec::Public,
                    _ => TrustSpec::Parties(
                        (0..rng.gen_range(1..3usize))
                            .map(|_| gen_party(rng))
                            .collect(),
                    ),
                },
                span: sp(),
            })
            .collect(),
        owner: gen_party(rng),
        span: sp(),
    }
}

fn gen_script(rng: &mut StdRng) -> Script {
    Script {
        tables: (0..rng.gen_range(0..3usize))
            .map(|i| gen_create_table(rng, i))
            .collect(),
        explain_leakage: rng.gen_range(0..4) == 0,
        query: gen_select(rng, 2, true),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn printed_scripts_reparse_to_the_same_text(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let script = gen_script(&mut rng);
        let printed = script.to_string();
        let reparsed = parse_script(&printed)
            .unwrap_or_else(|e| panic!("printed script failed to parse: {}\n{printed}", e.located(&printed)));
        let reprinted = reparsed.to_string();
        prop_assert_eq!(&printed, &reprinted, "print-parse-print is not a fixed point");
    }
}
