//! The typed abstract syntax tree the parser produces.
//!
//! Every node carries the byte [`Span`] of the source text it was parsed
//! from, so the binder can report schema and type errors with carets into
//! the original query. The `Display` implementations pretty-print a node
//! back to canonical dialect text (uppercase keywords, fully parenthesized
//! expressions); `parse(print(ast))` re-produces an equivalent AST, which
//! the round-trip property test pins.

use crate::error::Span;
use conclave_ir::expr::BinOp;
use conclave_ir::ops::AggFunc;
use std::fmt;

/// A full SQL script: zero or more `CREATE TABLE` declarations followed by
/// exactly one revealed `SELECT` query, optionally prefixed with
/// `EXPLAIN LEAKAGE`.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// Input-table declarations, in source order.
    pub tables: Vec<CreateTable>,
    /// `EXPLAIN LEAKAGE` prefix on the query: compile the plan and emit its
    /// statically certified per-party leakage report instead of executing.
    pub explain_leakage: bool,
    /// The query itself (must end in `REVEAL TO`).
    pub query: SelectStmt,
}

/// A `CREATE TABLE name (columns…) WITH OWNER party` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Relation name (the binding key used by `Session::bind`).
    pub name: String,
    /// Column declarations in order.
    pub columns: Vec<ColumnSpec>,
    /// The party that stores the relation (the paper's `at=` annotation).
    pub owner: PartyRef,
    /// Span of the whole statement.
    pub span: Span,
}

/// One column declaration inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: TypeName,
    /// Trust annotation (§4.3): who may see the column in cleartext.
    pub trust: TrustSpec,
    /// Span of the declaration.
    pub span: Span,
}

/// A column type name in the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// UTF-8 text.
    Text,
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypeName::Int => "INT",
            TypeName::Float => "FLOAT",
            TypeName::Bool => "BOOL",
            TypeName::Text => "TEXT",
        })
    }
}

/// The per-column trust annotation.
#[derive(Debug, Clone, PartialEq)]
pub enum TrustSpec {
    /// No annotation: private to the owner (the default).
    Private,
    /// `PUBLIC`: every party may learn the column.
    Public,
    /// `TRUSTED BY (p1, p2, …)`: only the listed parties may learn it.
    Parties(Vec<PartyRef>),
}

/// A reference to a party: `p<id>` or a bare integer id, optionally followed
/// by `AT 'host'`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartyRef {
    /// Numeric party id.
    pub id: u32,
    /// Optional host name (`AT 'mpc.example.org'`).
    pub host: Option<String>,
    /// Span of the reference.
    pub span: Span,
}

impl fmt::Display for PartyRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.id)?;
        if let Some(host) = &self.host {
            write!(f, " AT '{}'", host.replace('\'', "''"))?;
        }
        Ok(())
    }
}

/// A possibly-qualified column name (`cnt` or `d.patientID`).
#[derive(Debug, Clone, PartialEq)]
pub struct QualName {
    /// Optional table-or-alias qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Span of the whole reference.
    pub span: Span,
}

impl fmt::Display for QualName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `NULL`.
    Null,
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(v) => write!(f, "{v}"),
            Lit::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Lit::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Lit::Bool(true) => write!(f, "TRUE"),
            Lit::Bool(false) => write!(f, "FALSE"),
            Lit::Null => write!(f, "NULL"),
        }
    }
}

/// A scalar expression (used by `WHERE` and computed `SELECT` items).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference.
    Column(QualName),
    /// Literal constant.
    Literal(Lit, Span),
    /// `NOT expr`.
    Not(Box<SqlExpr>, Span),
    /// A binary operation (the operator set is `conclave_ir`'s [`BinOp`]).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<SqlExpr>,
        /// Right operand.
        right: Box<SqlExpr>,
        /// Span covering both operands.
        span: Span,
    },
}

impl SqlExpr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            SqlExpr::Column(q) => q.span,
            SqlExpr::Literal(_, span) | SqlExpr::Not(_, span) | SqlExpr::Binary { span, .. } => {
                *span
            }
        }
    }
}

/// Renders a [`BinOp`] in SQL spelling (`=`, `AND`, …) rather than the IR's
/// Rust-like spelling (`==`, `&&`).
fn sql_binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Eq => "=",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "AND",
        BinOp::Or => "OR",
    }
}

// `Display` prints with full parenthesization, so the printed form
// re-parses to the identical tree regardless of operator precedence.
impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Column(q) => write!(f, "{q}"),
            SqlExpr::Literal(l, _) => write!(f, "{l}"),
            SqlExpr::Not(inner, _) => write!(f, "(NOT {inner})"),
            SqlExpr::Binary {
                op, left, right, ..
            } => write!(f, "({left} {} {right})", sql_binop(*op)),
        }
    }
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`: all columns of the `FROM` relation.
    Star(Span),
    /// A scalar expression, optionally aliased (`expr AS name`).
    Expr {
        /// The expression (a plain column, or arithmetic over columns).
        expr: SqlExpr,
        /// Output column name.
        alias: Option<String>,
        /// Span of the item.
        span: Span,
    },
    /// An aggregate call: `SUM(x)`, `COUNT(*)`, `COUNT(DISTINCT x)`, ….
    Agg {
        /// Aggregation function.
        func: AggFunc,
        /// Argument: a column, or `*` (COUNT only).
        arg: AggArg,
        /// `DISTINCT` inside the call (COUNT only).
        distinct: bool,
        /// Output column name (`AS name`).
        alias: Option<String>,
        /// Span of the item.
        span: Span,
    },
}

impl SelectItem {
    /// The source span of the item.
    pub fn span(&self) -> Span {
        match self {
            SelectItem::Star(span) => *span,
            SelectItem::Expr { span, .. } | SelectItem::Agg { span, .. } => *span,
        }
    }
}

/// The argument of an aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub enum AggArg {
    /// `*` (only valid for `COUNT`).
    Star,
    /// A column reference.
    Column(QualName),
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star(_) => write!(f, "*"),
            SelectItem::Expr { expr, alias, .. } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            SelectItem::Agg {
                func,
                arg,
                distinct,
                alias,
                ..
            } => {
                write!(f, "{func}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                match arg {
                    AggArg::Star => write!(f, "*")?,
                    AggArg::Column(c) => write!(f, "{c}")?,
                }
                write!(f, ")")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

/// A table expression in the `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableExpr {
    /// A named input relation, optionally aliased.
    Named {
        /// Relation name (must be declared or in the catalog).
        name: String,
        /// Optional alias for qualified column references.
        alias: Option<String>,
        /// Span of the reference.
        span: Span,
    },
    /// A parenthesized sub-`SELECT` used as a derived table.
    Subquery {
        /// The inner query (must not have a `REVEAL TO` clause).
        select: Box<SelectStmt>,
        /// Optional alias.
        alias: Option<String>,
        /// Span of the subquery.
        span: Span,
    },
    /// `a UNION ALL b [UNION ALL c …]`: duplicate-preserving concatenation.
    Union {
        /// The concatenated branches (two or more).
        branches: Vec<TableExpr>,
        /// Span of the whole union.
        span: Span,
    },
    /// `a JOIN b ON l1 = r1 [AND l2 = r2 …]`: inner equi-join.
    Join {
        /// Left input.
        left: Box<TableExpr>,
        /// Right input.
        right: Box<TableExpr>,
        /// Equality conditions pairing a left column with a right column.
        on: Vec<(QualName, QualName)>,
        /// Span of the join.
        span: Span,
    },
}

impl TableExpr {
    /// The source span of the table expression.
    pub fn span(&self) -> Span {
        match self {
            TableExpr::Named { span, .. }
            | TableExpr::Subquery { span, .. }
            | TableExpr::Union { span, .. }
            | TableExpr::Join { span, .. } => *span,
        }
    }
}

impl fmt::Display for TableExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableExpr::Named { name, alias, .. } => {
                write!(f, "{name}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableExpr::Subquery { select, alias, .. } => {
                write!(f, "({select})")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableExpr::Union { branches, .. } => {
                write!(f, "(")?;
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, " UNION ALL ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            TableExpr::Join {
                left, right, on, ..
            } => {
                // Nested joins print parenthesized: the grammar reads an
                // unparenthesized `a JOIN b JOIN c` left-associatively, so
                // explicit grouping is the only form that round-trips every
                // tree shape.
                let print_side = |f: &mut fmt::Formatter<'_>, side: &TableExpr| -> fmt::Result {
                    if matches!(side, TableExpr::Join { .. }) {
                        write!(f, "({side})")
                    } else {
                        write!(f, "{side}")
                    }
                };
                print_side(f, left)?;
                write!(f, " JOIN ")?;
                print_side(f, right)?;
                write!(f, " ON ")?;
                for (i, (l, r)) in on.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{l} = {r}")?;
                }
                Ok(())
            }
        }
    }
}

/// An `ORDER BY` clause: one sort column and a direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// Sort column.
    pub column: QualName,
    /// `true` for `ASC` (the default), `false` for `DESC`.
    pub ascending: bool,
}

impl fmt::Display for OrderBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}",
            self.column,
            if self.ascending { "ASC" } else { "DESC" }
        )
    }
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT` flag.
    pub distinct: bool,
    /// The select list.
    pub items: Vec<SelectItem>,
    /// The `FROM` clause.
    pub from: TableExpr,
    /// Optional `WHERE` predicate.
    pub where_clause: Option<SqlExpr>,
    /// `GROUP BY` columns (empty when absent).
    pub group_by: Vec<QualName>,
    /// Optional `ORDER BY` clause.
    pub order_by: Option<OrderBy>,
    /// Optional `LIMIT n`.
    pub limit: Option<usize>,
    /// `REVEAL TO` recipients (empty only for subqueries).
    pub reveal_to: Vec<PartyRef>,
    /// Span of the whole statement.
    pub span: Span,
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.from)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(o) = &self.order_by {
            write!(f, " ORDER BY {o}")?;
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        if !self.reveal_to.is_empty() {
            write!(f, " REVEAL TO ")?;
            for (i, p) in self.reveal_to.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE TABLE {} (", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
            match &c.trust {
                TrustSpec::Private => {}
                TrustSpec::Public => write!(f, " PUBLIC")?,
                TrustSpec::Parties(ps) => {
                    write!(f, " TRUSTED BY (")?;
                    for (j, p) in ps.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    write!(f, ")")?;
                }
            }
        }
        write!(f, ") WITH OWNER {}", self.owner)
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tables {
            writeln!(f, "{t};")?;
        }
        if self.explain_leakage {
            write!(f, "EXPLAIN LEAKAGE ")?;
        }
        write!(f, "{};", self.query)
    }
}
