//! SQL frontend errors with source spans.
//!
//! Every stage of the frontend — lexing, parsing, binding/lowering — reports
//! failures as a [`SqlError`] anchored to a byte [`Span`] of the query text.
//! The entry points in the crate root locate errors against the source before
//! returning them, so [`SqlError`]'s `Display` shows the line and column plus
//! a caret snippet pointing at the offending token:
//!
//! ```text
//! error at line 3, column 8: unknown column `diagnoses` in SELECT
//!   |
//! 3 | SELECT diagnoses, COUNT(*) AS cnt
//!   |        ^^^^^^^^^
//! ```

use std::fmt;

/// A half-open byte range `[start, end)` into the SQL source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// An error from the SQL frontend: a message plus the source span it refers
/// to, and — once located against the source text — the line, column and a
/// caret snippet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Human-readable description of the problem.
    pub message: String,
    /// The byte range of the source text the error refers to.
    pub span: Span,
    /// 1-based line of `span.start`, filled in by [`SqlError::located`].
    pub line: Option<usize>,
    /// 1-based column of `span.start`, filled in by [`SqlError::located`].
    pub column: Option<usize>,
    /// The source line the span starts on, filled in by [`SqlError::located`].
    pub snippet: Option<String>,
}

impl SqlError {
    /// Creates an error at the given span.
    pub fn at(span: Span, message: impl Into<String>) -> SqlError {
        SqlError {
            message: message.into(),
            span,
            line: None,
            column: None,
            snippet: None,
        }
    }

    /// Resolves the span against the source text, filling in line, column and
    /// the snippet line so `Display` can render a caret diagnostic.
    pub fn located(mut self, src: &str) -> SqlError {
        let start = self.span.start.min(src.len());
        let line_start = src[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = src[start..]
            .find('\n')
            .map(|i| start + i)
            .unwrap_or(src.len());
        self.line = Some(src[..start].matches('\n').count() + 1);
        self.column = Some(src[line_start..start].chars().count() + 1);
        self.snippet = Some(src[line_start..line_end].to_string());
        self
    }

    /// Renders the caret line under the snippet (spaces up to the column,
    /// then one `^` per character of the span on this line).
    fn caret_line(&self) -> Option<String> {
        let (col, snippet) = (self.column?, self.snippet.as_ref()?);
        let width = (self.span.end.saturating_sub(self.span.start))
            .max(1)
            .min(snippet.chars().count().saturating_sub(col - 1).max(1));
        Some(format!("{}{}", " ".repeat(col - 1), "^".repeat(width)))
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.column) {
            (Some(line), Some(col)) => {
                write!(f, "error at line {line}, column {col}: {}", self.message)?;
                if let (Some(snippet), Some(caret)) = (&self.snippet, self.caret_line()) {
                    write!(f, "\n  |\n{line} | {snippet}\n  | {caret}")?;
                }
                Ok(())
            }
            _ => write!(f, "error: {}", self.message),
        }
    }
}

impl std::error::Error for SqlError {}

/// Convenience result alias for SQL frontend operations.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(4, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.merge(b), Span::new(4, 12));
        assert_eq!(b.merge(a), Span::new(4, 12));
    }

    #[test]
    fn located_computes_line_column_and_snippet() {
        let src = "SELECT a\nFROM t\nWHERE b > 1";
        // Span of `b` on line 3.
        let off = src.find("b >").unwrap();
        let err = SqlError::at(Span::new(off, off + 1), "unknown column `b`").located(src);
        assert_eq!(err.line, Some(3));
        assert_eq!(err.column, Some(7));
        assert_eq!(err.snippet.as_deref(), Some("WHERE b > 1"));
        let shown = err.to_string();
        assert!(shown.contains("line 3, column 7"));
        assert!(shown.contains("WHERE b > 1"));
        assert!(shown.contains('^'));
    }

    #[test]
    fn unlocated_error_displays_message_only() {
        let err = SqlError::at(Span::new(0, 1), "boom");
        assert_eq!(err.to_string(), "error: boom");
    }

    #[test]
    fn located_at_end_of_source() {
        let src = "SELECT";
        let err = SqlError::at(Span::new(6, 6), "unexpected end of input").located(src);
        assert_eq!(err.line, Some(1));
        assert_eq!(err.column, Some(7));
        assert!(err.to_string().contains("unexpected end of input"));
    }
}
