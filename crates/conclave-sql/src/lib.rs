//! SQL frontend for the Conclave reproduction.
//!
//! Conclave's analyst-facing surface (§4 of the paper, and its closest
//! relative SMCQL) is a relational query language: analysts write SQL, the
//! compiler decides what runs in cleartext and what runs under MPC. This
//! crate provides that surface for the Rust reproduction:
//!
//! * a hand-written lexer and recursive-descent [`parser`] for the Conclave
//!   SQL dialect (`SELECT` with projections and computed columns, `WHERE`,
//!   `JOIN … ON`, `GROUP BY` with `SUM`/`COUNT`/`MIN`/`MAX`,
//!   `COUNT(DISTINCT …)`, `ORDER BY`, `LIMIT`, `SELECT DISTINCT`,
//!   `UNION ALL`, and subqueries in `FROM`),
//! * the ownership and trust annotations the paper adds to plain SQL:
//!   `CREATE TABLE … WITH OWNER p1` declares which party stores an input,
//!   per-column `PUBLIC` / `TRUSTED BY (p1, …)` annotations populate the
//!   §4.3 trust sets, and the mandatory `REVEAL TO p1` clause names the
//!   output recipients,
//! * a typed [`ast`] in which every node carries its source [`error::Span`],
//!   and
//! * a binder/[`lower`]ing stage that resolves and type-checks references
//!   against the declared (or programmatically registered) input schemas and
//!   emits a [`conclave_ir::builder::Query`] — the *same* operator DAG the
//!   hand-driven `QueryBuilder` would produce, so the whole compiler pass
//!   pipeline, hybrid rewrites and every runtime mode apply unchanged.
//!
//! The grammar reference lives in `docs/SQL.md`; errors render with caret
//! diagnostics into the query text.
//!
//! # Example
//!
//! The comorbidity query of §7.4 — the ten most common diagnoses across two
//! hospitals' private data — as SQL:
//!
//! ```
//! use conclave_sql::compile_sql;
//!
//! let query = compile_sql(
//!     "CREATE TABLE diagnoses1 (patientID INT PUBLIC, diagnosis INT) WITH OWNER p1;
//!      CREATE TABLE diagnoses2 (patientID INT PUBLIC, diagnosis INT) WITH OWNER p2;
//!      SELECT diagnosis, COUNT(*) AS cnt
//!      FROM (diagnoses1 UNION ALL diagnoses2)
//!      GROUP BY diagnosis
//!      ORDER BY cnt DESC
//!      LIMIT 10
//!      REVEAL TO p1;",
//! )
//! .unwrap();
//! assert!(query.dag.validate().is_ok());
//! assert_eq!(query.parties.len(), 2);
//! ```
//!
//! Schemas can also be bound programmatically through a [`Catalog`], in
//! which case the SQL needs no `CREATE TABLE` declarations:
//!
//! ```
//! use conclave_ir::party::Party;
//! use conclave_ir::schema::Schema;
//! use conclave_sql::{compile_sql_with_catalog, Catalog};
//!
//! let catalog = Catalog::new()
//!     .with_table("ta", Schema::ints(&["k", "v"]), Party::new(1, "a"))
//!     .with_table("tb", Schema::ints(&["k", "v"]), Party::new(2, "b"));
//! let query = compile_sql_with_catalog(
//!     "SELECT k, SUM(v) AS total FROM (ta UNION ALL tb) GROUP BY k REVEAL TO p1",
//!     &catalog,
//! )
//! .unwrap();
//! assert_eq!(query.dag.leaves().len(), 1);
//! ```

// Also enforced workspace-wide via [workspace.lints]; stated here so the
// guarantee is visible at the crate root.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::Script;
pub use error::{Span, SqlError, SqlResult};
pub use lower::{declared_schema, lower_script, lower_script_with_catalog, Catalog};
pub use parser::{parse_script, parse_select};

use conclave_ir::builder::Query;

/// Compiles a self-contained SQL script (its `CREATE TABLE` declarations
/// must cover every referenced table) into an IR [`Query`], ready for the
/// `conclave-core` pass pipeline. Errors are located against `src` so their
/// `Display` shows line, column and a caret snippet.
pub fn compile_sql(src: &str) -> SqlResult<Query> {
    let script = parse_script(src).map_err(|e| e.located(src))?;
    lower_script(&script).map_err(|e| e.located(src))
}

/// Like [`compile_sql`], but table references may also resolve against the
/// given [`Catalog`] (script declarations take precedence).
pub fn compile_sql_with_catalog(src: &str, catalog: &Catalog) -> SqlResult<Query> {
    let script = parse_script(src).map_err(|e| e.located(src))?;
    lower_script_with_catalog(&script, catalog).map_err(|e| e.located(src))
}

/// Normalizes a SQL script to its canonical textual form: parse it and print
/// the AST back through [`Script`]'s `Display` impl. Two scripts that differ
/// only in whitespace, keyword case, optional parentheses or trailing
/// semicolons normalize to the same string; scripts that differ semantically
/// (different literals, columns, annotations, …) never collide, because the
/// printer is a faithful rendering of the parsed AST.
///
/// `conclave-server` uses the normalized text as one half of its prepared-plan
/// cache key (the other half is the tenant's catalog fingerprint), so the
/// guarantees above are exactly what makes cache hits safe. The normal form is
/// a fixed point: normalizing an already-normalized script is the identity.
pub fn normalize_sql(src: &str) -> SqlResult<String> {
    let script = parse_script(src).map_err(|e| e.located(src))?;
    Ok(script.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::ops::{AggFunc, Operator};
    use conclave_ir::party::Party;
    use conclave_ir::schema::Schema;
    use conclave_ir::types::DataType;

    const HEALTH_DECLS: &str = "
        CREATE TABLE diagnoses1 (patientID INT PUBLIC, diagnosis INT) WITH OWNER p1;
        CREATE TABLE diagnoses2 (patientID INT PUBLIC, diagnosis INT) WITH OWNER p2;
        CREATE TABLE medications1 (patientID INT PUBLIC, medication INT) WITH OWNER p1;
        CREATE TABLE medications2 (patientID INT PUBLIC, medication INT) WITH OWNER p2;
    ";

    #[test]
    fn comorbidity_lowers_to_the_builder_dag_shape() {
        let sql = format!(
            "{HEALTH_DECLS}
             SELECT diagnosis, COUNT(*) AS cnt
             FROM (diagnoses1 UNION ALL diagnoses2)
             GROUP BY diagnosis
             ORDER BY cnt DESC
             LIMIT 10
             REVEAL TO p1;"
        );
        let query = compile_sql(&sql).unwrap();
        assert!(query.dag.validate().is_ok());
        // input, input, concat, aggregate, sort, limit, collect — exactly the
        // chain examples/comorbidity.rs builds by hand.
        assert_eq!(query.dag.node_count(), 7);
        let ops: Vec<&str> = query
            .dag
            .topo_order()
            .unwrap()
            .into_iter()
            .map(|id| query.dag.node(id).unwrap().op.name())
            .collect();
        assert_eq!(
            ops,
            vec![
                "input",
                "input",
                "concat",
                "aggregate",
                "sort_by",
                "limit",
                "collect"
            ]
        );
    }

    #[test]
    fn aspirin_count_lowers_with_join_filter_distinct_count() {
        let sql = format!(
            "{HEALTH_DECLS}
             SELECT COUNT(DISTINCT patientID) AS num_patients
             FROM (diagnoses1 UNION ALL diagnoses2)
                  JOIN (medications1 UNION ALL medications2) ON patientID = patientID
             WHERE diagnosis = 8 AND medication = 1
             REVEAL TO p1;"
        );
        let query = compile_sql(&sql).unwrap();
        assert!(query.dag.validate().is_ok());
        let names: Vec<&str> = query.dag.iter().map(|n| n.op.name()).collect();
        for expected in ["join", "filter", "distinct_count", "collect"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        // The count column is named by the alias.
        let leaf = query.dag.leaves()[0];
        assert_eq!(
            query.dag.node(leaf).unwrap().schema.names(),
            vec!["num_patients"]
        );
    }

    #[test]
    fn trust_annotations_reach_the_schema() {
        let sql = "
            CREATE TABLE t (a INT PUBLIC, b INT TRUSTED BY (p2, p3), c INT) WITH OWNER p1;
            SELECT a, b, c FROM t REVEAL TO p1;
        ";
        let query = compile_sql(sql).unwrap();
        let input = query.dag.roots()[0];
        let schema = &query.dag.node(input).unwrap().schema;
        assert!(schema.column("a").unwrap().trust.is_public());
        assert!(schema.column("b").unwrap().trust.trusts(2));
        assert!(schema.column("b").unwrap().trust.trusts(3));
        // The owner is implicitly trusted with every column it stores.
        assert!(schema.column("b").unwrap().trust.trusts(1));
        assert!(schema.column("c").unwrap().trust.trusts(1));
        assert!(!schema.column("c").unwrap().trust.trusts(2));
    }

    #[test]
    fn owner_hosts_flow_into_parties() {
        let sql = "
            CREATE TABLE t (a INT) WITH OWNER p1 AT 'mpc.ftc.gov';
            SELECT a FROM t REVEAL TO p1;
        ";
        let query = compile_sql(sql).unwrap();
        assert_eq!(query.party(1).unwrap().host, "mpc.ftc.gov");
    }

    #[test]
    fn catalog_resolution_and_precedence() {
        let catalog = Catalog::new().with_table("t", Schema::ints(&["a"]), Party::new(9, "ext"));
        // The script declaration shadows the catalog entry.
        let sql = "
            CREATE TABLE t (a INT) WITH OWNER p1;
            SELECT a FROM t REVEAL TO p1;
        ";
        let query = compile_sql_with_catalog(sql, &catalog).unwrap();
        assert!(query.party(1).is_some());
        assert!(query.party(9).is_none());
        // Catalog-only resolution.
        let query = compile_sql_with_catalog("SELECT a FROM t REVEAL TO p9", &catalog).unwrap();
        assert_eq!(query.party(9).unwrap().host, "ext");
        assert_eq!(catalog.iter().count(), 1);
    }

    #[test]
    fn unknown_references_error_with_spans() {
        let sql = "CREATE TABLE t (a INT) WITH OWNER p1;\nSELECT b FROM t REVEAL TO p1;";
        let err = compile_sql(sql).unwrap_err();
        assert!(err.message.contains("unknown column `b`"));
        assert_eq!(err.line, Some(2));
        assert_eq!(err.column, Some(8));

        let err = compile_sql("SELECT a FROM nope REVEAL TO p1").unwrap_err();
        assert!(err.message.contains("unknown table `nope`"));

        let sql = "CREATE TABLE t (a INT) WITH OWNER p1; SELECT z.a FROM t REVEAL TO p1;";
        let err = compile_sql(sql).unwrap_err();
        assert!(err.message.contains("unknown table or alias `z`"));
    }

    #[test]
    fn where_type_checking() {
        let decl = "CREATE TABLE t (a INT, s TEXT) WITH OWNER p1;";
        // Non-boolean predicate.
        let err =
            compile_sql(&format!("{decl} SELECT a FROM t WHERE a + 1 REVEAL TO p1")).unwrap_err();
        assert!(err.message.contains("must be boolean"));
        // Type error inside the predicate.
        let err = compile_sql(&format!(
            "{decl} SELECT a FROM t WHERE s + 1 > 0 REVEAL TO p1"
        ))
        .unwrap_err();
        assert!(err.message.contains("type error"));
        // NULL literal rejected.
        let err = compile_sql(&format!(
            "{decl} SELECT a FROM t WHERE a = NULL REVEAL TO p1"
        ))
        .unwrap_err();
        assert!(err.message.contains("NULL"));
        // A valid predicate with every comparison and logic operator.
        let query = compile_sql(&format!(
            "{decl} SELECT a FROM t \
             WHERE (a > 0 AND a < 10) OR NOT (a >= 5) AND a <= 7 AND a != 3 AND a = a \
             REVEAL TO p1"
        ))
        .unwrap();
        assert!(query.dag.validate().is_ok());
    }

    #[test]
    fn computed_columns_lower_to_multiply_and_divide() {
        let sql = "
            CREATE TABLE t (rev INT, total INT) WITH OWNER p1;
            SELECT rev, rev / total AS share, rev * rev * 2 AS sq FROM t REVEAL TO p1;
        ";
        let query = compile_sql(sql).unwrap();
        let names: Vec<&str> = query.dag.iter().map(|n| n.op.name()).collect();
        assert!(names.contains(&"divide"));
        assert!(names.contains(&"multiply"));
        let leaf = query.dag.leaves()[0];
        assert_eq!(
            query.dag.node(leaf).unwrap().schema.names(),
            vec!["rev", "share", "sq"]
        );
        // The divide output is a float.
        assert_eq!(
            query
                .dag
                .node(leaf)
                .unwrap()
                .schema
                .column("share")
                .unwrap()
                .dtype,
            DataType::Float
        );
    }

    #[test]
    fn aggregate_select_reorders_via_project() {
        let sql = "
            CREATE TABLE t (zip INT, score INT) WITH OWNER p1;
            SELECT SUM(score) AS total, zip FROM t GROUP BY zip REVEAL TO p1;
        ";
        let query = compile_sql(sql).unwrap();
        let leaf = query.dag.leaves()[0];
        assert_eq!(
            query.dag.node(leaf).unwrap().schema.names(),
            vec!["total", "zip"]
        );
        let names: Vec<&str> = query.dag.iter().map(|n| n.op.name()).collect();
        assert!(names.contains(&"project"));
    }

    #[test]
    fn scalar_aggregates_and_default_names() {
        let decl = "CREATE TABLE t (v INT) WITH OWNER p1;";
        for (sql_func, expected) in [
            ("SUM(v)", "sum_v"),
            ("MIN(v)", "min_v"),
            ("MAX(v)", "max_v"),
            ("COUNT(*)", "cnt"),
            ("COUNT(DISTINCT v)", "distinct_v"),
        ] {
            let query =
                compile_sql(&format!("{decl} SELECT {sql_func} FROM t REVEAL TO p1")).unwrap();
            let leaf = query.dag.leaves()[0];
            assert_eq!(
                query.dag.node(leaf).unwrap().schema.names(),
                vec![expected],
                "{sql_func}"
            );
        }
    }

    #[test]
    fn aggregate_misuse_errors() {
        let decl = "CREATE TABLE t (k INT, v INT) WITH OWNER p1;";
        let err = compile_sql(&format!(
            "{decl} SELECT SUM(v) AS a, SUM(k) AS b FROM t REVEAL TO p1"
        ))
        .unwrap_err();
        assert!(err.message.contains("only one aggregate"));
        let err = compile_sql(&format!(
            "{decl} SELECT v, SUM(v) AS s FROM t GROUP BY k REVEAL TO p1"
        ))
        .unwrap_err();
        assert!(err.message.contains("must appear in GROUP BY"));
        let err =
            compile_sql(&format!("{decl} SELECT k FROM t GROUP BY k REVEAL TO p1")).unwrap_err();
        assert!(err.message.contains("requires an aggregate"));
        let err = compile_sql(&format!(
            "{decl} SELECT COUNT(DISTINCT v) AS n FROM t GROUP BY k REVEAL TO p1"
        ))
        .unwrap_err();
        assert!(err.message.contains("GROUP BY"));
        let err = compile_sql(&format!(
            "{decl} SELECT k, SUM(v) AS s FROM t GROUP BY k, k REVEAL TO p1"
        ))
        .unwrap_err();
        assert!(err.message.contains("duplicate GROUP BY"));
    }

    #[test]
    fn distinct_and_star_selects() {
        let decl = "CREATE TABLE t (a INT, b INT) WITH OWNER p1;";
        let query =
            compile_sql(&format!("{decl} SELECT DISTINCT a, b FROM t REVEAL TO p1")).unwrap();
        let names: Vec<&str> = query.dag.iter().map(|n| n.op.name()).collect();
        assert!(names.contains(&"distinct"));
        // `SELECT *` needs no projection node.
        let query = compile_sql(&format!("{decl} SELECT * FROM t REVEAL TO p1")).unwrap();
        let names: Vec<&str> = query.dag.iter().map(|n| n.op.name()).collect();
        assert!(!names.contains(&"project"));
    }

    #[test]
    fn subquery_staged_aggregation() {
        // Two-stage aggregation through a derived table: count per diagnosis,
        // then take the max count.
        let sql = "
            CREATE TABLE d (diagnosis INT) WITH OWNER p1;
            SELECT MAX(cnt) AS top
            FROM (SELECT diagnosis, COUNT(*) AS cnt FROM d GROUP BY diagnosis) AS counts
            REVEAL TO p1;
        ";
        let query = compile_sql(sql).unwrap();
        assert!(query.dag.validate().is_ok());
        let aggs = query
            .dag
            .iter()
            .filter(|n| matches!(n.op, Operator::Aggregate { .. }))
            .count();
        assert_eq!(aggs, 2);
        let max = query
            .dag
            .iter()
            .find(|n| {
                matches!(
                    &n.op,
                    Operator::Aggregate {
                        func: AggFunc::Max,
                        ..
                    }
                )
            })
            .expect("max aggregate present");
        assert_eq!(max.schema.names(), vec!["top"]);
    }

    #[test]
    fn self_join_gets_one_input_node_per_reference() {
        let sql = "
            CREATE TABLE t (k INT, v INT) WITH OWNER p1;
            SELECT k FROM t AS a JOIN t AS b ON a.k = b.k REVEAL TO p1;
        ";
        let query = compile_sql(sql).unwrap();
        assert!(query.dag.validate().is_ok());
        // Both references bind the same relation name but are separate scan
        // nodes, as a self-join requires.
        assert_eq!(query.dag.roots().len(), 2);
        assert_eq!(query.parties.len(), 1);
    }

    #[test]
    fn qualified_references_survive_join_renames() {
        // `r.x` collides with `l.x`; join_schema renames it to `x_r`. A
        // qualified reference through the right table must bind the renamed
        // column, not silently pick up the left one.
        let decls = "
            CREATE TABLE l (k INT, x INT) WITH OWNER p1;
            CREATE TABLE r (k INT, x INT) WITH OWNER p2;
        ";
        let query = compile_sql(&format!(
            "{decls} SELECT r.x FROM l JOIN r ON l.k = r.k REVEAL TO p1"
        ))
        .unwrap();
        let leaf = query.dag.leaves()[0];
        assert_eq!(query.dag.node(leaf).unwrap().schema.names(), vec!["x_r"]);
        // The right join key resolves to the merged key column.
        let query = compile_sql(&format!(
            "{decls} SELECT r.k, x_r FROM l JOIN r ON l.k = r.k REVEAL TO p1"
        ))
        .unwrap();
        let leaf = query.dag.leaves()[0];
        assert_eq!(
            query.dag.node(leaf).unwrap().schema.names(),
            vec!["k", "x_r"]
        );
        // A qualified reference to a column the qualifier never provided is
        // an error, not a silent fallback to the same-named left column.
        let err = compile_sql(&format!(
            "{decls} SELECT k FROM l JOIN r ON l.k = r.k WHERE r.zzz > 0 REVEAL TO p1"
        ))
        .unwrap_err();
        assert!(err.message.contains("unknown column `r.zzz`"));
    }

    #[test]
    fn non_ascii_string_literals_survive_lexing() {
        let sql = "CREATE TABLE t (a INT) WITH OWNER p1 AT 'münchen.example';
                   SELECT a FROM t REVEAL TO p1;";
        let query = compile_sql(sql).unwrap();
        assert_eq!(query.party(1).unwrap().host, "münchen.example");
    }

    #[test]
    fn alias_on_parenthesized_union_is_rejected_clearly() {
        let err = compile_sql(
            "CREATE TABLE a (k INT) WITH OWNER p1;
             CREATE TABLE b (k INT) WITH OWNER p2;
             SELECT x.k FROM (a UNION ALL b) AS x REVEAL TO p1;",
        )
        .unwrap_err();
        assert!(err.message.contains("subquery"));
        // The subquery form it suggests works.
        let query = compile_sql(
            "CREATE TABLE a (k INT) WITH OWNER p1;
             CREATE TABLE b (k INT) WITH OWNER p2;
             SELECT x.k FROM (SELECT k FROM (a UNION ALL b)) AS x REVEAL TO p1;",
        )
        .unwrap();
        assert!(query.dag.validate().is_ok());
    }

    #[test]
    fn join_resolves_sides_and_rejects_nonsense() {
        let sql = "
            CREATE TABLE l (k INT, x INT) WITH OWNER p1;
            CREATE TABLE r (k INT, y INT) WITH OWNER p2;
            SELECT x, y FROM l JOIN r ON r.k = l.k REVEAL TO p1;
        ";
        // Swapped sides in the ON clause still resolve.
        let query = compile_sql(sql).unwrap();
        assert!(query.dag.validate().is_ok());
        let err = compile_sql(
            "CREATE TABLE l (k INT) WITH OWNER p1;
             CREATE TABLE r (k INT) WITH OWNER p2;
             SELECT k FROM l JOIN r ON k = zzz REVEAL TO p1;",
        )
        .unwrap_err();
        assert!(err.message.contains("join condition"));
    }

    #[test]
    fn duplicate_table_declaration_is_an_error() {
        let err = compile_sql(
            "CREATE TABLE t (a INT) WITH OWNER p1;
             CREATE TABLE t (a INT) WITH OWNER p2;
             SELECT a FROM t REVEAL TO p1;",
        )
        .unwrap_err();
        assert!(err.message.contains("more than once"));
        let err = compile_sql(
            "CREATE TABLE t (a INT, a INT) WITH OWNER p1; SELECT a FROM t REVEAL TO p1;",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate column"));
    }

    #[test]
    fn unsupported_select_items_error() {
        let decl = "CREATE TABLE t (a INT, b INT) WITH OWNER p1;";
        let err =
            compile_sql(&format!("{decl} SELECT a + b AS s FROM t REVEAL TO p1")).unwrap_err();
        assert!(err.message.contains("unsupported computed SELECT item"));
        let err = compile_sql(&format!("{decl} SELECT a * b FROM t REVEAL TO p1")).unwrap_err();
        assert!(err.message.contains("output name"));
        let err =
            compile_sql(&format!("{decl} SELECT a AS renamed FROM t REVEAL TO p1")).unwrap_err();
        assert!(err.message.contains("renaming"));
    }

    #[test]
    fn explain_leakage_prefix_parses_and_round_trips() {
        let sql = "CREATE TABLE t (a INT) WITH OWNER p1;
                   EXPLAIN LEAKAGE SELECT a FROM t REVEAL TO p1;";
        let script = parse_script(sql).unwrap();
        assert!(script.explain_leakage);
        let printed = script.to_string();
        assert!(printed.contains("EXPLAIN LEAKAGE SELECT"));
        // Spans shift between the original and the printed text, so compare
        // the canonical printed forms.
        assert_eq!(parse_script(&printed).unwrap().to_string(), printed);
        assert!(parse_script(&printed).unwrap().explain_leakage);
        // Plain scripts do not carry the flag.
        let script = parse_script("SELECT a FROM t REVEAL TO p1").unwrap();
        assert!(!script.explain_leakage);
        // EXPLAIN must be followed by LEAKAGE.
        let err = parse_script("EXPLAIN SELECT a FROM t REVEAL TO p1").unwrap_err();
        assert!(err.message.contains("LEAKAGE"));
        // The explained script still lowers like the plain one.
        let query = compile_sql(
            "CREATE TABLE t (a INT) WITH OWNER p1;
             EXPLAIN LEAKAGE SELECT a FROM t REVEAL TO p1;",
        )
        .unwrap();
        assert!(query.dag.validate().is_ok());
    }

    #[test]
    fn undeclared_reveal_target_is_a_spanned_error() {
        let sql = "CREATE TABLE t (a INT) WITH OWNER p1;\nSELECT a FROM t REVEAL TO p9;";
        let err = compile_sql(sql).unwrap_err();
        assert!(err.message.contains("undeclared party"), "{}", err.message);
        assert_eq!(err.line, Some(2));
        // The caret points at the party reference, not the whole statement.
        assert_eq!(err.span.start, sql.find("p9").unwrap());
        // A TRUSTED BY annotation declares the party…
        let sql = "CREATE TABLE t (a INT TRUSTED BY (p9)) WITH OWNER p1;
                   SELECT a FROM t REVEAL TO p9;";
        assert!(compile_sql(sql).is_ok());
        // …as does an owner entry in an external catalog…
        let catalog = Catalog::new().with_table("t", Schema::ints(&["a"]), Party::new(9, "ext"));
        assert!(compile_sql_with_catalog("SELECT a FROM t REVEAL TO p9", &catalog).is_ok());
        // …or an explicit endpoint in the reveal clause itself.
        let sql = "CREATE TABLE t (a INT) WITH OWNER p1;
                   SELECT a FROM t REVEAL TO p9 AT 'ext.example';";
        assert!(compile_sql(sql).is_ok());
    }

    #[test]
    fn reveal_to_multiple_recipients() {
        let sql = "CREATE TABLE t (a INT) WITH OWNER p1;
                   SELECT a FROM t REVEAL TO p1, p2 AT 'b.org';";
        let query = compile_sql(sql).unwrap();
        let leaf = query.dag.leaves()[0];
        match &query.dag.node(leaf).unwrap().op {
            Operator::Collect { recipients } => {
                assert!(recipients.contains(1));
                assert!(recipients.contains(2));
            }
            other => panic!("expected collect, got {other}"),
        }
        assert_eq!(query.party(2).unwrap().host, "b.org");
    }

    #[test]
    fn normalize_collapses_whitespace_and_keyword_case() {
        let messy = "create table t (a int,\n\n   b INT)   with owner p1;\n
                     select a,   sum(b) as total\nfrom t group by a reveal to p1";
        let tidy = "CREATE TABLE t (a INT, b INT) WITH OWNER p1;
                    SELECT a, SUM(b) AS total FROM t GROUP BY a REVEAL TO p1;";
        let n1 = normalize_sql(messy).unwrap();
        let n2 = normalize_sql(tidy).unwrap();
        assert_eq!(n1, n2);
        // The normal form is a fixed point of normalization.
        assert_eq!(normalize_sql(&n1).unwrap(), n1);
    }

    #[test]
    fn normalize_preserves_semantic_differences() {
        let base =
            "CREATE TABLE t (a INT) WITH OWNER p1; SELECT a FROM t WHERE a > 1 REVEAL TO p1;";
        let other =
            "CREATE TABLE t (a INT) WITH OWNER p1; SELECT a FROM t WHERE a > 2 REVEAL TO p1;";
        assert_ne!(normalize_sql(base).unwrap(), normalize_sql(other).unwrap());
        // Trust annotations are part of the normal form too: they change the
        // compiled plan, so they must change the cache key.
        let trusted =
            "CREATE TABLE t (a INT TRUSTED BY (p2)) WITH OWNER p1; SELECT a FROM t WHERE a > 1 REVEAL TO p1;";
        assert_ne!(
            normalize_sql(base).unwrap(),
            normalize_sql(trusted).unwrap()
        );
    }

    #[test]
    fn normalize_rejects_unparseable_text() {
        assert!(normalize_sql("SELEC a FRM t").is_err());
    }
}
