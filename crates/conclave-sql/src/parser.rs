//! Recursive-descent parser for the Conclave SQL dialect.
//!
//! The grammar is documented in `docs/SQL.md` (EBNF plus a worked lowering
//! example). Expressions are parsed with classic precedence climbing:
//!
//! ```text
//! OR  <  AND  <  NOT  <  comparisons  <  + -  <  * /  <  unary - / atoms
//! ```
//!
//! Every parse error carries the span of the offending token so the caller
//! can render a caret diagnostic with [`SqlError::located`].

use crate::ast::*;
use crate::error::{Span, SqlError, SqlResult};
use crate::lexer::{lex, Tok, Token};
use conclave_ir::expr::BinOp;
use conclave_ir::ops::AggFunc;

/// Parses a full script: zero or more `CREATE TABLE` statements followed by
/// one `SELECT … REVEAL TO …` query, optionally prefixed with
/// `EXPLAIN LEAKAGE`. Statements are separated by `;`.
pub fn parse_script(src: &str) -> SqlResult<Script> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        end: src.len(),
    };
    let mut tables = Vec::new();
    while p.peek_is(&Tok::Create) {
        tables.push(p.create_table()?);
        p.expect(&Tok::Semi, "`;` after CREATE TABLE")?;
    }
    let explain_leakage = if p.peek_is(&Tok::Explain) {
        p.advance();
        p.expect(
            &Tok::Leakage,
            "`LEAKAGE` after EXPLAIN (only EXPLAIN LEAKAGE is supported)",
        )?;
        true
    } else {
        false
    };
    let query = p.select_stmt(true)?;
    if p.peek_is(&Tok::Semi) {
        p.advance();
    }
    if let Some(t) = p.peek() {
        return Err(SqlError::at(
            t.span,
            format!("expected end of input, found {}", t.tok),
        ));
    }
    Ok(Script {
        tables,
        explain_leakage,
        query,
    })
}

/// Parses a single `SELECT` statement (with a mandatory `REVEAL TO` clause).
pub fn parse_select(src: &str) -> SqlResult<SelectStmt> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        end: src.len(),
    };
    let stmt = p.select_stmt(true)?;
    if p.peek_is(&Tok::Semi) {
        p.advance();
    }
    if let Some(t) = p.peek() {
        return Err(SqlError::at(
            t.span,
            format!("expected end of input, found {}", t.tok),
        ));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Byte length of the source, for end-of-input error spans.
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_is(&self, tok: &Tok) -> bool {
        self.peek().map(|t| &t.tok == tok).unwrap_or(false)
    }

    fn advance(&mut self) -> &Token {
        let t = &self.tokens[self.pos];
        self.pos += 1;
        t
    }

    fn eof_span(&self) -> Span {
        Span::new(self.end, self.end)
    }

    /// Consumes `tok` or errors with `expected what`.
    fn expect(&mut self, tok: &Tok, what: &str) -> SqlResult<Span> {
        match self.peek() {
            Some(t) if &t.tok == tok => {
                let span = t.span;
                self.pos += 1;
                Ok(span)
            }
            Some(t) => Err(SqlError::at(
                t.span,
                format!("expected {what}, found {}", t.tok),
            )),
            None => Err(SqlError::at(
                self.eof_span(),
                format!("expected {what}, found end of input"),
            )),
        }
    }

    /// Consumes `tok` if present, returning whether it was.
    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek_is(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> SqlResult<(String, Span)> {
        match self.peek() {
            Some(Token {
                tok: Tok::Ident(name),
                span,
            }) => {
                let out = (name.clone(), *span);
                self.pos += 1;
                Ok(out)
            }
            Some(t) => Err(SqlError::at(
                t.span,
                format!("expected {what}, found {}", t.tok),
            )),
            None => Err(SqlError::at(
                self.eof_span(),
                format!("expected {what}, found end of input"),
            )),
        }
    }

    // ------------------------------------------------------------------
    // CREATE TABLE
    // ------------------------------------------------------------------

    fn create_table(&mut self) -> SqlResult<CreateTable> {
        let start = self.expect(&Tok::Create, "`CREATE`")?;
        self.expect(&Tok::Table, "`TABLE` after CREATE")?;
        let (name, _) = self.ident("a table name")?;
        self.expect(&Tok::LParen, "`(` beginning the column list")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.column_spec()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen, "`)` closing the column list")?;
        self.expect(&Tok::With, "`WITH OWNER` after the column list")?;
        self.expect(&Tok::Owner, "`OWNER` after WITH")?;
        let owner = self.party_ref()?;
        let span = start.merge(owner.span);
        Ok(CreateTable {
            name,
            columns,
            owner,
            span,
        })
    }

    fn column_spec(&mut self) -> SqlResult<ColumnSpec> {
        let (name, name_span) = self.ident("a column name")?;
        let (dtype, mut span) = match self.peek() {
            Some(t) => {
                let dtype = match t.tok {
                    Tok::IntType => TypeName::Int,
                    Tok::FloatType => TypeName::Float,
                    Tok::BoolType => TypeName::Bool,
                    Tok::TextType => TypeName::Text,
                    _ => {
                        return Err(SqlError::at(
                            t.span,
                            format!(
                                "expected a column type (INT, FLOAT, BOOL, TEXT), found {}",
                                t.tok
                            ),
                        ))
                    }
                };
                let s = t.span;
                self.pos += 1;
                (dtype, name_span.merge(s))
            }
            None => {
                return Err(SqlError::at(
                    self.eof_span(),
                    "expected a column type, found end of input",
                ))
            }
        };
        let trust = if self.peek_is(&Tok::Public) {
            span = span.merge(self.advance().span);
            TrustSpec::Public
        } else if self.peek_is(&Tok::Trusted) {
            self.advance();
            self.expect(&Tok::By, "`BY` after TRUSTED")?;
            self.expect(&Tok::LParen, "`(` beginning the trusted-party list")?;
            let mut parties = Vec::new();
            loop {
                parties.push(self.party_ref()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            let close = self.expect(&Tok::RParen, "`)` closing the trusted-party list")?;
            span = span.merge(close);
            TrustSpec::Parties(parties)
        } else {
            TrustSpec::Private
        };
        Ok(ColumnSpec {
            name,
            dtype,
            trust,
            span,
        })
    }

    /// Parses a party reference: `p<id>` or an integer id, optionally
    /// followed by `AT 'host'`.
    fn party_ref(&mut self) -> SqlResult<PartyRef> {
        let (id, mut span) = match self.peek() {
            Some(Token {
                tok: Tok::Int(v),
                span,
            }) => {
                let id = u32::try_from(*v)
                    .map_err(|_| SqlError::at(*span, format!("party id {v} out of range")))?;
                let s = *span;
                self.pos += 1;
                (id, s)
            }
            Some(Token {
                tok: Tok::Ident(name),
                span,
            }) => {
                let id = parse_party_name(name).ok_or_else(|| {
                    SqlError::at(
                        *span,
                        format!("expected a party (`p<id>` or an integer id), found `{name}`"),
                    )
                })?;
                let s = *span;
                self.pos += 1;
                (id, s)
            }
            Some(t) => {
                return Err(SqlError::at(
                    t.span,
                    format!(
                        "expected a party (`p<id>` or an integer id), found {}",
                        t.tok
                    ),
                ))
            }
            None => {
                return Err(SqlError::at(
                    self.eof_span(),
                    "expected a party, found end of input",
                ))
            }
        };
        let host = if self.peek_is(&Tok::At) {
            self.advance();
            match self.peek() {
                Some(Token {
                    tok: Tok::Str(host),
                    span: host_span,
                }) => {
                    let h = host.clone();
                    span = span.merge(*host_span);
                    self.pos += 1;
                    Some(h)
                }
                Some(t) => {
                    return Err(SqlError::at(
                        t.span,
                        format!("expected a quoted host name after AT, found {}", t.tok),
                    ))
                }
                None => {
                    return Err(SqlError::at(
                        self.eof_span(),
                        "expected a quoted host name after AT, found end of input",
                    ))
                }
            }
        } else {
            None
        };
        Ok(PartyRef { id, host, span })
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    /// Parses a `SELECT` statement. `top_level` requires a `REVEAL TO`
    /// clause; subqueries must not have one.
    fn select_stmt(&mut self, top_level: bool) -> SqlResult<SelectStmt> {
        let start = self.expect(&Tok::Select, "`SELECT`")?;
        let distinct = self.eat(&Tok::Distinct);
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::From, "`FROM` after the select list")?;
        let from = self.table_expr()?;
        let where_clause = if self.eat(&Tok::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.peek_is(&Tok::Group) {
            self.advance();
            self.expect(&Tok::By, "`BY` after GROUP")?;
            loop {
                group_by.push(self.qual_name()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let order_by = if self.peek_is(&Tok::Order) {
            self.advance();
            self.expect(&Tok::By, "`BY` after ORDER")?;
            let column = self.qual_name()?;
            let ascending = if self.eat(&Tok::Desc) {
                false
            } else {
                self.eat(&Tok::Asc);
                true
            };
            Some(OrderBy { column, ascending })
        } else {
            None
        };
        let limit = if self.eat(&Tok::Limit) {
            match self.peek() {
                Some(Token {
                    tok: Tok::Int(n),
                    span,
                }) => {
                    let n = usize::try_from(*n)
                        .map_err(|_| SqlError::at(*span, "LIMIT must be non-negative"))?;
                    self.pos += 1;
                    Some(n)
                }
                Some(t) => {
                    return Err(SqlError::at(
                        t.span,
                        format!("expected a row count after LIMIT, found {}", t.tok),
                    ))
                }
                None => {
                    return Err(SqlError::at(
                        self.eof_span(),
                        "expected a row count after LIMIT, found end of input",
                    ))
                }
            }
        } else {
            None
        };
        let mut reveal_to = Vec::new();
        if self.peek_is(&Tok::Reveal) {
            self.advance();
            self.expect(&Tok::To, "`TO` after REVEAL")?;
            loop {
                reveal_to.push(self.party_ref()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        if top_level && reveal_to.is_empty() {
            return Err(SqlError::at(
                start,
                "the query must end in a `REVEAL TO <party>` clause naming the output recipients",
            ));
        }
        if !top_level && !reveal_to.is_empty() {
            return Err(SqlError::at(
                reveal_to[0].span,
                "`REVEAL TO` is only allowed on the outermost SELECT",
            ));
        }
        // The statement span runs from SELECT through the last consumed
        // token, whichever clause that was — lowering errors anchored to the
        // statement then underline the whole statement, not just `SELECT`.
        let end_span = self
            .tokens
            .get(self.pos.saturating_sub(1))
            .map(|t| t.span)
            .unwrap_or(start);
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
            reveal_to,
            span: start.merge(end_span),
        })
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        match self.peek() {
            Some(Token {
                tok: Tok::Star,
                span,
            }) => {
                let span = *span;
                self.pos += 1;
                Ok(SelectItem::Star(span))
            }
            Some(Token { tok, span })
                if matches!(tok, Tok::Sum | Tok::Count | Tok::Min | Tok::Max) =>
            {
                let func = match tok {
                    Tok::Sum => AggFunc::Sum,
                    Tok::Count => AggFunc::Count,
                    Tok::Min => AggFunc::Min,
                    Tok::Max => AggFunc::Max,
                    _ => unreachable!(),
                };
                let start = *span;
                self.pos += 1;
                self.expect(&Tok::LParen, "`(` after the aggregate function")?;
                let distinct = self.eat(&Tok::Distinct);
                let arg = if self.peek_is(&Tok::Star) {
                    let star_span = self.advance().span;
                    if func != AggFunc::Count {
                        return Err(SqlError::at(
                            star_span,
                            format!("`*` argument is only valid for COUNT, not {func}"),
                        ));
                    }
                    AggArg::Star
                } else {
                    AggArg::Column(self.qual_name()?)
                };
                if distinct && func != AggFunc::Count {
                    return Err(SqlError::at(
                        start,
                        format!(
                            "DISTINCT inside an aggregate is only supported for COUNT, not {func}"
                        ),
                    ));
                }
                if distinct && matches!(arg, AggArg::Star) {
                    return Err(SqlError::at(start, "COUNT(DISTINCT *) is not supported"));
                }
                let mut span = start.merge(self.expect(&Tok::RParen, "`)` closing the aggregate")?);
                let alias = self.alias()?;
                if alias.is_some() {
                    span = span.merge(self.tokens[self.pos - 1].span);
                }
                Ok(SelectItem::Agg {
                    func,
                    arg,
                    distinct,
                    alias,
                    span,
                })
            }
            _ => {
                let expr = self.expr()?;
                let mut span = expr.span();
                let alias = self.alias()?;
                if alias.is_some() {
                    span = span.merge(self.tokens[self.pos - 1].span);
                }
                Ok(SelectItem::Expr { expr, alias, span })
            }
        }
    }

    /// Parses an optional `AS name` (or a bare alias identifier).
    fn alias(&mut self) -> SqlResult<Option<String>> {
        if self.eat(&Tok::As) {
            let (name, _) = self.ident("an alias after AS")?;
            Ok(Some(name))
        } else {
            Ok(None)
        }
    }

    // ------------------------------------------------------------------
    // FROM clause
    // ------------------------------------------------------------------

    /// `table_expr := table_join (UNION ALL table_join)*`
    fn table_expr(&mut self) -> SqlResult<TableExpr> {
        let first = self.table_join()?;
        if !self.peek_is(&Tok::Union) {
            return Ok(first);
        }
        let mut branches = vec![first];
        while self.eat(&Tok::Union) {
            self.expect(&Tok::All, "`ALL` after UNION (only UNION ALL is supported)")?;
            branches.push(self.table_join()?);
        }
        let span = branches[0]
            .span()
            .merge(branches.last().expect("non-empty").span());
        Ok(TableExpr::Union { branches, span })
    }

    /// `table_join := table_primary (JOIN table_primary ON eq (AND eq)*)*`
    fn table_join(&mut self) -> SqlResult<TableExpr> {
        let mut left = self.table_primary()?;
        while self.eat(&Tok::Join) {
            let right = self.table_primary()?;
            self.expect(&Tok::On, "`ON` after the joined table")?;
            let mut on = Vec::new();
            loop {
                let l = self.qual_name()?;
                self.expect(&Tok::Eq, "`=` in the join condition")?;
                let r = self.qual_name()?;
                on.push((l, r));
                if !self.eat(&Tok::And) {
                    break;
                }
            }
            let span = left.span().merge(on.last().expect("non-empty").1.span);
            left = TableExpr::Join {
                left: Box::new(left),
                right: Box::new(right),
                on,
                span,
            };
        }
        Ok(left)
    }

    /// `table_primary := name [AS alias] | '(' SELECT … ')' [AS alias]
    ///                 | '(' table_expr ')' [AS alias]`
    fn table_primary(&mut self) -> SqlResult<TableExpr> {
        if self.peek_is(&Tok::LParen) {
            let open = self.advance().span;
            if self.peek_is(&Tok::Select) {
                let select = self.select_stmt(false)?;
                let close = self.expect(&Tok::RParen, "`)` closing the subquery")?;
                let alias = self.alias()?;
                return Ok(TableExpr::Subquery {
                    select: Box::new(select),
                    alias,
                    span: open.merge(close),
                });
            }
            let inner = self.table_expr()?;
            let close = self.expect(&Tok::RParen, "`)` closing the table expression")?;
            let alias_span = self.peek().map(|t| t.span);
            let alias = self.alias()?;
            // An alias on a parenthesized table expression re-labels a named
            // table; unions and joins have no single namespace to re-label,
            // so an alias there would be silently meaningless — reject it
            // and point at the supported alternative.
            if let (Some(a), TableExpr::Named { name, span, .. }) = (&alias, &inner) {
                return Ok(TableExpr::Named {
                    name: name.clone(),
                    alias: Some(a.clone()),
                    span: *span,
                });
            }
            if alias.is_some() {
                return Err(SqlError::at(
                    alias_span.unwrap_or_else(|| self.eof_span()),
                    "aliases on parenthesized UNION ALL / JOIN expressions are not supported; \
                     wrap the expression in a subquery instead: `(SELECT * FROM …) AS name`",
                ));
            }
            let _ = (open, close);
            return Ok(inner);
        }
        let (name, span) = self.ident("a table name")?;
        let alias = self.alias()?;
        Ok(TableExpr::Named { name, alias, span })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn qual_name(&mut self) -> SqlResult<QualName> {
        let (first, first_span) = self.ident("a column name")?;
        if self.peek_is(&Tok::Dot) {
            self.advance();
            let (name, name_span) = self.ident("a column name after `.`")?;
            Ok(QualName {
                qualifier: Some(first),
                name,
                span: first_span.merge(name_span),
            })
        } else {
            Ok(QualName {
                qualifier: None,
                name: first,
                span: first_span,
            })
        }
    }

    /// `expr := and_expr (OR and_expr)*`
    fn expr(&mut self) -> SqlResult<SqlExpr> {
        let mut left = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let right = self.and_expr()?;
            left = binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    /// `and_expr := not_expr (AND not_expr)*`
    fn and_expr(&mut self) -> SqlResult<SqlExpr> {
        let mut left = self.not_expr()?;
        while self.peek_is(&Tok::And) {
            self.advance();
            let right = self.not_expr()?;
            left = binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    /// `not_expr := NOT not_expr | cmp_expr`
    fn not_expr(&mut self) -> SqlResult<SqlExpr> {
        if self.peek_is(&Tok::Not) {
            let not_span = self.advance().span;
            let inner = self.not_expr()?;
            let span = not_span.merge(inner.span());
            return Ok(SqlExpr::Not(Box::new(inner), span));
        }
        self.cmp_expr()
    }

    /// `cmp_expr := add_expr [(= | != | < | <= | > | >=) add_expr]`
    fn cmp_expr(&mut self) -> SqlResult<SqlExpr> {
        let left = self.add_expr()?;
        let op = match self.peek().map(|t| &t.tok) {
            Some(Tok::Eq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.add_expr()?;
        Ok(binary(op, left, right))
    }

    /// `add_expr := mul_expr ((+ | -) mul_expr)*`
    fn add_expr(&mut self) -> SqlResult<SqlExpr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.tok) {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.mul_expr()?;
            left = binary(op, left, right);
        }
        Ok(left)
    }

    /// `mul_expr := atom ((* | /) atom)*`
    fn mul_expr(&mut self) -> SqlResult<SqlExpr> {
        let mut left = self.atom()?;
        loop {
            let op = match self.peek().map(|t| &t.tok) {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.atom()?;
            left = binary(op, left, right);
        }
        Ok(left)
    }

    /// `atom := literal | [-] number | qual_name | '(' expr ')'`
    fn atom(&mut self) -> SqlResult<SqlExpr> {
        let Some(t) = self.peek() else {
            return Err(SqlError::at(
                self.eof_span(),
                "expected an expression, found end of input",
            ));
        };
        let span = t.span;
        match &t.tok {
            Tok::Int(v) => {
                let e = SqlExpr::Literal(Lit::Int(*v), span);
                self.pos += 1;
                Ok(e)
            }
            Tok::Float(v) => {
                let e = SqlExpr::Literal(Lit::Float(*v), span);
                self.pos += 1;
                Ok(e)
            }
            Tok::Str(s) => {
                let e = SqlExpr::Literal(Lit::Str(s.clone()), span);
                self.pos += 1;
                Ok(e)
            }
            Tok::True => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Lit::Bool(true), span))
            }
            Tok::False => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Lit::Bool(false), span))
            }
            Tok::Null => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Lit::Null, span))
            }
            Tok::Minus => {
                // Negative numeric literal (the dialect has no general unary
                // minus; `0 - x` expresses negation of a column).
                self.pos += 1;
                match self.peek() {
                    Some(Token {
                        tok: Tok::Int(v),
                        span: num_span,
                    }) => {
                        let e = SqlExpr::Literal(Lit::Int(-*v), span.merge(*num_span));
                        self.pos += 1;
                        Ok(e)
                    }
                    Some(Token {
                        tok: Tok::Float(v),
                        span: num_span,
                    }) => {
                        let e = SqlExpr::Literal(Lit::Float(-*v), span.merge(*num_span));
                        self.pos += 1;
                        Ok(e)
                    }
                    _ => Err(SqlError::at(
                        span,
                        "`-` must be followed by a numeric literal (use `0 - x` to negate a column)",
                    )),
                }
            }
            Tok::LParen => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "`)` closing the parenthesized expression")?;
                Ok(inner)
            }
            Tok::Ident(_) => Ok(SqlExpr::Column(self.qual_name()?)),
            other => Err(SqlError::at(
                span,
                format!("expected an expression, found {other}"),
            )),
        }
    }
}

fn binary(op: BinOp, left: SqlExpr, right: SqlExpr) -> SqlExpr {
    let span = left.span().merge(right.span());
    SqlExpr::Binary {
        op,
        left: Box::new(left),
        right: Box::new(right),
        span,
    }
}

/// Parses a `p<id>` party name into its numeric id.
fn parse_party_name(name: &str) -> Option<u32> {
    let rest = name.strip_prefix('p').or_else(|| name.strip_prefix('P'))?;
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_expr(src: &str) -> SqlExpr {
        let sql = format!("SELECT a FROM t WHERE {src} REVEAL TO p1");
        parse_select(&sql).unwrap().where_clause.unwrap()
    }

    #[test]
    fn precedence_or_lowest_mul_highest() {
        // a OR b AND c  =>  (a OR (b AND c))
        assert_eq!(parse_expr("a OR b AND c").to_string(), "(a OR (b AND c))");
        // a + b * c > d  =>  ((a + (b * c)) > d)
        assert_eq!(
            parse_expr("a + b * c > d").to_string(),
            "((a + (b * c)) > d)"
        );
        // NOT binds tighter than AND.
        assert_eq!(
            parse_expr("NOT a = 1 AND b = 2").to_string(),
            "((NOT (a = 1)) AND (b = 2))"
        );
        // Parentheses override.
        assert_eq!(parse_expr("(a + b) * c").to_string(), "((a + b) * c)");
        // Left associativity of - and /.
        assert_eq!(
            parse_expr("a - b - c = 0").to_string(),
            "(((a - b) - c) = 0)"
        );
        assert_eq!(
            parse_expr("a / b / c = 0").to_string(),
            "(((a / b) / c) = 0)"
        );
    }

    #[test]
    fn literals_and_negative_numbers() {
        assert_eq!(parse_expr("a = -5").to_string(), "(a = -5)");
        assert_eq!(parse_expr("a = -2.5").to_string(), "(a = -2.5)");
        assert_eq!(parse_expr("a = 'x''y'").to_string(), "(a = 'x''y')");
        assert_eq!(
            parse_expr("a = TRUE OR a = FALSE").to_string(),
            "((a = TRUE) OR (a = FALSE))"
        );
        assert_eq!(parse_expr("NOT a = NULL").to_string(), "(NOT (a = NULL))");
    }

    #[test]
    fn qualified_names() {
        let e = parse_expr("d.diagnosis = 8");
        assert_eq!(e.to_string(), "(d.diagnosis = 8)");
    }

    #[test]
    fn full_select_clauses_round_trip() {
        let sql = "SELECT DISTINCT zip, total FROM (a UNION ALL b) JOIN c ON zip = zip \
                   WHERE total > 10 GROUP BY zip ORDER BY total DESC LIMIT 5 REVEAL TO p1, p2";
        let stmt = parse_select(sql).unwrap();
        assert!(stmt.distinct);
        assert_eq!(stmt.items.len(), 2);
        assert_eq!(stmt.group_by.len(), 1);
        assert_eq!(stmt.limit, Some(5));
        assert_eq!(stmt.reveal_to.len(), 2);
        let printed = stmt.to_string();
        let reparsed = parse_select(&printed).unwrap();
        assert_eq!(reparsed.to_string(), printed);
    }

    #[test]
    fn aggregates() {
        let sql = "SELECT zip, SUM(score) AS total FROM t GROUP BY zip REVEAL TO p1";
        let stmt = parse_select(sql).unwrap();
        assert!(matches!(
            &stmt.items[1],
            SelectItem::Agg {
                func: AggFunc::Sum,
                distinct: false,
                ..
            }
        ));
        let sql = "SELECT COUNT(*) AS n FROM t REVEAL TO p1";
        let stmt = parse_select(sql).unwrap();
        assert!(matches!(
            &stmt.items[0],
            SelectItem::Agg {
                func: AggFunc::Count,
                arg: AggArg::Star,
                ..
            }
        ));
        let sql = "SELECT COUNT(DISTINCT patientID) AS n FROM t REVEAL TO p1";
        let stmt = parse_select(sql).unwrap();
        assert!(matches!(
            &stmt.items[0],
            SelectItem::Agg { distinct: true, .. }
        ));
        for func in ["MIN", "MAX"] {
            let sql = format!("SELECT {func}(v) AS m FROM t REVEAL TO p1");
            assert!(parse_select(&sql).is_ok(), "{func}");
        }
    }

    #[test]
    fn aggregate_argument_errors() {
        assert!(parse_select("SELECT SUM(*) AS s FROM t REVEAL TO p1").is_err());
        assert!(parse_select("SELECT SUM(DISTINCT v) AS s FROM t REVEAL TO p1").is_err());
        assert!(parse_select("SELECT COUNT(DISTINCT *) AS s FROM t REVEAL TO p1").is_err());
    }

    #[test]
    fn create_table_forms() {
        let sql = "CREATE TABLE scores (ssn INT TRUSTED BY (p1), score INT, tag TEXT PUBLIC) \
                   WITH OWNER p2 AT 'mpc.b.com'; \
                   SELECT score FROM scores REVEAL TO p2";
        let script = parse_script(sql).unwrap();
        let t = &script.tables[0];
        assert_eq!(t.name, "scores");
        assert_eq!(t.owner.id, 2);
        assert_eq!(t.owner.host.as_deref(), Some("mpc.b.com"));
        match &t.columns[0].trust {
            TrustSpec::Parties(ps) => {
                assert_eq!(ps.len(), 1);
                assert_eq!(ps[0].id, 1);
                assert_eq!(ps[0].host, None);
            }
            other => panic!("expected TRUSTED BY list, got {other:?}"),
        }
        assert_eq!(t.columns[1].trust, TrustSpec::Private);
        assert_eq!(t.columns[2].trust, TrustSpec::Public);
        assert_eq!(t.columns[2].dtype, TypeName::Text);
    }

    #[test]
    fn subquery_in_from() {
        let sql = "SELECT cnt FROM (SELECT diagnosis, COUNT(*) AS cnt FROM d GROUP BY diagnosis) \
                   ORDER BY cnt DESC REVEAL TO p1";
        let stmt = parse_select(sql).unwrap();
        assert!(matches!(stmt.from, TableExpr::Subquery { .. }));
    }

    #[test]
    fn reveal_clause_rules() {
        // Missing REVEAL TO at top level.
        let err = parse_select("SELECT a FROM t").unwrap_err();
        assert!(err.message.contains("REVEAL TO"));
        // REVEAL TO inside a subquery.
        let err =
            parse_select("SELECT a FROM (SELECT a FROM t REVEAL TO p1) REVEAL TO p1").unwrap_err();
        assert!(err.message.contains("outermost"));
    }

    #[test]
    fn error_spans_point_at_offending_token() {
        let sql = "SELECT a FROM t WHERE a >< 2 REVEAL TO p1";
        let err = parse_select(sql).unwrap_err();
        // The `<` after `>` starts the bad token; `>` is consumed as Gt and
        // `< 2` fails at... actually `a >< 2` lexes as a, Gt, Lt, 2: the
        // parser errors at `<` which begins an invalid atom.
        assert_eq!(err.span.start, sql.find("< 2").unwrap());
        let located = err.located(sql);
        assert_eq!(located.line, Some(1));
        assert!(located.to_string().contains('^'));

        let sql = "SELECT a FROM t WHERE REVEAL TO p1";
        let err = parse_select(sql).unwrap_err();
        assert_eq!(err.span.start, sql.find("REVEAL").unwrap());

        // End-of-input errors point one past the end.
        let sql = "SELECT a FROM";
        let err = parse_select(sql).unwrap_err();
        assert_eq!(err.span.start, sql.len());
    }

    #[test]
    fn union_all_and_join_shapes() {
        let sql = "SELECT x FROM a UNION ALL b UNION ALL c REVEAL TO p1";
        let stmt = parse_select(sql).unwrap();
        match &stmt.from {
            TableExpr::Union { branches, .. } => assert_eq!(branches.len(), 3),
            other => panic!("expected union, got {other:?}"),
        }
        // UNION without ALL is rejected.
        assert!(parse_select("SELECT x FROM a UNION b REVEAL TO p1").is_err());
        // JOIN binds tighter than UNION ALL.
        let sql = "SELECT x FROM a UNION ALL b JOIN c ON k = k REVEAL TO p1";
        let stmt = parse_select(sql).unwrap();
        match &stmt.from {
            TableExpr::Union { branches, .. } => {
                assert!(matches!(branches[1], TableExpr::Join { .. }))
            }
            other => panic!("expected union, got {other:?}"),
        }
        // Multi-key join conditions.
        let sql = "SELECT x FROM a JOIN b ON a.k = b.k AND a.j = b.j REVEAL TO p1";
        let stmt = parse_select(sql).unwrap();
        match &stmt.from {
            TableExpr::Join { on, .. } => assert_eq!(on.len(), 2),
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn table_aliases() {
        let sql = "SELECT d.k FROM t AS d JOIN (u) AS m ON d.k = m.k REVEAL TO p1";
        let stmt = parse_select(sql).unwrap();
        match &stmt.from {
            TableExpr::Join { left, right, .. } => {
                assert!(matches!(&**left, TableExpr::Named { alias: Some(a), .. } if a == "d"));
                assert!(matches!(&**right, TableExpr::Named { alias: Some(a), .. } if a == "m"));
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn party_reference_forms() {
        let sql = "SELECT a FROM t REVEAL TO 3";
        assert_eq!(parse_select(sql).unwrap().reveal_to[0].id, 3);
        let sql = "SELECT a FROM t REVEAL TO P7";
        assert_eq!(parse_select(sql).unwrap().reveal_to[0].id, 7);
        let err = parse_select("SELECT a FROM t REVEAL TO bob").unwrap_err();
        assert!(err.message.contains("party"));
    }

    #[test]
    fn statement_spans_cover_every_clause() {
        // Top-level statement: span runs through the final party reference.
        let sql = "SELECT a FROM t LIMIT 5 REVEAL TO p1";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.span.start, 0);
        assert_eq!(stmt.span.end, sql.len());
        // Subquery (no REVEAL TO): span still covers through its last clause
        // rather than collapsing to the SELECT keyword.
        let sql = "SELECT a FROM (SELECT a FROM t ORDER BY a DESC LIMIT 3) REVEAL TO p1";
        let stmt = parse_select(sql).unwrap();
        let TableExpr::Subquery { select, .. } = &stmt.from else {
            panic!("expected subquery");
        };
        let inner = &sql[select.span.start..select.span.end];
        assert!(inner.ends_with("LIMIT 3"), "inner span was `{inner}`");
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        assert!(parse_select("SELECT a FROM t REVEAL TO p1 garbage").is_err());
        assert!(
            parse_script("SELECT a FROM t REVEAL TO p1; SELECT b FROM t REVEAL TO p1").is_err()
        );
    }
}
