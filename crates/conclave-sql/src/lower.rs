//! Binding and lowering: typed AST → `conclave_ir` operator DAG.
//!
//! The lowerer resolves every table and column reference against a
//! [`Catalog`] of input schemas (built from the script's `CREATE TABLE`
//! declarations and/or supplied programmatically), type-checks predicates,
//! and emits DAG nodes through [`conclave_ir::builder::QueryBuilder`] — so a
//! SQL query produces exactly the node chain a hand-built query would:
//!
//! | SQL clause | DAG node |
//! |---|---|
//! | `FROM t` | `Input` |
//! | `UNION ALL` | `Concat` |
//! | `JOIN … ON` | `Join` |
//! | `WHERE` | `Filter` |
//! | `GROUP BY` + aggregate | `Aggregate` |
//! | `COUNT(DISTINCT c)` | `DistinctCount` |
//! | `a * b AS x` | `Multiply` |
//! | `a / b AS x` | `Divide` |
//! | select list reorder | `Project` |
//! | `SELECT DISTINCT` | `Distinct` |
//! | `ORDER BY` | `SortBy` |
//! | `LIMIT` | `Limit` |
//! | `REVEAL TO` | `Collect` |
//!
//! All errors carry the span of the offending reference in the SQL text.

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use conclave_ir::builder::{Query, QueryBuilder, TableHandle};
use conclave_ir::expr::{BinOp, Expr};
use conclave_ir::ops::{join_schema, AggFunc, Operand, Operator};
use conclave_ir::party::Party;
use conclave_ir::schema::{ColumnDef, Schema};
use conclave_ir::trust::TrustSet;
use conclave_ir::types::{DataType, Value};

/// The set of input relations a query may reference: name → (schema, owner).
///
/// A catalog can be built programmatically (when the host application knows
/// its schemas) or from the script's own `CREATE TABLE` declarations; script
/// declarations take precedence on name clashes.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<(String, Schema, Party)>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Adds (or replaces) a table, builder-style.
    pub fn with_table(mut self, name: impl Into<String>, schema: Schema, owner: Party) -> Catalog {
        self.add_table(name, schema, owner);
        self
    }

    /// Adds (or replaces) a table.
    pub fn add_table(&mut self, name: impl Into<String>, schema: Schema, owner: Party) {
        let name = name.into();
        self.tables.retain(|(n, _, _)| n != &name);
        self.tables.push((name, schema, owner));
    }

    /// Looks up a table by name.
    pub fn get(&self, name: &str) -> Option<(&Schema, &Party)> {
        self.tables
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, s, p)| (s, p))
    }

    /// Iterates over `(name, schema, owner)` entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Schema, &Party)> {
        self.tables.iter().map(|(n, s, p)| (n.as_str(), s, p))
    }
}

/// Converts a `CREATE TABLE` declaration into an IR schema (types and trust
/// annotations included).
pub fn declared_schema(table: &CreateTable) -> SqlResult<Schema> {
    let mut columns: Vec<ColumnDef> = Vec::with_capacity(table.columns.len());
    for col in &table.columns {
        if columns.iter().any(|c| c.name == col.name) {
            return Err(SqlError::at(
                col.span,
                format!("duplicate column `{}` in table `{}`", col.name, table.name),
            ));
        }
        let dtype = match col.dtype {
            TypeName::Int => DataType::Int,
            TypeName::Float => DataType::Float,
            TypeName::Bool => DataType::Bool,
            TypeName::Text => DataType::Str,
        };
        let trust = match &col.trust {
            TrustSpec::Private => TrustSet::private(),
            TrustSpec::Public => TrustSet::Public,
            TrustSpec::Parties(ps) => TrustSet::of(ps.iter().map(|p| p.id)),
        };
        columns.push(ColumnDef::with_trust(col.name.clone(), dtype, trust));
    }
    Ok(Schema::new(columns))
}

fn party_of(p: &PartyRef) -> Party {
    Party::new(p.id, p.host.clone().unwrap_or_else(|| format!("p{}", p.id)))
}

/// Lowers a parsed script to an IR [`Query`], resolving table references
/// against the script's own `CREATE TABLE` declarations only.
pub fn lower_script(script: &Script) -> SqlResult<Query> {
    lower_script_with_catalog(script, &Catalog::default())
}

/// Lowers a parsed script to an IR [`Query`]. Table references resolve
/// against the script's `CREATE TABLE` declarations first, then `external`.
pub fn lower_script_with_catalog(script: &Script, external: &Catalog) -> SqlResult<Query> {
    let mut catalog = external.clone();
    for t in &script.tables {
        if script
            .tables
            .iter()
            .filter(|other| other.name == t.name)
            .count()
            > 1
        {
            return Err(SqlError::at(
                t.span,
                format!("table `{}` is declared more than once", t.name),
            ));
        }
        catalog.add_table(t.name.clone(), declared_schema(t)?, party_of(&t.owner));
    }
    let mut lowerer = Lowerer {
        builder: QueryBuilder::new(),
        catalog,
    };
    lowerer.lower_select(&script.query)?;
    // Checked after lowering so unresolved table/column references (which
    // the reveal clause may depend on) report first.
    check_reveal_targets(script, &lowerer.catalog)?;
    lowerer.builder.build().map_err(|e| {
        SqlError::at(
            script.query.span,
            format!("query failed to validate after lowering: {e}"),
        )
    })
}

/// Validates the query's `REVEAL TO` targets against the parties the script
/// actually declares, so a typo'd recipient fails here with a caret into the
/// reveal clause instead of surfacing as a late driver failure.
///
/// A party is *declared* if it owns a catalog table (script `CREATE TABLE`
/// or external registration), appears in a `TRUSTED BY` annotation of any
/// catalog column, or carries its own endpoint declaration in the reveal
/// clause itself (`REVEAL TO p9 AT 'host'`).
fn check_reveal_targets(script: &Script, catalog: &Catalog) -> SqlResult<()> {
    let mut declared: Vec<u32> = Vec::new();
    for (_, schema, owner) in catalog.iter() {
        declared.push(owner.id);
        for col in &schema.columns {
            if let Some(ps) = col.trust.parties() {
                declared.extend(ps.iter());
            }
        }
    }
    for p in &script.query.reveal_to {
        if p.host.is_none() && !declared.contains(&p.id) {
            return Err(SqlError::at(
                p.span,
                format!(
                    "`REVEAL TO p{id}` names an undeclared party: p{id} owns no input \
                     table and appears in no TRUSTED BY annotation (declare an endpoint \
                     with `REVEAL TO p{id} AT 'host'` if the recipient is external)",
                    id = p.id
                ),
            ));
        }
    }
    Ok(())
}

/// The provenance of one output column during lowering: its current (output)
/// name, the name it had in the source relation a qualifier refers to, and
/// the qualifiers (table name, alias) under which it can be referenced.
/// Joins rename colliding right-side columns to `<name>_r`, so output and
/// original names can differ — qualified references resolve through the
/// original name (`r.x` finds the column now called `x_r`).
#[derive(Debug, Clone)]
struct ColumnOrigin {
    output: String,
    original: String,
    qualifiers: Vec<String>,
}

/// The column namespace of one relation during lowering: its schema plus the
/// per-column provenance used to resolve qualified references.
#[derive(Debug, Clone)]
struct Scope {
    schema: Schema,
    origins: Vec<ColumnOrigin>,
}

impl Scope {
    /// A scope whose columns carry no qualifiers (derived relations: unions,
    /// select outputs).
    fn unqualified(schema: Schema) -> Scope {
        Scope::with_qualifiers(schema, Vec::new())
    }

    /// A scope whose columns are all referenceable under `qualifiers`.
    fn with_qualifiers(schema: Schema, qualifiers: Vec<String>) -> Scope {
        let origins = schema
            .names()
            .iter()
            .map(|n| ColumnOrigin {
                output: n.to_string(),
                original: n.to_string(),
                qualifiers: qualifiers.clone(),
            })
            .collect();
        Scope { schema, origins }
    }

    /// Resolves a possibly-qualified column reference to its name in the
    /// current schema, erroring (with the reference's span) on unknown
    /// qualifiers or columns. Qualified references resolve through the
    /// column's provenance, so they keep working across join renames.
    fn resolve(&self, q: &QualName) -> SqlResult<String> {
        if let Some(qual) = &q.qualifier {
            if !self
                .origins
                .iter()
                .any(|o| o.qualifiers.iter().any(|x| x == qual))
            {
                return Err(SqlError::at(
                    q.span,
                    format!("unknown table or alias `{qual}`"),
                ));
            }
            return self
                .origins
                .iter()
                .find(|o| {
                    o.qualifiers.iter().any(|x| x == qual)
                        && (o.original == q.name || o.output == q.name)
                })
                .map(|o| o.output.clone())
                .ok_or_else(|| SqlError::at(q.span, format!("unknown column `{q}`")));
        }
        if self.schema.index_of(&q.name).is_none() {
            return Err(SqlError::at(q.span, format!("unknown column `{}`", q.name)));
        }
        Ok(q.name.clone())
    }

    /// Like [`Scope::resolve`] but returns `None` instead of erroring.
    fn try_resolve(&self, q: &QualName) -> Option<String> {
        self.resolve(q).ok()
    }
}

struct Lowerer {
    builder: QueryBuilder,
    catalog: Catalog,
}

impl Lowerer {
    // ------------------------------------------------------------------
    // FROM clause
    // ------------------------------------------------------------------

    fn lower_table_expr(&mut self, te: &TableExpr) -> SqlResult<(TableHandle, Scope)> {
        match te {
            TableExpr::Named { name, alias, span } => {
                let (schema, party) = match self.catalog.get(name) {
                    Some((s, p)) => (s.clone(), p.clone()),
                    None => {
                        return Err(SqlError::at(
                            *span,
                            format!(
                                "unknown table `{name}` (declare it with CREATE TABLE or register it in the catalog)"
                            ),
                        ))
                    }
                };
                // Every reference gets its own `Input` node (the driver binds
                // input data by relation name, so several references to one
                // table all see the same rows; a per-reference node is what a
                // self-join needs).
                let handle = self.builder.input(name, schema.clone(), party);
                let mut qualifiers = vec![name.clone()];
                if let Some(a) = alias {
                    qualifiers.push(a.clone());
                }
                Ok((handle, Scope::with_qualifiers(schema, qualifiers)))
            }
            TableExpr::Subquery { select, alias, .. } => {
                let (handle, scope) = self.lower_select(select)?;
                let qualifiers = alias.iter().cloned().collect();
                Ok((handle, Scope::with_qualifiers(scope.schema, qualifiers)))
            }
            TableExpr::Union { branches, span } => {
                let mut handles = Vec::with_capacity(branches.len());
                let mut schemas = Vec::with_capacity(branches.len());
                for b in branches {
                    let (h, s) = self.lower_table_expr(b)?;
                    handles.push(h);
                    schemas.push(s.schema);
                }
                let out_schema = Operator::Concat.output_schema(&schemas).map_err(|e| {
                    SqlError::at(*span, format!("UNION ALL branches are incompatible: {e}"))
                })?;
                let handle = self.builder.concat(&handles);
                Ok((handle, Scope::unqualified(out_schema)))
            }
            TableExpr::Join {
                left,
                right,
                on,
                span,
            } => {
                let (lh, ls) = self.lower_table_expr(left)?;
                let (rh, rs) = self.lower_table_expr(right)?;
                let mut left_keys = Vec::with_capacity(on.len());
                let mut right_keys = Vec::with_capacity(on.len());
                for (a, b) in on {
                    let (lk, rk) = match (ls.try_resolve(a), rs.try_resolve(b)) {
                        (Some(lk), Some(rk)) => (lk, rk),
                        _ => match (ls.try_resolve(b), rs.try_resolve(a)) {
                            (Some(lk), Some(rk)) => (lk, rk),
                            _ => {
                                return Err(SqlError::at(
                                    a.span.merge(b.span),
                                    format!(
                                        "join condition `{a} = {b}` must pair a column of the left input with a column of the right input"
                                    ),
                                ))
                            }
                        },
                    };
                    left_keys.push(lk);
                    right_keys.push(rk);
                }
                let out_schema = join_schema(&ls.schema, &rs.schema, &left_keys, &right_keys)
                    .map_err(|e| SqlError::at(*span, format!("invalid join: {e}")))?;
                let lk: Vec<&str> = left_keys.iter().map(|s| s.as_str()).collect();
                let rk: Vec<&str> = right_keys.iter().map(|s| s.as_str()).collect();
                let handle = self.builder.join(lh, rh, &lk, &rk);
                // Provenance of the join output, mirroring `join_schema`: all
                // left columns keep their names; right join keys merge into
                // the corresponding left key (a qualified reference to the
                // right key resolves to the merged column); other right
                // columns colliding with a left name are renamed `<name>_r`,
                // and qualified references through the right table find them
                // via their original name.
                let mut origins: Vec<ColumnOrigin> = ls.origins.clone();
                for (lk_name, rk_name) in left_keys.iter().zip(&right_keys) {
                    if let Some(rko) = rs.origins.iter().find(|o| &o.output == rk_name) {
                        origins.push(ColumnOrigin {
                            output: lk_name.clone(),
                            original: rko.original.clone(),
                            qualifiers: rko.qualifiers.clone(),
                        });
                    }
                }
                for o in &rs.origins {
                    if right_keys.contains(&o.output) {
                        continue;
                    }
                    let output = if ls.schema.index_of(&o.output).is_some() {
                        format!("{}_r", o.output)
                    } else {
                        o.output.clone()
                    };
                    origins.push(ColumnOrigin {
                        output,
                        original: o.original.clone(),
                        qualifiers: o.qualifiers.clone(),
                    });
                }
                Ok((
                    handle,
                    Scope {
                        schema: out_schema,
                        origins,
                    },
                ))
            }
        }
    }

    // ------------------------------------------------------------------
    // Scalar expressions
    // ------------------------------------------------------------------

    fn lower_expr(&self, e: &SqlExpr, scope: &Scope) -> SqlResult<Expr> {
        match e {
            SqlExpr::Column(q) => {
                let name = scope.resolve(q)?;
                Ok(Expr::col(name))
            }
            SqlExpr::Literal(lit, span) => match lit {
                Lit::Int(v) => Ok(Expr::lit(*v)),
                Lit::Float(v) => Ok(Expr::lit(*v)),
                Lit::Str(s) => Ok(Expr::lit(s.as_str())),
                Lit::Bool(b) => Ok(Expr::lit(*b)),
                Lit::Null => Err(SqlError::at(
                    *span,
                    "NULL literals are not supported in expressions",
                )),
            },
            SqlExpr::Not(inner, _) => Ok(self.lower_expr(inner, scope)?.not()),
            SqlExpr::Binary {
                op, left, right, ..
            } => {
                let l = self.lower_expr(left, scope)?;
                let r = self.lower_expr(right, scope)?;
                Ok(Expr::bin(*op, l, r))
            }
        }
    }

    /// Interprets an expression as a `Multiply`/`Divide` operand (a column
    /// reference or a numeric literal), if it is one.
    fn as_operand(&self, e: &SqlExpr, scope: &Scope) -> SqlResult<Option<Operand>> {
        Ok(match e {
            SqlExpr::Column(q) => Some(Operand::col(scope.resolve(q)?)),
            SqlExpr::Literal(Lit::Int(v), _) => Some(Operand::Lit(Value::Int(*v))),
            SqlExpr::Literal(Lit::Float(v), _) => Some(Operand::Lit(Value::Float(*v))),
            _ => None,
        })
    }

    /// Flattens a `*`-chain into operands (`a * b * 2`), or returns `None`
    /// if the expression is not a pure product.
    fn flatten_product(&self, e: &SqlExpr, scope: &Scope) -> SqlResult<Option<Vec<Operand>>> {
        if let SqlExpr::Binary {
            op: BinOp::Mul,
            left,
            right,
            ..
        } = e
        {
            let (Some(mut l), Some(r)) = (
                self.flatten_product(left, scope)?,
                self.flatten_product(right, scope)?,
            ) else {
                return Ok(None);
            };
            l.extend(r);
            return Ok(Some(l));
        }
        Ok(self.as_operand(e, scope)?.map(|o| vec![o]))
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn lower_select(&mut self, stmt: &SelectStmt) -> SqlResult<(TableHandle, Scope)> {
        let (mut handle, mut scope) = self.lower_table_expr(&stmt.from)?;

        // WHERE: a boolean predicate, lowered to Filter.
        if let Some(w) = &stmt.where_clause {
            let predicate = self.lower_expr(w, &scope)?;
            let dtype = predicate
                .infer_type(&scope.schema)
                .map_err(|e| SqlError::at(w.span(), format!("type error in WHERE: {e}")))?;
            if dtype != DataType::Bool {
                return Err(SqlError::at(
                    w.span(),
                    format!("WHERE predicate must be boolean, found {dtype}"),
                ));
            }
            handle = self.builder.filter(handle, predicate);
        }

        // Split the select list into aggregate and plain items.
        let agg_items: Vec<&SelectItem> = stmt
            .items
            .iter()
            .filter(|i| matches!(i, SelectItem::Agg { .. }))
            .collect();
        if agg_items.len() > 1 {
            return Err(SqlError::at(
                agg_items[1].span(),
                "only one aggregate per SELECT is supported (use a subquery for staged aggregation)",
            ));
        }

        if let Some(agg) = agg_items.first() {
            (handle, scope) = self.lower_aggregate_select(stmt, agg, handle, &scope)?;
        } else {
            if !stmt.group_by.is_empty() {
                return Err(SqlError::at(
                    stmt.group_by[0].span,
                    "GROUP BY requires an aggregate in the select list",
                ));
            }
            (handle, scope) = self.lower_plain_select(stmt, handle, &scope)?;
        }

        // SELECT DISTINCT: de-duplicate over the produced columns.
        if stmt.distinct {
            let names: Vec<String> = scope.schema.names().iter().map(|s| s.to_string()).collect();
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            handle = self.builder.distinct(handle, &refs);
            scope = Scope::unqualified(scope.schema.project(&names).expect("own columns"));
        }

        // ORDER BY.
        if let Some(order) = &stmt.order_by {
            let col = scope.resolve(&order.column)?;
            handle = self.builder.sort_by(handle, &col, order.ascending);
        }

        // LIMIT.
        if let Some(n) = stmt.limit {
            handle = self.builder.limit(handle, n);
        }

        // REVEAL TO (outermost query only; the parser guarantees subqueries
        // have no reveal clause).
        if !stmt.reveal_to.is_empty() {
            let parties: Vec<Party> = stmt.reveal_to.iter().map(party_of).collect();
            handle = self.builder.collect(handle, &parties);
        }

        Ok((handle, Scope::unqualified(scope.schema)))
    }

    /// Lowers a select list containing exactly one aggregate call.
    fn lower_aggregate_select(
        &mut self,
        stmt: &SelectStmt,
        agg: &SelectItem,
        handle: TableHandle,
        scope: &Scope,
    ) -> SqlResult<(TableHandle, Scope)> {
        let SelectItem::Agg {
            func,
            arg,
            distinct,
            alias,
            span,
        } = agg
        else {
            unreachable!("caller filtered for aggregate items");
        };

        // Resolve the GROUP BY columns.
        let mut group_by = Vec::with_capacity(stmt.group_by.len());
        for g in &stmt.group_by {
            let name = scope.resolve(g)?;
            if group_by.contains(&name) {
                return Err(SqlError::at(
                    g.span,
                    format!("duplicate GROUP BY column `{name}`"),
                ));
            }
            group_by.push(name);
        }

        // Non-aggregate items must be plain grouping columns.
        let mut desired: Vec<String> = Vec::with_capacity(stmt.items.len());
        for item in &stmt.items {
            match item {
                SelectItem::Agg { .. } => desired.push(String::new()), // placeholder
                SelectItem::Expr {
                    expr: SqlExpr::Column(q),
                    alias,
                    span,
                } => {
                    let name = scope.resolve(q)?;
                    if let Some(a) = alias {
                        if a != &name {
                            return Err(SqlError::at(
                                *span,
                                "renaming a grouping column with AS is not supported",
                            ));
                        }
                    }
                    if !group_by.contains(&name) {
                        return Err(SqlError::at(
                            q.span,
                            format!("column `{name}` must appear in GROUP BY"),
                        ));
                    }
                    desired.push(name);
                }
                other => {
                    return Err(SqlError::at(
                        other.span(),
                        "in an aggregate query, non-aggregate SELECT items must be plain grouping columns",
                    ));
                }
            }
        }

        let (new_handle, out_name) = if *distinct {
            // COUNT(DISTINCT col) → DistinctCount (global only).
            let AggArg::Column(col) = arg else {
                unreachable!("parser rejects COUNT(DISTINCT *)");
            };
            if !group_by.is_empty() {
                return Err(SqlError::at(
                    *span,
                    "COUNT(DISTINCT …) cannot be combined with GROUP BY",
                ));
            }
            let col = scope.resolve(col)?;
            let out = alias.clone().unwrap_or_else(|| format!("distinct_{col}"));
            (self.builder.distinct_count(handle, &col, &out), out)
        } else {
            let over = match arg {
                AggArg::Star => String::new(),
                AggArg::Column(c) => scope.resolve(c)?,
            };
            if *func != AggFunc::Count && over.is_empty() {
                return Err(SqlError::at(
                    *span,
                    format!("{func} requires a column argument"),
                ));
            }
            let out = alias
                .clone()
                .unwrap_or_else(|| default_agg_name(*func, &over));
            let group_refs: Vec<&str> = group_by.iter().map(|s| s.as_str()).collect();
            // The IR COUNT takes no `over` column: COUNT(col) counts rows
            // exactly like COUNT(*).
            let over_for_ir = if *func == AggFunc::Count {
                ""
            } else {
                over.as_str()
            };
            (
                self.builder
                    .aggregate(handle, &out, *func, &group_refs, over_for_ir),
                out,
            )
        };

        // The aggregate node produces (group_by…, out); project if the select
        // list asks for a different order or subset.
        for d in desired.iter_mut() {
            if d.is_empty() {
                *d = out_name.clone();
            }
        }
        let agg_schema_names: Vec<String> = group_by
            .iter()
            .cloned()
            .chain(std::iter::once(out_name.clone()))
            .collect();
        let mut handle = new_handle;
        let mut schema = agg_output_schema(&self.builder, handle);
        if desired != agg_schema_names {
            let refs: Vec<&str> = desired.iter().map(|s| s.as_str()).collect();
            handle = self.builder.project(handle, &refs);
            schema = schema
                .project(&desired)
                .map_err(|e| SqlError::at(stmt.span, format!("invalid select list: {e}")))?;
        }
        Ok((handle, Scope::unqualified(schema)))
    }

    /// Lowers a select list with no aggregates: plain columns, `*`, and
    /// `a * b AS x` / `a / b AS x` computed columns.
    fn lower_plain_select(
        &mut self,
        stmt: &SelectStmt,
        mut handle: TableHandle,
        scope: &Scope,
    ) -> SqlResult<(TableHandle, Scope)> {
        let mut schema = scope.schema.clone();
        let mut desired: Vec<String> = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Star(_) => {
                    desired.extend(scope.schema.names().iter().map(|s| s.to_string()));
                }
                SelectItem::Expr {
                    expr: SqlExpr::Column(q),
                    alias,
                    span,
                } => {
                    let name = scope.resolve(q)?;
                    if let Some(a) = alias {
                        if a != &name {
                            return Err(SqlError::at(
                                *span,
                                "renaming a column with AS is not supported (project the column and give computed columns new names instead)",
                            ));
                        }
                    }
                    desired.push(name);
                }
                SelectItem::Expr { expr, alias, span } => {
                    let Some(out) = alias.clone() else {
                        return Err(SqlError::at(
                            *span,
                            "computed SELECT items need an output name (`expr AS name`)",
                        ));
                    };
                    // `a / b AS x` → Divide.
                    if let SqlExpr::Binary {
                        op: BinOp::Div,
                        left,
                        right,
                        ..
                    } = expr
                    {
                        let (Some(num), Some(den)) = (
                            self.as_operand(left, scope)?,
                            self.as_operand(right, scope)?,
                        ) else {
                            return Err(SqlError::at(
                                *span,
                                "division operands must be columns or numeric literals",
                            ));
                        };
                        handle = self.builder.divide(handle, &out, num, den);
                    } else if let Some(operands) = self.flatten_product(expr, scope)? {
                        if operands.len() < 2 {
                            return Err(SqlError::at(
                                *span,
                                "computed SELECT items must combine at least two operands",
                            ));
                        }
                        handle = self.builder.multiply(handle, &out, operands);
                    } else {
                        return Err(SqlError::at(
                            *span,
                            "unsupported computed SELECT item: only products (`a * b * …`) and divisions (`a / b`) of columns and numeric literals are supported",
                        ));
                    }
                    schema = agg_output_schema(&self.builder, handle);
                    desired.push(out);
                }
                SelectItem::Agg { .. } => unreachable!("caller handled aggregate selects"),
            }
        }
        // Project to the requested columns unless they already match.
        let current: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();
        if desired != current {
            let refs: Vec<&str> = desired.iter().map(|s| s.as_str()).collect();
            handle = self.builder.project(handle, &refs);
            schema = schema
                .project(&desired)
                .map_err(|e| SqlError::at(stmt.span, format!("invalid select list: {e}")))?;
        }
        Ok((handle, Scope::unqualified(schema)))
    }
}

/// Default output-column name for an unaliased aggregate.
fn default_agg_name(func: AggFunc, over: &str) -> String {
    match func {
        AggFunc::Count => "cnt".to_string(),
        AggFunc::Sum => format!("sum_{over}"),
        AggFunc::Min => format!("min_{over}"),
        AggFunc::Max => format!("max_{over}"),
    }
}

/// Reads the current output schema of a builder node. The lowerer validated
/// the operator before pushing the node, so the handle is always live.
fn agg_output_schema(builder: &QueryBuilder, handle: TableHandle) -> Schema {
    builder.schema_of(handle)
}
