//! Hand-written lexer for the Conclave SQL dialect.
//!
//! The lexer turns the query text into a vector of spanned [`Token`]s.
//! Keywords are recognized case-insensitively; identifiers keep their
//! original spelling. Comments run from `--` to the end of the line.

use crate::error::{Span, SqlError, SqlResult};
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier (table, column, alias or party name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),

    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*` (projection star or multiplication, decided by the parser).
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=` or `==`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,

    /// `SELECT`
    Select,
    /// `DISTINCT`
    Distinct,
    /// `AS`
    As,
    /// `FROM`
    From,
    /// `JOIN`
    Join,
    /// `ON`
    On,
    /// `WHERE`
    Where,
    /// `GROUP`
    Group,
    /// `BY`
    By,
    /// `ORDER`
    Order,
    /// `ASC`
    Asc,
    /// `DESC`
    Desc,
    /// `LIMIT`
    Limit,
    /// `UNION`
    Union,
    /// `ALL`
    All,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// `CREATE`
    Create,
    /// `TABLE`
    Table,
    /// `WITH`
    With,
    /// `OWNER`
    Owner,
    /// `REVEAL`
    Reveal,
    /// `TO`
    To,
    /// `PUBLIC`
    Public,
    /// `TRUSTED`
    Trusted,
    /// `AT`
    At,
    /// `TRUE`
    True,
    /// `FALSE`
    False,
    /// `NULL`
    Null,
    /// `INT` (column type)
    IntType,
    /// `FLOAT` (column type)
    FloatType,
    /// `BOOL` (column type)
    BoolType,
    /// `TEXT` / `STRING` (column type)
    TextType,
    /// `EXPLAIN`
    Explain,
    /// `LEAKAGE`
    Leakage,
    /// `SUM`
    Sum,
    /// `COUNT`
    Count,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Float(v) => write!(f, "float `{v}`"),
            Tok::Str(s) => write!(f, "string '{s}'"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            other => write!(f, "`{}`", keyword_text(other)),
        }
    }
}

/// The canonical (uppercase) spelling of a keyword token.
fn keyword_text(tok: &Tok) -> &'static str {
    match tok {
        Tok::Select => "SELECT",
        Tok::Distinct => "DISTINCT",
        Tok::As => "AS",
        Tok::From => "FROM",
        Tok::Join => "JOIN",
        Tok::On => "ON",
        Tok::Where => "WHERE",
        Tok::Group => "GROUP",
        Tok::By => "BY",
        Tok::Order => "ORDER",
        Tok::Asc => "ASC",
        Tok::Desc => "DESC",
        Tok::Limit => "LIMIT",
        Tok::Union => "UNION",
        Tok::All => "ALL",
        Tok::And => "AND",
        Tok::Or => "OR",
        Tok::Not => "NOT",
        Tok::Create => "CREATE",
        Tok::Table => "TABLE",
        Tok::With => "WITH",
        Tok::Owner => "OWNER",
        Tok::Reveal => "REVEAL",
        Tok::To => "TO",
        Tok::Public => "PUBLIC",
        Tok::Trusted => "TRUSTED",
        Tok::At => "AT",
        Tok::True => "TRUE",
        Tok::False => "FALSE",
        Tok::Null => "NULL",
        Tok::IntType => "INT",
        Tok::FloatType => "FLOAT",
        Tok::BoolType => "BOOL",
        Tok::TextType => "TEXT",
        Tok::Explain => "EXPLAIN",
        Tok::Leakage => "LEAKAGE",
        Tok::Sum => "SUM",
        Tok::Count => "COUNT",
        Tok::Min => "MIN",
        Tok::Max => "MAX",
        _ => unreachable!("keyword_text called on a non-keyword token"),
    }
}

/// Maps an identifier to its keyword token, if it is one (case-insensitive).
fn keyword(word: &str) -> Option<Tok> {
    let upper = word.to_ascii_uppercase();
    Some(match upper.as_str() {
        "SELECT" => Tok::Select,
        "DISTINCT" => Tok::Distinct,
        "AS" => Tok::As,
        "FROM" => Tok::From,
        "JOIN" => Tok::Join,
        "ON" => Tok::On,
        "WHERE" => Tok::Where,
        "GROUP" => Tok::Group,
        "BY" => Tok::By,
        "ORDER" => Tok::Order,
        "ASC" => Tok::Asc,
        "DESC" => Tok::Desc,
        "LIMIT" => Tok::Limit,
        "UNION" => Tok::Union,
        "ALL" => Tok::All,
        "AND" => Tok::And,
        "OR" => Tok::Or,
        "NOT" => Tok::Not,
        "CREATE" => Tok::Create,
        "TABLE" => Tok::Table,
        "WITH" => Tok::With,
        "OWNER" => Tok::Owner,
        "REVEAL" => Tok::Reveal,
        "TO" => Tok::To,
        "PUBLIC" => Tok::Public,
        "TRUSTED" => Tok::Trusted,
        "AT" => Tok::At,
        "TRUE" => Tok::True,
        "FALSE" => Tok::False,
        "NULL" => Tok::Null,
        "INT" | "INTEGER" => Tok::IntType,
        "FLOAT" | "DOUBLE" => Tok::FloatType,
        "BOOL" | "BOOLEAN" => Tok::BoolType,
        "TEXT" | "STRING" | "STR" => Tok::TextType,
        "EXPLAIN" => Tok::Explain,
        "LEAKAGE" => Tok::Leakage,
        "SUM" => Tok::Sum,
        "COUNT" => Tok::Count,
        "MIN" => Tok::Min,
        "MAX" => Tok::Max,
        _ => return None,
    })
}

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind (and literal payload, if any).
    pub tok: Tok,
    /// The byte range the token occupies in the source.
    pub span: Span,
}

/// Tokenizes the whole source text.
pub fn lex(src: &str) -> SqlResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment: skip to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push_sym(&mut tokens, Tok::LParen, start, &mut i),
            ')' => push_sym(&mut tokens, Tok::RParen, start, &mut i),
            ',' => push_sym(&mut tokens, Tok::Comma, start, &mut i),
            ';' => push_sym(&mut tokens, Tok::Semi, start, &mut i),
            '.' => push_sym(&mut tokens, Tok::Dot, start, &mut i),
            '*' => push_sym(&mut tokens, Tok::Star, start, &mut i),
            '+' => push_sym(&mut tokens, Tok::Plus, start, &mut i),
            '-' => push_sym(&mut tokens, Tok::Minus, start, &mut i),
            '/' => push_sym(&mut tokens, Tok::Slash, start, &mut i),
            '=' => {
                i += 1;
                if bytes.get(i) == Some(&b'=') {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Eq,
                    span: Span::new(start, i),
                });
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    tokens.push(Token {
                        tok: Tok::Ne,
                        span: Span::new(start, i),
                    });
                } else {
                    return Err(SqlError::at(
                        Span::new(start, start + 1),
                        "unexpected character `!` (did you mean `!=`?)",
                    ));
                }
            }
            '<' => {
                i += 1;
                let tok = match bytes.get(i) {
                    Some(b'=') => {
                        i += 1;
                        Tok::Le
                    }
                    Some(b'>') => {
                        i += 1;
                        Tok::Ne
                    }
                    _ => Tok::Lt,
                };
                tokens.push(Token {
                    tok,
                    span: Span::new(start, i),
                });
            }
            '>' => {
                i += 1;
                let tok = if bytes.get(i) == Some(&b'=') {
                    i += 1;
                    Tok::Ge
                } else {
                    Tok::Gt
                };
                tokens.push(Token {
                    tok,
                    span: Span::new(start, i),
                });
            }
            '\'' => {
                // Scan byte-wise for the closing quote (quotes are ASCII, so
                // they cannot occur inside a multi-byte UTF-8 sequence), then
                // decode the collected bytes as UTF-8 in one go.
                i += 1;
                let mut raw: Vec<u8> = Vec::new();
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            raw.push(b'\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            raw.push(b);
                            i += 1;
                        }
                        None => {
                            return Err(SqlError::at(
                                Span::new(start, i),
                                "unterminated string literal",
                            ));
                        }
                    }
                }
                let value = String::from_utf8(raw)
                    .expect("a byte slice of valid UTF-8 delimited by ASCII quotes is valid UTF-8");
                tokens.push(Token {
                    tok: Tok::Str(value),
                    span: Span::new(start, i),
                });
            }
            '0'..='9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let span = Span::new(start, i);
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| {
                        SqlError::at(span, format!("invalid float literal `{text}`"))
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        SqlError::at(span, format!("integer literal `{text}` out of range"))
                    })?)
                };
                tokens.push(Token { tok, span });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = keyword(word).unwrap_or_else(|| Tok::Ident(word.to_string()));
                tokens.push(Token {
                    tok,
                    span: Span::new(start, i),
                });
            }
            _ => {
                // Decode the actual (possibly multi-byte) character for the
                // error message; indexing `bytes[i] as char` would mangle it.
                let other = src[start..].chars().next().expect("in bounds");
                return Err(SqlError::at(
                    Span::new(start, start + other.len_utf8()),
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(tokens)
}

fn push_sym(tokens: &mut Vec<Token>, tok: Tok, start: usize, i: &mut usize) {
    *i += 1;
    tokens.push(Token {
        tok,
        span: Span::new(start, *i),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            toks("select Select SELECT"),
            vec![Tok::Select, Tok::Select, Tok::Select]
        );
        assert_eq!(toks("integer double boolean string"), {
            vec![Tok::IntType, Tok::FloatType, Tok::BoolType, Tok::TextType]
        });
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(
            toks("patientID _x a1"),
            vec![
                Tok::Ident("patientID".into()),
                Tok::Ident("_x".into()),
                Tok::Ident("a1".into())
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            toks("42 3.5 'it''s'"),
            vec![Tok::Int(42), Tok::Float(3.5), Tok::Str("it's".into())]
        );
    }

    #[test]
    fn operators_and_symbols() {
        assert_eq!(
            toks("= == != <> < <= > >= + - * / ( ) , ; ."),
            vec![
                Tok::Eq,
                Tok::Eq,
                Tok::Ne,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::LParen,
                Tok::RParen,
                Tok::Comma,
                Tok::Semi,
                Tok::Dot,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("SELECT -- the whole row\n*"),
            vec![Tok::Select, Tok::Star]
        );
    }

    #[test]
    fn spans_cover_tokens() {
        let tokens = lex("SELECT ab").unwrap();
        assert_eq!(tokens[0].span, Span::new(0, 6));
        assert_eq!(tokens[1].span, Span::new(7, 9));
    }

    #[test]
    fn lex_errors_have_spans() {
        let err = lex("SELECT @").unwrap_err();
        assert_eq!(err.span.start, 7);
        assert!(err.message.contains('@'));
        let err = lex("'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = lex("a ! b").unwrap_err();
        assert!(err.message.contains("!="));
    }

    #[test]
    fn huge_integer_is_an_error() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
