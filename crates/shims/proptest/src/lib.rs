//! Minimal stand-in for `proptest` (offline build).
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with a `#![proptest_config(...)]` header, range and tuple strategies,
//! `prop::collection::vec`, and `prop_assert!` / `prop_assert_eq!`. Values are
//! generated from a deterministic seeded RNG; there is no shrinking — a
//! failing case panics with the generated inputs visible in the assert
//! message.

pub mod test_runner {
    /// Per-test configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Fresh deterministic RNG for one test function.
    pub fn new_rng() -> rand::rngs::StdRng {
        rand::SeedableRng::seed_from_u64(0xC0FF_EE00_D15E_A5ED)
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
    }

    /// `Just`-style constant strategy, handy for composing.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of strategies over one value type, behind
    /// [`crate::prop_oneof!`]: each generation picks an arm with probability
    /// proportional to its weight.
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms. Panics on an empty
        /// arm list or all-zero weights.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(
                arms.iter().map(|(w, _)| *w).sum::<u32>() > 0,
                "prop_oneof! needs at least one arm with non-zero weight"
            );
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
            let mut pick = rng.gen_range(0..total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weight bookkeeping above covers the full range")
        }
    }

    /// Boxes a strategy into a trait object (the `prop_oneof!` arm form).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Strategy behind [`any`]: samples the type's full value space.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Mirrors `proptest::prelude::any::<T>()` for primitives covered by the
    /// rand shim's standard distribution.
    pub fn any<T: rand::Standard>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Strategy producing a `Vec` whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors `proptest::prelude::prop::*` paths (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Mirrors `proptest::prop_oneof!`: a union of strategies producing one
/// value type, with optional `weight => strategy` arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Expands each `fn name(arg in strategy, ...) { body }` into a `#[test]`
/// that reruns the body `config.cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::new_rng();
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn generated_values_respect_strategies(
            v in prop::collection::vec((0i64..8, 0i64..100), 1..30),
            threshold in 0i64..50,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            for (k, x) in &v {
                prop_assert!((0..8).contains(k));
                prop_assert!((0..100).contains(x));
            }
            prop_assert!((0..50).contains(&threshold));
        }
    }
}
