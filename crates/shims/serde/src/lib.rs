//! Minimal stand-in for `serde` (offline build — see crates/shims/README.md).
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward-
//! looking annotations; nothing serializes at runtime yet. The shim provides
//! the two traits (blanket-implemented so bounds are always satisfiable) and
//! re-exports no-op derive macros from `serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}
