//! Minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small API surface it needs: [`rngs::StdRng`] (a splitmix64 generator),
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`seq::SliceRandom`].
//!
//! The generators are **not** cryptographically secure; they are fast and
//! deterministic given a seed, which is what the reproduction's synthetic
//! data generation and simulated protocols rely on.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types samplable from the standard distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly (`Rng::gen_range`). Parameterized by
/// the output type (like the real crate) so integer literals infer from the
/// call site.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as i128) + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                ((start as i128) + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers standing in for `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() as usize) % self.len()])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(0usize..=9);
            assert!(w <= 9);
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
