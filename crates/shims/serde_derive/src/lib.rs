//! No-op derive macros standing in for `serde_derive` (offline build).
//!
//! The `serde` shim blanket-implements its traits, so these derives only need
//! to exist (and accept `#[serde(...)]` attributes); they expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
