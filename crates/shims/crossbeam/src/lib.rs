//! Minimal stand-in for `crossbeam` (offline build): scoped threads with the
//! `crossbeam::thread::scope` API shape (backed by `std::thread::scope`) and
//! unbounded MPSC channels with the `crossbeam::channel` API shape (backed by
//! `std::sync::mpsc`).

pub mod channel {
    //! Unbounded channels with the `crossbeam-channel` API surface the
    //! workspace consumes: [`unbounded`], cloneable [`Sender`]s, and a
    //! [`Receiver`] with blocking and deadline-bounded receives. Unlike real
    //! crossbeam channels the receiver is single-consumer (`std::sync::mpsc`
    //! underneath), which is all the per-party transport mesh needs.

    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone; carries
    /// the unsent message like crossbeam's.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive: `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_and_timeout() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            let tx2 = tx.clone();
            tx2.send(8).unwrap();
            assert_eq!(rx.try_recv(), Some(8));
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded::<u64>();
            let h = std::thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            h.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}

pub mod thread {
    use std::any::Any;

    /// Scope handle with a crossbeam-shaped `spawn`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Token passed to task closures where crossbeam passes the scope itself.
    /// Nested spawning from inside a task is not supported by this shim; the
    /// workspace's task closures all ignore the argument.
    pub struct TaskScope;

    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&TaskScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.inner.spawn(move || f(&TaskScope)))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before this returns. Unlike crossbeam this
    /// propagates child panics (via `std::thread::scope`) instead of returning
    /// them in the `Err` case, so the result is always `Ok` — callers that
    /// `.expect()` it behave identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|scope| {
                let handles: Vec<_> = data.iter().map(|x| scope.spawn(move |_| *x * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 100);
        }
    }
}
