//! Minimal stand-in for `crossbeam` (offline build): scoped threads with the
//! `crossbeam::thread::scope` API shape, backed by `std::thread::scope`.

pub mod thread {
    use std::any::Any;

    /// Scope handle with a crossbeam-shaped `spawn`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Token passed to task closures where crossbeam passes the scope itself.
    /// Nested spawning from inside a task is not supported by this shim; the
    /// workspace's task closures all ignore the argument.
    pub struct TaskScope;

    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&TaskScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.inner.spawn(move || f(&TaskScope)))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before this returns. Unlike crossbeam this
    /// propagates child panics (via `std::thread::scope`) instead of returning
    /// them in the `Err` case, so the result is always `Ok` — callers that
    /// `.expect()` it behave identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|scope| {
                let handles: Vec<_> = data.iter().map(|x| scope.spawn(move |_| *x * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 100);
        }
    }
}
