//! Minimal stand-in for `criterion` (offline build).
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box` and the `criterion_group!` / `criterion_main!`
//! macros — with a simple mean/min timing loop printed to stdout instead of
//! criterion's statistical analysis and HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench("", &id.to_string(), self.default_sample_size, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.name, &id.to_string(), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&self.name, &id.to_string(), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed = start.elapsed();
    }
}

/// Returns `true` when the bench binary was invoked with `--test` (as
/// `cargo bench -- --test` does): each bench then runs a single iteration
/// with no warmup, as a smoke test.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_bench(group: &str, id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let samples = if test_mode() { 1 } else { samples };
    // One warmup run, then `samples` timed runs of one iteration each.
    if !test_mode() {
        let mut warmup = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut warmup);
    }
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let mean = total / samples.max(1) as u32;
    println!("bench {label:<50} mean {mean:>12.2?}   min {best:>12.2?}   ({samples} samples)");
}

/// Expands to a function running every listed bench target with a fresh
/// default `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
