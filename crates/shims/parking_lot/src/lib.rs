//! Minimal stand-in for `parking_lot` (offline build): a `Mutex` with the
//! poison-free `lock()` signature, backed by `std::sync::Mutex`.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Like `parking_lot::Mutex::lock`: returns the guard directly, treating a
    /// poisoned mutex as still usable.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }
}
