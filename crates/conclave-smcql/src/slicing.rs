//! SMCQL's slicing optimization.
//!
//! When a query's join or group-by key column is public, SMCQL partitions the
//! data by key value. A *single-party slice* contains keys that only one
//! party holds and can be processed entirely at that party; the remaining
//! *shared slices* must be processed under MPC. With low cross-party overlap
//! (2 % of patient IDs in the HealthLNK workload), slicing removes most of
//! the data from the MPC.

use conclave_engine::Relation;
use conclave_ir::types::Value;
use std::collections::HashSet;

/// The result of slicing two parties' relations on a public key column.
#[derive(Debug, Clone)]
pub struct Slices {
    /// Rows of party 0 whose key only party 0 holds.
    pub only_left: Relation,
    /// Rows of party 1 whose key only party 1 holds.
    pub only_right: Relation,
    /// Rows of party 0 whose key both parties hold (processed under MPC).
    pub shared_left: Relation,
    /// Rows of party 1 whose key both parties hold (processed under MPC).
    pub shared_right: Relation,
}

impl Slices {
    /// Fraction of all rows that fall into the shared (MPC) slices.
    pub fn shared_fraction(&self) -> f64 {
        let shared = (self.shared_left.num_rows() + self.shared_right.num_rows()) as f64;
        let total = shared + (self.only_left.num_rows() + self.only_right.num_rows()) as f64;
        if total == 0.0 {
            0.0
        } else {
            shared / total
        }
    }
}

/// Slices two relations on a (public) key column.
pub fn slice_by_key(left: &Relation, right: &Relation, key: &str) -> Result<Slices, String> {
    let lk = left
        .col_index(key)
        .ok_or_else(|| format!("unknown key column `{key}` in left relation"))?;
    let rk = right
        .col_index(key)
        .ok_or_else(|| format!("unknown key column `{key}` in right relation"))?;
    let left_keys: HashSet<Value> = left.rows.iter().map(|r| r[lk].clone()).collect();
    let right_keys: HashSet<Value> = right.rows.iter().map(|r| r[rk].clone()).collect();

    let split = |rel: &Relation, col: usize, other: &HashSet<Value>| -> (Relation, Relation) {
        let mut only = Vec::new();
        let mut shared = Vec::new();
        for row in &rel.rows {
            if other.contains(&row[col]) {
                shared.push(row.clone());
            } else {
                only.push(row.clone());
            }
        }
        (
            Relation {
                schema: rel.schema.clone(),
                rows: only,
            },
            Relation {
                schema: rel.schema.clone(),
                rows: shared,
            },
        )
    };
    let (only_left, shared_left) = split(left, lk, &right_keys);
    let (only_right, shared_right) = split(right, rk, &left_keys);
    Ok(Slices {
        only_left,
        only_right,
        shared_left,
        shared_right,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_partitions_rows_by_key_ownership() {
        let left = Relation::from_ints(&["pid", "diag"], &[vec![1, 10], vec![2, 20], vec![3, 30]]);
        let right = Relation::from_ints(&["pid", "med"], &[vec![2, 99], vec![4, 88]]);
        let slices = slice_by_key(&left, &right, "pid").unwrap();
        assert_eq!(slices.only_left.num_rows(), 2); // pids 1 and 3
        assert_eq!(slices.shared_left.num_rows(), 1); // pid 2
        assert_eq!(slices.only_right.num_rows(), 1); // pid 4
        assert_eq!(slices.shared_right.num_rows(), 1); // pid 2
        let total = slices.only_left.num_rows()
            + slices.only_right.num_rows()
            + slices.shared_left.num_rows()
            + slices.shared_right.num_rows();
        assert_eq!(total, 5, "no rows lost");
        assert!((slices.shared_fraction() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn disjoint_relations_have_no_shared_slices() {
        let left = Relation::from_ints(&["pid", "x"], &[vec![1, 1]]);
        let right = Relation::from_ints(&["pid", "y"], &[vec![2, 2]]);
        let slices = slice_by_key(&left, &right, "pid").unwrap();
        assert_eq!(slices.shared_left.num_rows(), 0);
        assert_eq!(slices.shared_right.num_rows(), 0);
        assert_eq!(slices.shared_fraction(), 0.0);
        assert!(slice_by_key(&left, &right, "zzz").is_err());
    }

    #[test]
    fn empty_inputs() {
        let left = Relation::from_ints(&["pid"], &[]);
        let right = Relation::from_ints(&["pid"], &[]);
        let slices = slice_by_key(&left, &right, "pid").unwrap();
        assert_eq!(slices.shared_fraction(), 0.0);
    }
}
