//! SMCQL executions of the §7.4 benchmark queries.
//!
//! These functions execute (or estimate) the *aspirin count* and
//! *comorbidity* queries the way SMCQL runs them: slicing on the public
//! patient-ID column, local filters/pre-aggregations, and ObliVM-style
//! garbled-circuit MPC for everything the slicing cannot remove. The
//! Figure 7 benches compare them against Conclave's plans for the same
//! queries.

use crate::planner::SmcqlPlanner;
use crate::slicing::slice_by_key;
use conclave_data::health::{ASPIRIN, HEART_DISEASE};
use conclave_engine::{execute, Relation, SequentialCostModel};
use conclave_ir::expr::Expr;
use conclave_ir::ops::{AggFunc, JoinKind, Operator};
use conclave_mpc::backend::MpcResult;
use std::collections::HashSet;
use std::time::Duration;

/// Result of an SMCQL query execution: the answer plus simulated runtime.
#[derive(Debug, Clone)]
pub struct SmcqlRun<T> {
    /// The query result.
    pub result: T,
    /// Simulated local (cleartext) time.
    pub local_time: Duration,
    /// Simulated secure (garbled-circuit) time.
    pub secure_time: Duration,
}

impl<T> SmcqlRun<T> {
    /// Total simulated runtime.
    pub fn total_time(&self) -> Duration {
        self.local_time + self.secure_time
    }
}

/// Executes the aspirin-count query the SMCQL way: slice both relations on
/// the public patient ID; single-party slices are joined and filtered
/// locally; shared slices are joined under the garbled-circuit backend; the
/// distinct patient count is computed securely over the union.
pub fn aspirin_count(
    planner: &mut SmcqlPlanner,
    diagnoses: [&Relation; 2],
    medications: [&Relation; 2],
) -> MpcResult<SmcqlRun<i64>> {
    let seq = SequentialCostModel::default();
    let mut local_time = Duration::ZERO;
    let mut secure_time = Duration::ZERO;

    // Per-party filters run locally (plain operators in SMCQL).
    let filter_diag = Operator::Filter {
        predicate: Expr::col("diagnosis").eq(Expr::lit(HEART_DISEASE)),
    };
    let filter_med = Operator::Filter {
        predicate: Expr::col("medication").eq(Expr::lit(ASPIRIN)),
    };
    let mut diag_filtered = Vec::new();
    let mut med_filtered = Vec::new();
    for rel in diagnoses {
        let out = execute(&filter_diag, &[rel]).map_err(to_mpc_err)?;
        local_time += seq.estimate(&filter_diag, rel.num_rows() as u64, out.num_rows() as u64);
        diag_filtered.push(out);
    }
    for rel in medications {
        let out = execute(&filter_med, &[rel]).map_err(to_mpc_err)?;
        local_time += seq.estimate(&filter_med, rel.num_rows() as u64, out.num_rows() as u64);
        med_filtered.push(out);
    }

    // Combine each party's filtered relations, then slice on the public
    // patient ID.
    let diag_all = Relation::concat(&diag_filtered).map_err(to_mpc_err_str)?;
    let med_all = Relation::concat(&med_filtered).map_err(to_mpc_err_str)?;
    let mut matched_patients: HashSet<i64> = HashSet::new();
    let join_op = Operator::Join {
        left_keys: vec!["patientID".into()],
        right_keys: vec!["patientID".into()],
        kind: JoinKind::Inner,
    };

    // The join result (and hence the distinct patient count) is the same
    // regardless of slicing; what slicing changes is *where* the work happens.
    let joined = execute(&join_op, &[&diag_all, &med_all]).map_err(to_mpc_err)?;
    collect_patients(&joined, &mut matched_patients);

    if planner.config().use_slicing {
        // Cost split: patient IDs held by both hospitals must be processed
        // under the garbled-circuit backend; the rest is joined locally.
        // Group each hospital's (filtered) rows and slice on the patient ID.
        let party0 = Relation::concat(&[diag_filtered[0].clone(), med_filtered[0].clone()])
            .map_err(to_mpc_err_str)?;
        let party1 = Relation::concat(&[diag_filtered[1].clone(), med_filtered[1].clone()])
            .map_err(to_mpc_err_str)?;
        let slices = slice_by_key(&party0, &party1, "patientID").map_err(to_mpc_err_str)?;
        local_time += seq.estimate(
            &join_op,
            (slices.only_left.num_rows() + slices.only_right.num_rows()) as u64,
            joined.num_rows() as u64,
        );
        secure_time += planner.secure_join_time(
            slices.shared_left.num_rows().max(1) as u64,
            slices.shared_right.num_rows().max(1) as u64,
            1,
        )?;
    } else {
        // Without slicing the entire join runs under the garbled circuits.
        secure_time += planner.secure_join_time(
            diag_all.num_rows().max(1) as u64,
            med_all.num_rows().max(1) as u64,
            1,
        )?;
    }

    // SMCQL computes the distinct count securely (an oblivious sort + scan).
    secure_time += planner.secure_sort_time(matched_patients.len().max(1) as u64)?;
    Ok(SmcqlRun {
        result: matched_patients.len() as i64,
        local_time,
        secure_time,
    })
}

fn collect_patients(joined: &Relation, out: &mut HashSet<i64>) {
    if let Some(values) = joined.column_values("patientID") {
        for v in values {
            if let Some(i) = v.as_int() {
                out.insert(i);
            }
        }
    }
}

/// Executes the comorbidity query the SMCQL way: local per-party COUNT
/// pre-aggregation on the private diagnosis column, then a secure merge
/// aggregation, order-by and limit under the garbled-circuit backend.
pub fn comorbidity(
    planner: &mut SmcqlPlanner,
    diagnoses: [&Relation; 2],
    limit: usize,
) -> MpcResult<SmcqlRun<Relation>> {
    let seq = SequentialCostModel::default();
    let mut local_time = Duration::ZERO;
    let count_op = Operator::Aggregate {
        group_by: vec!["diagnosis".into()],
        func: AggFunc::Count,
        over: None,
        out: "cnt".into(),
    };
    let mut partials = Vec::new();
    for rel in diagnoses {
        let out = execute(&count_op, &[rel]).map_err(to_mpc_err)?;
        local_time += seq.estimate(&count_op, rel.num_rows() as u64, out.num_rows() as u64);
        partials.push(out);
    }
    let merged = Relation::concat(&partials).map_err(to_mpc_err_str)?;

    // Secure secondary aggregation + order-by + limit.
    let secondary = Operator::Aggregate {
        group_by: vec!["diagnosis".into()],
        func: AggFunc::Sum,
        over: Some("cnt".into()),
        out: "cnt".into(),
    };
    let (aggregated, stats1) = planner.execute_secure(&secondary, &[&merged])?;
    let sort = Operator::SortBy {
        column: "cnt".into(),
        ascending: false,
    };
    let (sorted, stats2) = planner.execute_secure(&sort, &[&aggregated])?;
    let limited = execute(&Operator::Limit { n: limit }, &[&sorted]).map_err(to_mpc_err)?;
    Ok(SmcqlRun {
        result: limited,
        local_time,
        secure_time: stats1.simulated_time + stats2.simulated_time,
    })
}

/// Analytic runtime estimate of SMCQL's aspirin count for paper-scale inputs
/// (rows per party, cross-party patient-ID overlap, filter selectivity).
pub fn estimate_aspirin_count(
    planner: &SmcqlPlanner,
    rows_per_party: u64,
    overlap: f64,
    selectivity: f64,
) -> MpcResult<Duration> {
    let seq = SequentialCostModel::default();
    let filtered = ((rows_per_party as f64) * selectivity) as u64;
    // SMCQL cannot push filters on *private* columns (diagnosis, medication)
    // below the join, so the shared slices enter the secure join unfiltered.
    let shared = ((rows_per_party as f64) * overlap).ceil() as u64;
    // Local: filters over single-party slices plus local joins of those slices.
    let local = seq
        .estimate(
            &Operator::Filter {
                predicate: Expr::col("diagnosis").eq(Expr::lit(HEART_DISEASE)),
            },
            2 * rows_per_party,
            2 * filtered,
        )
        .saturating_add(seq.estimate(
            &Operator::Join {
                left_keys: vec!["patientID".into()],
                right_keys: vec!["patientID".into()],
                kind: JoinKind::Inner,
            },
            2 * rows_per_party,
            filtered,
        ));
    // Secure: the sliced MPC joins are quadratic in the shared slice size and
    // each per-key slice is a separate ObliVM invocation with its own setup
    // cost (garbling, OT extension); §7.3 of the SMCQL paper reports exactly
    // this per-slice overhead dominating.
    let secure = planner.secure_join_time(shared.max(1), shared.max(1), 2)?;
    let per_slice_overhead = Duration::from_secs_f64(0.5 * shared as f64);
    let distinct = planner.secure_sort_time(shared.max(1))?;
    Ok(local + secure + per_slice_overhead + distinct)
}

/// Analytic runtime estimate of SMCQL's comorbidity query: per-party local
/// pre-aggregation followed by a secure aggregation over the distinct keys.
pub fn estimate_comorbidity(
    planner: &SmcqlPlanner,
    rows_per_party: u64,
    distinct_key_ratio: f64,
) -> MpcResult<Duration> {
    let seq = SequentialCostModel::default();
    let distinct = (((rows_per_party * 2) as f64) * distinct_key_ratio).ceil() as u64;
    let local = seq.estimate(
        &Operator::Aggregate {
            group_by: vec!["diagnosis".into()],
            func: AggFunc::Count,
            over: None,
            out: "cnt".into(),
        },
        2 * rows_per_party,
        distinct,
    );
    let secure_agg = planner.secure_aggregation_time(distinct.max(1))?;
    let secure_sort = planner.secure_sort_time(distinct.max(1))?;
    Ok(local + secure_agg + secure_sort)
}

fn to_mpc_err(e: conclave_engine::EngineError) -> conclave_mpc::backend::MpcError {
    conclave_mpc::backend::MpcError::Exec(e.to_string())
}

fn to_mpc_err_str(e: impl std::fmt::Display) -> conclave_mpc::backend::MpcError {
    conclave_mpc::backend::MpcError::Exec(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_data::HealthGenerator;

    #[test]
    fn aspirin_count_matches_reference() {
        let mut g = HealthGenerator::new(1);
        let d0 = g.diagnoses(0, 400);
        let d1 = g.diagnoses(1, 400);
        let m0 = g.medications(0, 400);
        let m1 = g.medications(1, 400);
        let reference = HealthGenerator::reference_aspirin_count(
            &[d0.clone(), d1.clone()],
            &[m0.clone(), m1.clone()],
        );
        let mut planner = SmcqlPlanner::default_paper_setup();
        let run = aspirin_count(&mut planner, [&d0, &d1], [&m0, &m1]).unwrap();
        assert_eq!(run.result, reference);
        assert!(run.total_time() > Duration::ZERO);
        assert!(run.secure_time > Duration::ZERO);
    }

    #[test]
    fn comorbidity_matches_reference_top_k() {
        let mut g = HealthGenerator::new(2);
        let d0 = g.comorbidity_diagnoses(0, 300);
        let d1 = g.comorbidity_diagnoses(1, 300);
        let reference = HealthGenerator::reference_comorbidity(&[d0.clone(), d1.clone()], 10);
        let mut planner = SmcqlPlanner::default_paper_setup();
        let run = comorbidity(&mut planner, [&d0, &d1], 10).unwrap();
        assert_eq!(run.result.num_rows(), 10);
        // The counts of the returned top-10 match the reference counts
        // (diagnosis order may differ among ties).
        let got: Vec<i64> = run
            .result
            .column_values("cnt")
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        let expected: Vec<i64> = reference.iter().map(|(_, c)| *c).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn estimates_scale_with_input_and_slicing_helps() {
        let planner = SmcqlPlanner::default_paper_setup();
        let t_small = estimate_aspirin_count(&planner, 10_000, 0.02, 0.25).unwrap();
        let t_large = estimate_aspirin_count(&planner, 100_000, 0.02, 0.25).unwrap();
        assert!(t_large > t_small);
        let t_com_small = estimate_comorbidity(&planner, 10_000, 0.1).unwrap();
        let t_com_large = estimate_comorbidity(&planner, 50_000, 0.1).unwrap();
        assert!(t_com_large > t_com_small);
    }
}
