//! SMCQL baseline (§7.4 comparison).
//!
//! SMCQL (Bater et al., VLDB 2017) is the system closest to Conclave: it also
//! compiles relational queries over federated private data into a mix of
//! local processing and MPC. Its distinguishing features, reproduced here,
//! are:
//!
//! * column-level annotations limited to **public** vs **private** (no
//!   selectively-trusted parties and therefore no hybrid operators),
//! * **slicing**: data partitioned on a public key column so that slices only
//!   one party holds are processed locally and only the shared slices enter
//!   MPC, and
//! * a two-party **garbled-circuit** backend (ObliVM), which is slower than
//!   Sharemind for the arithmetic-heavy relational workloads of §7.4.
//!
//! The crate provides an executable baseline for the aspirin-count and
//! comorbidity queries plus analytic estimators used by the Figure 7 benches.

// Also enforced workspace-wide via [workspace.lints]; stated here so the
// guarantee is visible at the crate root.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod planner;
pub mod queries;
pub mod slicing;

pub use planner::{SmcqlConfig, SmcqlPlanner};
pub use slicing::slice_by_key;
