//! A minimal SMCQL-style planner.
//!
//! SMCQL classifies each operator as *plain* (all inputs public or
//! single-party), *sliced* (partitionable on a public key) or *secure*
//! (everything else, run under the garbled-circuit backend). This planner
//! reproduces that classification and the resulting cost structure for the
//! two-party queries §7.4 benchmarks. It is intentionally simpler than the
//! Conclave compiler — that difference (no hybrid operators, no
//! secret-sharing backend, no sort elimination) is exactly what Figure 7
//! measures.

use conclave_mpc::backend::{MpcBackendConfig, MpcEngine, MpcResult, MpcStepStats};
use conclave_mpc::garbled::gates;
use std::time::Duration;

/// Configuration of the SMCQL baseline.
#[derive(Debug, Clone, Copy)]
pub struct SmcqlConfig {
    /// The garbled-circuit backend model (ObliVM by default).
    pub backend: MpcBackendConfig,
    /// Whether sliced execution is enabled (it is in the paper's SMCQL runs).
    pub use_slicing: bool,
}

impl Default for SmcqlConfig {
    fn default() -> Self {
        SmcqlConfig {
            backend: MpcBackendConfig::obliv_vm(),
            use_slicing: true,
        }
    }
}

/// Execution-mode classification for an SMCQL operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmcqlMode {
    /// Runs at one party in the clear.
    Plain,
    /// Runs per-slice: single-party slices in the clear, shared slices secure.
    Sliced,
    /// Runs entirely under the garbled-circuit backend.
    Secure,
}

/// The SMCQL baseline planner / cost estimator.
#[derive(Debug)]
pub struct SmcqlPlanner {
    config: SmcqlConfig,
    engine: MpcEngine,
}

impl SmcqlPlanner {
    /// Creates a planner with the given configuration.
    pub fn new(config: SmcqlConfig) -> Self {
        SmcqlPlanner {
            engine: MpcEngine::new(config.backend),
            config,
        }
    }

    /// Creates the default (ObliVM-backed, slicing enabled) planner.
    pub fn default_paper_setup() -> Self {
        Self::new(SmcqlConfig::default())
    }

    /// The planner's configuration.
    pub fn config(&self) -> &SmcqlConfig {
        &self.config
    }

    /// Access to the underlying garbled-circuit engine.
    pub fn engine(&mut self) -> &mut MpcEngine {
        &mut self.engine
    }

    /// Classifies a join on a key column: sliced if the key is public and
    /// slicing is enabled, secure otherwise.
    pub fn classify_join(&self, key_is_public: bool) -> SmcqlMode {
        if key_is_public && self.config.use_slicing {
            SmcqlMode::Sliced
        } else {
            SmcqlMode::Secure
        }
    }

    /// Classifies an aggregation on a private group-by column: SMCQL splits
    /// it into local partials plus a secure merge, so the secure part always
    /// remains.
    pub fn classify_aggregation(&self) -> SmcqlMode {
        SmcqlMode::Secure
    }

    /// Simulated time for a secure (garbled-circuit) join over `n × m` rows.
    /// SMCQL's per-slice joins are quadratic in the slice size.
    pub fn secure_join_time(&self, n: u64, m: u64, payload_cols: u64) -> MpcResult<Duration> {
        let and_gates = gates::join(n, m, 1, payload_cols);
        let memory = (n + m) as f64 * self.config.backend.gc_cost.state_bytes_per_record * 10.0;
        if self.config.backend.gc_cost.exceeds_memory(memory) {
            return Err(conclave_mpc::backend::MpcError::OutOfMemory {
                needed: memory,
                limit: self.config.backend.gc_cost.memory_limit_bytes,
            });
        }
        Ok(self
            .config
            .backend
            .gc_cost
            .time(and_gates, &self.config.backend.network))
    }

    /// Simulated time for a secure aggregation (bitonic sort + scan) over `n`
    /// rows.
    pub fn secure_aggregation_time(&self, n: u64) -> MpcResult<Duration> {
        let and_gates = gates::aggregate(n, 1);
        let memory = n as f64 * self.config.backend.gc_cost.state_bytes_per_record * 3.0;
        if self.config.backend.gc_cost.exceeds_memory(memory) {
            return Err(conclave_mpc::backend::MpcError::OutOfMemory {
                needed: memory,
                limit: self.config.backend.gc_cost.memory_limit_bytes,
            });
        }
        Ok(self
            .config
            .backend
            .gc_cost
            .time(and_gates, &self.config.backend.network))
    }

    /// Simulated time for a secure distinct / order-by over `n` rows.
    pub fn secure_sort_time(&self, n: u64) -> MpcResult<Duration> {
        self.secure_aggregation_time(n)
    }

    /// Executes an operator under the garbled-circuit backend for real (used
    /// by correctness tests at small scale).
    pub fn execute_secure(
        &mut self,
        op: &conclave_ir::ops::Operator,
        inputs: &[&conclave_engine::Relation],
    ) -> MpcResult<(conclave_engine::Relation, MpcStepStats)> {
        self.engine.execute_op(op, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_mpc::backend::BackendKind;

    #[test]
    fn default_setup_uses_oblivm_and_slicing() {
        let p = SmcqlPlanner::default_paper_setup();
        assert_eq!(p.config().backend.kind, BackendKind::OblivVmLike);
        assert!(p.config().use_slicing);
    }

    #[test]
    fn classification_rules() {
        let p = SmcqlPlanner::default_paper_setup();
        assert_eq!(p.classify_join(true), SmcqlMode::Sliced);
        assert_eq!(p.classify_join(false), SmcqlMode::Secure);
        assert_eq!(p.classify_aggregation(), SmcqlMode::Secure);
        let no_slicing = SmcqlPlanner::new(SmcqlConfig {
            use_slicing: false,
            ..Default::default()
        });
        assert_eq!(no_slicing.classify_join(true), SmcqlMode::Secure);
    }

    #[test]
    fn secure_join_is_quadratic_and_eventually_ooms() {
        let p = SmcqlPlanner::default_paper_setup();
        let t1 = p.secure_join_time(1_000, 1_000, 1).unwrap();
        let t2 = p.secure_join_time(2_000, 2_000, 1).unwrap();
        let ratio = t2.as_secs_f64() / t1.as_secs_f64();
        assert!(ratio > 3.0, "quadratic growth, got ratio {ratio}");
        // ObliVM's 32 GB VMs push the OOM point out, but it still exists.
        assert!(p.secure_join_time(1_000_000, 1_000_000, 1).is_err());
    }

    #[test]
    fn secure_aggregation_slower_than_sharemind_equivalent() {
        // §7.4 (comorbidity): with the same pre-aggregation optimization, the
        // backend difference decides the gap; ObliVM is slower.
        let p = SmcqlPlanner::default_paper_setup();
        let n = 20_000u64;
        let oblivm = p.secure_aggregation_time(n).unwrap();
        let sharemind_engine = MpcEngine::new(MpcBackendConfig::sharemind());
        let sm = sharemind_engine
            .estimate_op(
                &conclave_ir::ops::Operator::Aggregate {
                    group_by: vec!["k".into()],
                    func: conclave_ir::ops::AggFunc::Sum,
                    over: Some("v".into()),
                    out: "s".into(),
                },
                &[n],
                &[2],
                n / 10,
            )
            .unwrap()
            .simulated_time;
        assert!(
            oblivm > sm,
            "ObliVM {:?} should be slower than Sharemind {:?}",
            oblivm,
            sm
        );
    }

    #[test]
    fn execute_secure_produces_correct_results() {
        let mut p = SmcqlPlanner::default_paper_setup();
        let rel = conclave_engine::Relation::from_ints(
            &["k", "v"],
            &[vec![1, 2], vec![1, 3], vec![2, 5]],
        );
        let op = conclave_ir::ops::Operator::Aggregate {
            group_by: vec!["k".into()],
            func: conclave_ir::ops::AggFunc::Sum,
            over: Some("v".into()),
            out: "s".into(),
        };
        let (out, stats) = p.execute_secure(&op, &[&rel]).unwrap();
        let expected = conclave_engine::execute(&op, &[&rel]).unwrap();
        assert!(out.same_rows_unordered(&expected));
        assert!(stats.circuit.and_gates > 0);
    }
}
