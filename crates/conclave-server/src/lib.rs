//! `conclave-server`: a long-lived, multi-tenant Conclave query service.
//!
//! The rest of the workspace runs one query per process: build a
//! [`Session`](conclave_core::Session), bind tables, run, exit. A serving
//! deployment amortizes everything that setup pays per query:
//!
//! * **Prepared-plan cache** ([`cache`]) — optimized, leakage-certified
//!   [`PhysicalPlan`](conclave_core::plan::PhysicalPlan)s keyed by
//!   *(normalized SQL, catalog fingerprint)*, invalidated when the tenant's
//!   catalog changes.
//! * **Shared dealer pool** ([`conclave_mpc::dealer::MaterialPool`]) — a
//!   background refiller keeps bundles of MACed preprocessed material ready,
//!   so online queries never block on the offline phase while the pool has
//!   stock (and *block, never corrupt* when it runs dry).
//! * **Persistent party meshes** — each tenant's
//!   [`PersistentSession`](conclave_core::session::PersistentSession) keeps
//!   its worker mesh, MAC key and transport links alive across queries
//!   (`mesh_builds` stays at 1 per tenant).
//! * **Admission control** ([`admission`]) — per-tenant in-flight ceilings
//!   and bounded wait queues, with typed [`ServerError::Rejected`] sheds.
//!
//! Clients reach the service in process via [`ServerHandle`], or over any
//! [`conclave_net::Transport`] with the framed `SubmitSql`/`QueryResult`/
//! `QueryError` protocol ([`conclave_net::serve`], codec in [`wire`]).
//!
//! # Example
//!
//! ```
//! use conclave_server::{ConclaveServer, ServerConfig};
//! use conclave_sql::Catalog;
//! use conclave_engine::Relation;
//!
//! let server = ConclaveServer::start(ServerConfig::default());
//! server.register_tenant("acme", Catalog::new()).unwrap();
//! server.bind("acme", "t", Relation::from_ints(&["a"], &[vec![1], vec![2]])).unwrap();
//! let outcome = server
//!     .query(
//!         "acme",
//!         "CREATE TABLE t (a INT) WITH OWNER p1;
//!          SELECT a, COUNT(*) AS n FROM t GROUP BY a REVEAL TO p1;",
//!     )
//!     .unwrap();
//! assert_eq!(outcome.report.outputs[&1].num_rows(), 2);
//! assert!(!outcome.cache_hit, "first submission compiles");
//! ```

// Also enforced workspace-wide via [workspace.lints]; stated here so the
// guarantee is visible at the crate root.
#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod error;
pub mod server;
pub mod wire;

pub use admission::{Admission, AdmissionGuard, AdmissionLimits};
pub use cache::{catalog_fingerprint, CacheStats, PlanCache};
pub use error::{AdmissionSnapshot, ServerError};
pub use server::{
    ConclaveServer, QueryOutcome, ServerConfig, ServerHandle, ServerStats, TenantStats,
};
pub use wire::{decode_outputs, encode_outputs, query_remote};
