//! Word-level codec for query results, and the client side of the wire API.
//!
//! The serving protocol frames ([`conclave_net::serve`]) carry opaque `u64`
//! word payloads; this module owns the encoding of a query's per-recipient
//! output relations into those words:
//!
//! ```text
//! [n_outputs]
//!   per output: [party] [n_cols] (packed name, [dtype])*  [n_rows] rows…
//!   per value:  [tag]  tag 0=NULL, 1=INT(word), 2=FLOAT(bits),
//!                      3=STR(packed), 4=BOOL(0/1)
//! ```
//!
//! Trust annotations are *not* carried: a wire result is cleartext already
//! revealed to its recipient, so the decoded schema is plain named/typed
//! columns.

use crate::error::{ServerError, ERR_BAD_RESULT};
use conclave_engine::Relation;
use conclave_ir::party::PartyId;
use conclave_ir::schema::{ColumnDef, Schema};
use conclave_ir::types::{DataType, Value};
use conclave_net::serve::{pack_text, submit_sql, unpack_error, unpack_text};
use conclave_net::{MessageKind, Transport};
use std::collections::BTreeMap;

const TAG_NULL: u64 = 0;
const TAG_INT: u64 = 1;
const TAG_FLOAT: u64 = 2;
const TAG_STR: u64 = 3;
const TAG_BOOL: u64 = 4;

fn dtype_code(dtype: DataType) -> u64 {
    match dtype {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    }
}

fn dtype_from_code(code: u64) -> Result<DataType, String> {
    Ok(match code {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        other => return Err(format!("unknown column type code {other}")),
    })
}

/// Encodes per-recipient output relations into a result payload.
pub fn encode_outputs(outputs: &BTreeMap<PartyId, Relation>) -> Vec<u64> {
    let mut words = vec![outputs.len() as u64];
    for (party, rel) in outputs {
        words.push(u64::from(*party));
        words.push(rel.schema.len() as u64);
        for col in &rel.schema.columns {
            words.extend(pack_text(&col.name));
            words.push(dtype_code(col.dtype));
        }
        words.push(rel.rows.len() as u64);
        for row in &rel.rows {
            for value in row {
                match value {
                    Value::Null => words.push(TAG_NULL),
                    Value::Int(v) => {
                        words.push(TAG_INT);
                        words.push(*v as u64);
                    }
                    Value::Float(v) => {
                        words.push(TAG_FLOAT);
                        words.push(v.to_bits());
                    }
                    Value::Str(s) => {
                        words.push(TAG_STR);
                        words.extend(pack_text(s));
                    }
                    Value::Bool(b) => {
                        words.push(TAG_BOOL);
                        words.push(u64::from(*b));
                    }
                }
            }
        }
    }
    words
}

struct Cursor<'a> {
    words: &'a [u64],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Result<u64, String> {
        let word = *self
            .words
            .get(self.at)
            .ok_or_else(|| format!("result payload truncated at word {}", self.at))?;
        self.at += 1;
        Ok(word)
    }

    fn text(&mut self) -> Result<String, String> {
        let len = self.next()? as usize;
        let body_words = len.div_ceil(8);
        let end = self.at + body_words;
        if end > self.words.len() {
            return Err(format!("text of {len} bytes truncated at word {}", self.at));
        }
        let mut framed = Vec::with_capacity(1 + body_words);
        framed.push(len as u64);
        framed.extend_from_slice(&self.words[self.at..end]);
        self.at = end;
        unpack_text(&framed)
    }
}

/// Decodes a result payload back into per-recipient relations.
pub fn decode_outputs(words: &[u64]) -> Result<BTreeMap<PartyId, Relation>, String> {
    let mut cur = Cursor { words, at: 0 };
    let n_outputs = cur.next()?;
    let mut outputs = BTreeMap::new();
    for _ in 0..n_outputs {
        let party = PartyId::try_from(cur.next()?).map_err(|e| format!("bad party id: {e}"))?;
        let n_cols = cur.next()? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let name = cur.text()?;
            let dtype = dtype_from_code(cur.next()?)?;
            columns.push(ColumnDef::new(name, dtype));
        }
        let n_rows = cur.next()? as usize;
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let mut row = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                row.push(match cur.next()? {
                    TAG_NULL => Value::Null,
                    TAG_INT => Value::Int(cur.next()? as i64),
                    TAG_FLOAT => Value::Float(f64::from_bits(cur.next()?)),
                    TAG_STR => Value::Str(cur.text()?),
                    TAG_BOOL => Value::Bool(cur.next()? != 0),
                    other => return Err(format!("unknown value tag {other}")),
                });
            }
            rows.push(row);
        }
        let rel = Relation::new(Schema::new(columns), rows).map_err(|e| e.to_string())?;
        outputs.insert(party, rel);
    }
    if cur.at != words.len() {
        return Err(format!(
            "{} trailing words after the last output",
            words.len() - cur.at
        ));
    }
    Ok(outputs)
}

/// Submits one query over an established client link (party 0 of a
/// two-endpoint transport) and decodes the reply: the remote equivalent of
/// `ServerHandle::query`.
pub fn query_remote(
    link: &dyn Transport,
    tenant: &str,
    sql: &str,
) -> Result<BTreeMap<PartyId, Relation>, ServerError> {
    let reply = submit_sql(link, tenant, sql).map_err(|e| ServerError::Remote {
        code: ERR_BAD_RESULT,
        message: format!("transport failure: {e}"),
    })?;
    match reply.kind {
        MessageKind::QueryResult => {
            decode_outputs(&reply.payload).map_err(|message| ServerError::Remote {
                code: ERR_BAD_RESULT,
                message,
            })
        }
        MessageKind::QueryError => {
            let (code, message) =
                unpack_error(&reply.payload).map_err(|message| ServerError::Remote {
                    code: ERR_BAD_RESULT,
                    message,
                })?;
            Err(ServerError::Remote { code, message })
        }
        other => Err(ServerError::Remote {
            code: ERR_BAD_RESULT,
            message: format!("unexpected reply frame {other}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_round_trip_through_the_codec() {
        let mut outputs = BTreeMap::new();
        outputs.insert(
            1,
            Relation::new(
                Schema::new(vec![
                    ColumnDef::new("k", DataType::Int),
                    ColumnDef::new("name", DataType::Str),
                    ColumnDef::new("avg", DataType::Float),
                    ColumnDef::new("ok", DataType::Bool),
                ]),
                vec![
                    vec![
                        Value::Int(-7),
                        Value::Str("acme".into()),
                        Value::Float(2.5),
                        Value::Bool(true),
                    ],
                    vec![
                        Value::Null,
                        Value::Str(String::new()),
                        Value::Null,
                        Value::Bool(false),
                    ],
                ],
            )
            .unwrap(),
        );
        outputs.insert(3, Relation::from_ints(&["x"], &[]));
        let words = encode_outputs(&outputs);
        let decoded = decode_outputs(&words).unwrap();
        assert_eq!(decoded, outputs);
    }

    #[test]
    fn truncated_and_malformed_payloads_are_typed_errors() {
        let mut outputs = BTreeMap::new();
        outputs.insert(1, Relation::from_ints(&["a"], &[vec![5]]));
        let words = encode_outputs(&outputs);
        for cut in 0..words.len() {
            assert!(decode_outputs(&words[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = words.clone();
        trailing.push(0);
        assert!(decode_outputs(&trailing).unwrap_err().contains("trailing"));
        let mut bad_tag = words;
        *bad_tag.last_mut().unwrap() = 99;
        // The tag position depends on layout: the last word is the INT value,
        // the one before it the tag.
        let len = bad_tag.len();
        bad_tag[len - 2] = 99;
        assert!(decode_outputs(&bad_tag[..len - 1])
            .unwrap_err()
            .contains("unknown value tag"));
    }
}
