//! The prepared-plan cache: fully optimized, leakage-certified
//! [`PhysicalPlan`]s keyed by *(normalized query text, catalog fingerprint)*.
//!
//! Normalization ([`conclave_sql::normalize_sql`]) makes the key robust to
//! whitespace and keyword-case differences, so `select a from t …` and a
//! tidily formatted equivalent share one compiled plan. The catalog
//! fingerprint covers every registered table's name, schema (types and trust
//! annotations) and owner: any catalog change rotates the fingerprint, which
//! orphans — and lazily evicts — every plan compiled under the old catalog.

use conclave_core::plan::PhysicalPlan;
use conclave_ir::party::Party;
use conclave_ir::schema::Schema;
use conclave_sql::Catalog;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache effectiveness counters, readable via tenant stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Plans evicted because the catalog changed under them.
    pub invalidations: u64,
}

/// FNV-1a over the catalog contents: table names, column names, types,
/// trust sets and owners, in registration order.
pub fn catalog_fingerprint(catalog: &Catalog) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x1_0000_01b3);
        }
    };
    for (name, schema, owner) in catalog.iter() {
        eat(name.as_bytes());
        eat(&[0xff]);
        eat(render_schema(schema).as_bytes());
        eat(&[0xfe]);
        eat(render_owner(owner).as_bytes());
        eat(&[0xfd]);
    }
    hash
}

fn render_schema(schema: &Schema) -> String {
    // Debug output covers names, dtypes and trust sets deterministically.
    format!("{schema:?}")
}

fn render_owner(owner: &Party) -> String {
    format!("{owner:?}")
}

/// A per-tenant prepared-plan cache.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: HashMap<(u64, String), Arc<PhysicalPlan>>,
    stats: CacheStats,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Looks up a plan for `(fingerprint, normalized_sql)`, counting a hit
    /// or a miss.
    pub fn get(&mut self, fingerprint: u64, normalized_sql: &str) -> Option<Arc<PhysicalPlan>> {
        let found = self
            .plans
            .get(&(fingerprint, normalized_sql.to_string()))
            .cloned();
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Stores a freshly compiled plan.
    pub fn insert(&mut self, fingerprint: u64, normalized_sql: String, plan: Arc<PhysicalPlan>) {
        self.plans.insert((fingerprint, normalized_sql), plan);
    }

    /// Evicts every plan compiled under a fingerprint other than `current`,
    /// counting each as an invalidation. Called when the catalog changes.
    pub fn invalidate_stale(&mut self, current: u64) {
        let before = self.plans.len();
        self.plans.retain(|(fp, _), _| *fp == current);
        self.stats.invalidations += (before - self.plans.len()) as u64;
    }

    /// Cached plan count.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::types::DataType;

    fn catalog() -> Catalog {
        Catalog::new().with_table("t", Schema::ints(&["a", "b"]), Party::new(1, "p1"))
    }

    #[test]
    fn fingerprint_tracks_catalog_contents() {
        let base = catalog_fingerprint(&catalog());
        assert_eq!(base, catalog_fingerprint(&catalog()), "deterministic");
        let renamed = catalog().with_table("u", Schema::ints(&["a"]), Party::new(2, "p2"));
        assert_ne!(base, catalog_fingerprint(&renamed), "new table changes it");
        let retyped = Catalog::new().with_table(
            "t",
            Schema::new(vec![
                conclave_ir::schema::ColumnDef::new("a", DataType::Int),
                conclave_ir::schema::ColumnDef::new("b", DataType::Float),
            ]),
            Party::new(1, "p1"),
        );
        assert_ne!(
            base,
            catalog_fingerprint(&retyped),
            "column type changes it"
        );
        let reowned =
            Catalog::new().with_table("t", Schema::ints(&["a", "b"]), Party::new(2, "p2"));
        assert_ne!(base, catalog_fingerprint(&reowned), "owner changes it");
    }

    fn tiny_plan() -> Arc<PhysicalPlan> {
        let query =
            conclave_sql::compile_sql_with_catalog("SELECT a FROM t REVEAL TO p1", &catalog())
                .unwrap();
        Arc::new(
            conclave_core::compile(
                &query,
                &conclave_core::config::ConclaveConfig::standard().with_sequential_local(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn cache_counts_hits_misses_and_invalidations() {
        let mut cache = PlanCache::new();
        assert!(cache.get(1, "SELECT 1").is_none());
        cache.insert(1, "SELECT 1".into(), tiny_plan());
        assert!(cache.get(1, "SELECT 1").is_some());
        assert!(
            cache.get(2, "SELECT 1").is_none(),
            "fingerprint is in the key"
        );
        cache.insert(2, "SELECT 1".into(), tiny_plan());
        assert_eq!(cache.len(), 2);
        cache.invalidate_stale(2);
        assert_eq!(cache.len(), 1, "the fingerprint-1 plan is evicted");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                invalidations: 1
            }
        );
    }
}
