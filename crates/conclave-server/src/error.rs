//! Typed serving-layer errors, and their wire error codes.

use conclave_core::session::SessionError;
use std::fmt;

/// Wire error code: the request frame itself was malformed (re-exported
/// from [`conclave_net::serve::WIRE_ERR_MALFORMED`] numbering).
pub const ERR_MALFORMED: u64 = conclave_net::serve::WIRE_ERR_MALFORMED;
/// Wire error code for [`ServerError::UnknownTenant`].
pub const ERR_UNKNOWN_TENANT: u64 = 1;
/// Wire error code for [`ServerError::Rejected`].
pub const ERR_REJECTED: u64 = 2;
/// Wire error code for [`ServerError::Query`].
pub const ERR_QUERY: u64 = 3;
/// Wire error code for a result payload the client could not decode.
pub const ERR_BAD_RESULT: u64 = 4;

/// The admission limits a rejected query ran into, echoed in
/// [`ServerError::Rejected`] so clients can tell *why* they were turned away
/// and apply backpressure instead of retrying blindly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Queries of this tenant currently admitted (executing or waiting on
    /// the tenant's executor).
    pub in_flight: usize,
    /// Queries currently parked in the tenant's wait queue.
    pub queued: usize,
    /// The tenant's concurrent-admission ceiling.
    pub max_in_flight: usize,
    /// The tenant's wait-queue capacity.
    pub queue_depth: usize,
}

/// Errors raised by the query service.
#[derive(Debug)]
pub enum ServerError {
    /// The request named a tenant the server has never registered.
    UnknownTenant(String),
    /// Admission control turned the query away: the tenant already has
    /// `max_in_flight` queries admitted and its wait queue is full.
    Rejected {
        /// The tenant whose limits were hit.
        tenant: String,
        /// The limits and occupancy at rejection time.
        limits: AdmissionSnapshot,
    },
    /// The query failed in the SQL frontend, the compiler or the runtime
    /// (the session error preserves which, plus the underlying cause).
    Query(SessionError),
    /// A wire-level failure reported by the remote server (decoded from a
    /// `QueryError` frame), or a reply the client could not decode.
    Remote {
        /// The wire error code (`ERR_*`).
        code: u64,
        /// Human-readable message from the server.
        message: String,
    },
}

impl ServerError {
    /// The wire error code this error is framed as.
    pub fn code(&self) -> u64 {
        match self {
            ServerError::UnknownTenant(_) => ERR_UNKNOWN_TENANT,
            ServerError::Rejected { .. } => ERR_REJECTED,
            ServerError::Query(_) => ERR_QUERY,
            ServerError::Remote { code, .. } => *code,
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownTenant(name) => write!(f, "unknown tenant `{name}`"),
            ServerError::Rejected { tenant, limits } => write!(
                f,
                "tenant `{tenant}` rejected the query: {} in flight (max {}), \
                 {} queued (depth {})",
                limits.in_flight, limits.max_in_flight, limits.queued, limits.queue_depth
            ),
            ServerError::Query(e) => write!(f, "query failed: {e}"),
            ServerError::Remote { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for ServerError {
    fn from(e: SessionError) -> Self {
        ServerError::Query(e)
    }
}
