//! The multi-tenant query service: tenants, the serving pipeline and the
//! in-process [`ServerHandle`].
//!
//! Each registered tenant owns a SQL [`Catalog`], a set of bound input
//! tables and a [`PersistentSession`] whose party mesh stays alive between
//! queries. The shared serving pipeline for `query(tenant, sql)` is:
//!
//! 1. **Admission** — the tenant's [`Admission`] gate either grants a slot,
//!    parks the query in a bounded queue, or sheds it with a typed
//!    [`ServerError::Rejected`].
//! 2. **Plan cache** — the SQL is normalized and looked up in the tenant's
//!    [`PlanCache`] under the current catalog fingerprint; a miss compiles
//!    (and leakage-certifies) a fresh
//!    [`PhysicalPlan`](conclave_core::plan::PhysicalPlan) and caches it.
//! 3. **Execution** — the plan runs on the tenant's persistent session,
//!    drawing preprocessed MPC material from the server's shared
//!    [`MaterialPool`] instead of blocking on the offline phase.

use crate::admission::{Admission, AdmissionLimits};
use crate::cache::{catalog_fingerprint, CacheStats, PlanCache};
use crate::error::ServerError;
use crate::wire::encode_outputs;
use conclave_core::config::ConclaveConfig;
use conclave_core::report::RunReport;
use conclave_core::session::{PersistentSession, SessionError};
use conclave_engine::Table;
use conclave_mpc::dealer::{MaterialPool, PoolStats};
use conclave_net::serve::serve_queries;
use conclave_net::{Transport, TransportError};
use conclave_sql::Catalog;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

/// Server-wide configuration: the per-tenant session template, the shared
/// dealer pool, and default admission limits.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Template [`ConclaveConfig`] each tenant's session is created from.
    pub session: ConclaveConfig,
    /// Shared preprocessed-material pool; when set, tenant sessions draw
    /// their MACed triples from it ([`conclave_core::config::DealerMode::Pooled`]).
    pub pool: Option<MaterialPool>,
    /// Admission limits applied to every tenant.
    pub limits: AdmissionLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            session: ConclaveConfig::standard().with_sequential_local(),
            pool: None,
            limits: AdmissionLimits::default(),
        }
    }
}

impl ServerConfig {
    /// Starts from a session template.
    pub fn new(session: ConclaveConfig) -> ServerConfig {
        ServerConfig {
            session,
            ..ServerConfig::default()
        }
    }

    /// Attaches a shared dealer-material pool.
    pub fn with_pool(mut self, pool: MaterialPool) -> ServerConfig {
        self.pool = Some(pool);
        self
    }

    /// Overrides the per-tenant admission limits.
    pub fn with_limits(mut self, limits: AdmissionLimits) -> ServerConfig {
        self.limits = limits;
        self
    }

    fn tenant_config(&self) -> ConclaveConfig {
        match &self.pool {
            Some(pool) => self.session.clone().with_pooled_dealer(pool.clone()),
            None => self.session.clone(),
        }
    }
}

/// Catalog + plan cache, guarded together so a catalog swap and its cache
/// invalidation are atomic.
#[derive(Debug)]
struct PlanState {
    catalog: Catalog,
    fingerprint: u64,
    cache: PlanCache,
}

struct Tenant {
    plans: Mutex<PlanState>,
    /// The tenant's executor. One query at a time per tenant: the mesh and
    /// its resident shares are single-query state.
    exec: Mutex<PersistentSession>,
    admission: Admission,
    completed: AtomicU64,
    /// Mirror of the executor's `has_live_mesh`, refreshed after every run.
    /// Kept outside `exec` so stats never block behind an executing (or
    /// pool-starved) query.
    mesh_live: AtomicBool,
}

/// Point-in-time statistics for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    /// Plan-cache hit/miss/invalidation counters.
    pub cache: CacheStats,
    /// Cached plans currently resident.
    pub cached_plans: usize,
    /// Queries admitted since registration.
    pub admitted: u64,
    /// Queries shed by admission control since registration.
    pub rejected: u64,
    /// Queries completed (successfully or not) since registration.
    pub completed: u64,
    /// Queries currently admitted.
    pub in_flight: usize,
    /// Queries currently parked in the admission queue.
    pub queued: usize,
    /// Whether the tenant's party mesh is currently alive.
    pub mesh_live: bool,
}

/// Point-in-time statistics for the whole server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Per-tenant counters, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantStats>,
    /// Shared dealer-pool counters, when a pool is attached.
    pub pool: Option<PoolStats>,
}

/// The result of one served query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The full run report (outputs, measured traffic, leakage audit).
    pub report: RunReport,
    /// Whether the plan came from the prepared-plan cache.
    pub cache_hit: bool,
    /// The cache key's normalized form of the submitted SQL.
    pub normalized_sql: String,
}

/// The query service core. Construct with [`ConclaveServer::start`], which
/// returns a cloneable [`ServerHandle`].
pub struct ConclaveServer {
    config: ServerConfig,
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
}

fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ConclaveServer {
    /// Starts a server and returns its in-process handle.
    pub fn start(config: ServerConfig) -> ServerHandle {
        ServerHandle {
            inner: Arc::new(ConclaveServer {
                config,
                tenants: RwLock::new(HashMap::new()),
            }),
        }
    }
}

/// Cloneable in-process handle to a [`ConclaveServer`]; every clone serves
/// the same tenants, caches and pool. This is also what the wire listener
/// ([`ServerHandle::serve`]) dispatches into.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<ConclaveServer>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("tenants", &self.tenant_names())
            .finish()
    }
}

impl ServerHandle {
    /// Registers a tenant with its catalog. Fails if the name is taken —
    /// tenants are isolated namespaces, not reconfigurable slots.
    pub fn register_tenant(&self, name: &str, catalog: Catalog) -> Result<(), ServerError> {
        let mut tenants = self
            .inner
            .tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if tenants.contains_key(name) {
            return Err(ServerError::Remote {
                code: crate::error::ERR_MALFORMED,
                message: format!("tenant `{name}` is already registered"),
            });
        }
        let fingerprint = catalog_fingerprint(&catalog);
        tenants.insert(
            name.to_string(),
            Arc::new(Tenant {
                plans: Mutex::new(PlanState {
                    catalog,
                    fingerprint,
                    cache: PlanCache::new(),
                }),
                exec: Mutex::new(PersistentSession::new(self.inner.config.tenant_config())),
                admission: Admission::new(self.inner.config.limits),
                completed: AtomicU64::new(0),
                mesh_live: AtomicBool::new(false),
            }),
        );
        Ok(())
    }

    /// Registered tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        let tenants = self
            .inner
            .tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let mut names: Vec<String> = tenants.keys().cloned().collect();
        names.sort();
        names
    }

    fn tenant(&self, name: &str) -> Result<Arc<Tenant>, ServerError> {
        let tenants = self
            .inner
            .tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        tenants
            .get(name)
            .cloned()
            .ok_or_else(|| ServerError::UnknownTenant(name.to_string()))
    }

    /// Binds (or rebinds — last bind wins) an input table for a tenant.
    /// Data changes do not touch the plan cache: plans depend on the catalog
    /// and query text only, data is fed at run time.
    pub fn bind(
        &self,
        tenant: &str,
        table: &str,
        data: impl Into<Table>,
    ) -> Result<(), ServerError> {
        let tenant = self.tenant(tenant)?;
        locked(&tenant.exec).bind(table, data);
        Ok(())
    }

    /// Replaces a tenant's catalog. The fingerprint rotation evicts every
    /// plan compiled under the old catalog (counted as invalidations).
    pub fn update_catalog(&self, tenant: &str, catalog: Catalog) -> Result<(), ServerError> {
        let tenant = self.tenant(tenant)?;
        let mut plans = locked(&tenant.plans);
        plans.fingerprint = catalog_fingerprint(&catalog);
        plans.catalog = catalog;
        let fingerprint = plans.fingerprint;
        plans.cache.invalidate_stale(fingerprint);
        Ok(())
    }

    /// Serves one query for a tenant: admission → plan cache → execution.
    pub fn query(&self, tenant_name: &str, sql: &str) -> Result<QueryOutcome, ServerError> {
        let tenant = self.tenant(tenant_name)?;
        let _slot = tenant
            .admission
            .admit()
            .map_err(|limits| ServerError::Rejected {
                tenant: tenant_name.to_string(),
                limits,
            })?;

        let outcome = self.run_admitted(&tenant, sql);
        tenant.completed.fetch_add(1, Ordering::Relaxed);
        outcome
    }

    fn run_admitted(&self, tenant: &Tenant, sql: &str) -> Result<QueryOutcome, ServerError> {
        // Parse once: the normalized text is the cache key, and the parsed
        // script is reused on a miss so no query parses twice.
        let script = conclave_sql::parse_script(sql)
            .map_err(|e| SessionError::Sql(e.located(sql)))
            .map_err(ServerError::from)?;
        let normalized_sql = script.to_string();
        let explain = script.explain_leakage;

        let (plan, cache_hit) = {
            let mut plans = locked(&tenant.plans);
            let fingerprint = plans.fingerprint;
            match plans.cache.get(fingerprint, &normalized_sql) {
                Some(plan) => (plan, true),
                None => {
                    let query = conclave_sql::lower_script_with_catalog(&script, &plans.catalog)
                        .map_err(|e| SessionError::Sql(e.located(sql)))
                        .map_err(ServerError::from)?;
                    let compiled = conclave_core::compile(&query, &self.inner.config.session)
                        .map_err(SessionError::Compile)
                        .map_err(ServerError::from)?;
                    let plan = Arc::new(compiled);
                    plans
                        .cache
                        .insert(fingerprint, normalized_sql.clone(), Arc::clone(&plan));
                    (plan, false)
                }
            }
        };

        if explain {
            // `EXPLAIN LEAKAGE` returns the plan's statically certified
            // report without executing (the compile above ran the linter).
            return Ok(QueryOutcome {
                report: RunReport {
                    static_leakage: Some(plan.leakage.clone()),
                    ..RunReport::default()
                },
                cache_hit,
                normalized_sql,
            });
        }

        let result = {
            let mut exec = locked(&tenant.exec);
            let result = exec.run_plan(&plan);
            tenant
                .mesh_live
                .store(exec.has_live_mesh(), Ordering::Relaxed);
            result
        };
        Ok(QueryOutcome {
            report: result?,
            cache_hit,
            normalized_sql,
        })
    }

    /// Statistics for one tenant.
    pub fn tenant_stats(&self, name: &str) -> Result<TenantStats, ServerError> {
        let tenant = self.tenant(name)?;
        let (cache, cached_plans) = {
            let plans = locked(&tenant.plans);
            (plans.cache.stats(), plans.cache.len())
        };
        let occupancy = tenant.admission.snapshot();
        let (admitted, rejected) = tenant.admission.totals();
        let mesh_live = tenant.mesh_live.load(Ordering::Relaxed);
        Ok(TenantStats {
            cache,
            cached_plans,
            admitted,
            rejected,
            completed: tenant.completed.load(Ordering::Relaxed),
            in_flight: occupancy.in_flight,
            queued: occupancy.queued,
            mesh_live,
        })
    }

    /// Statistics for every tenant plus the shared pool.
    pub fn stats(&self) -> ServerStats {
        let mut tenants = BTreeMap::new();
        for name in self.tenant_names() {
            if let Ok(stats) = self.tenant_stats(&name) {
                tenants.insert(name, stats);
            }
        }
        ServerStats {
            tenants,
            pool: self.inner.config.pool.as_ref().map(MaterialPool::stats),
        }
    }

    /// The shared dealer pool, if one is attached.
    pub fn pool(&self) -> Option<&MaterialPool> {
        self.inner.config.pool.as_ref()
    }

    /// Runs the wire listener on an established two-endpoint link (the
    /// server is party 1): decodes `SubmitSql` frames, dispatches into
    /// [`ServerHandle::query`], and frames results/errors back until the
    /// peer disconnects.
    pub fn serve(&self, link: &dyn Transport) -> Result<(), TransportError> {
        serve_queries(link, |tenant, sql| {
            self.query(tenant, sql)
                .map(|outcome| encode_outputs(&outcome.report.outputs))
                .map_err(|e| (e.code(), e.to_string()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{ERR_QUERY, ERR_UNKNOWN_TENANT};
    use crate::wire::query_remote;
    use conclave_engine::Relation;
    use conclave_net::ChannelTransport;

    const SUM_SQL: &str = "
        CREATE TABLE ta (k INT, v INT) WITH OWNER p1;
        CREATE TABLE tb (k INT, v INT) WITH OWNER p2;
        SELECT k, SUM(v) AS total FROM (ta UNION ALL tb) GROUP BY k REVEAL TO p1;
    ";

    fn sum_server() -> ServerHandle {
        let server = ConclaveServer::start(ServerConfig::default());
        server.register_tenant("acme", Catalog::new()).unwrap();
        server
            .bind(
                "acme",
                "ta",
                Relation::from_ints(&["k", "v"], &[vec![1, 2]]),
            )
            .unwrap();
        server
            .bind(
                "acme",
                "tb",
                Relation::from_ints(&["k", "v"], &[vec![1, 3]]),
            )
            .unwrap();
        server
    }

    #[test]
    fn serves_queries_with_a_plan_cache() {
        let server = sum_server();
        let first = server.query("acme", SUM_SQL).unwrap();
        assert!(!first.cache_hit);
        let expected = Relation::from_ints(&["k", "total"], &[vec![1, 5]]);
        assert!(first.report.outputs[&1].same_rows_unordered(&expected));
        // Same query, messier spelling: normalization makes it a cache hit.
        let messy = SUM_SQL.to_lowercase().replace("select", "SELECT  \n ");
        let second = server.query("acme", &messy).unwrap();
        assert!(second.cache_hit, "normalized text shares the cached plan");
        assert_eq!(second.normalized_sql, first.normalized_sql);
        let stats = server.tenant_stats("acme").unwrap();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn unknown_tenants_and_bad_sql_are_typed() {
        let server = sum_server();
        let err = server.query("ghost", SUM_SQL).unwrap_err();
        assert!(matches!(err, ServerError::UnknownTenant(_)));
        assert_eq!(err.code(), ERR_UNKNOWN_TENANT);
        let err = server.query("acme", "SELECT FROM").unwrap_err();
        assert!(matches!(err, ServerError::Query(SessionError::Sql(_))));
        assert_eq!(err.code(), ERR_QUERY);
        assert!(server.register_tenant("acme", Catalog::new()).is_err());
    }

    #[test]
    fn catalog_update_invalidates_cached_plans() {
        let server = sum_server();
        server.query("acme", SUM_SQL).unwrap();
        assert_eq!(server.tenant_stats("acme").unwrap().cached_plans, 1);
        // A genuinely different catalog rotates the fingerprint.
        let changed = Catalog::new().with_table(
            "tc",
            conclave_ir::schema::Schema::ints(&["x"]),
            conclave_ir::party::Party::new(1, "p1"),
        );
        server.update_catalog("acme", changed).unwrap();
        let stats = server.tenant_stats("acme").unwrap();
        assert_eq!(stats.cache.invalidations, 1);
        assert_eq!(stats.cached_plans, 0);
        // The same text now misses and recompiles.
        let again = server.query("acme", SUM_SQL).unwrap();
        assert!(!again.cache_hit);
    }

    #[test]
    fn wire_round_trip_results_and_errors() {
        let server = sum_server();
        let mut mesh = ChannelTransport::mesh(2);
        let server_end = mesh.pop().unwrap();
        let client = mesh.pop().unwrap();
        let listener = {
            let server = server.clone();
            std::thread::spawn(move || server.serve(&server_end))
        };
        let outputs = query_remote(&client, "acme", SUM_SQL).unwrap();
        let expected = Relation::from_ints(&["k", "total"], &[vec![1, 5]]);
        assert!(outputs[&1].same_rows_unordered(&expected));
        let err = query_remote(&client, "ghost", SUM_SQL).unwrap_err();
        assert!(
            matches!(err, ServerError::Remote { code, .. } if code == ERR_UNKNOWN_TENANT),
            "{err}"
        );
        drop(client);
        listener.join().unwrap().unwrap();
    }

    #[test]
    fn explain_leakage_uses_the_cache_without_executing() {
        let server = sum_server();
        let explain = SUM_SQL.replace("SELECT k", "EXPLAIN LEAKAGE SELECT k");
        let outcome = server.query("acme", &explain).unwrap();
        assert!(outcome.report.outputs.is_empty());
        assert!(outcome.report.static_leakage.is_some());
        let second = server.query("acme", &explain).unwrap();
        assert!(second.cache_hit);
    }
}
