//! Per-tenant admission control: a bounded in-flight ceiling plus a bounded
//! wait queue, with typed rejections once both are full.
//!
//! Admission is deliberately *blocking* inside the queue (a query parked in
//! the queue waits on a condvar until a slot frees) and *rejecting* beyond
//! it — the serving loop never buffers unbounded work for a tenant, it sheds
//! it with [`AdmissionSnapshot`]-carrying errors the client can act on.

use crate::error::AdmissionSnapshot;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionLimits {
    /// Maximum queries admitted at once (executing or waiting on the
    /// tenant's executor lock).
    pub max_in_flight: usize,
    /// Maximum queries parked waiting for an in-flight slot before new
    /// arrivals are rejected.
    pub queue_depth: usize,
}

impl Default for AdmissionLimits {
    fn default() -> Self {
        AdmissionLimits {
            max_in_flight: 4,
            queue_depth: 16,
        }
    }
}

#[derive(Debug, Default)]
struct Occupancy {
    in_flight: usize,
    queued: usize,
    rejected: u64,
    admitted: u64,
}

/// The admission gate for one tenant.
#[derive(Debug)]
pub struct Admission {
    limits: AdmissionLimits,
    occupancy: Mutex<Occupancy>,
    freed: Condvar,
}

fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while holding the lock poisons it; the occupancy counters are
    // still internally consistent, so recover rather than cascade panics.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Admission {
    /// Creates a gate with the given limits.
    pub fn new(limits: AdmissionLimits) -> Admission {
        Admission {
            limits,
            occupancy: Mutex::new(Occupancy::default()),
            freed: Condvar::new(),
        }
    }

    /// The configured limits.
    pub fn limits(&self) -> AdmissionLimits {
        self.limits
    }

    /// Tries to admit one query: immediately if a slot is free, after
    /// queueing if the queue has room, or returns the occupancy snapshot the
    /// rejection was based on.
    pub fn admit(&self) -> Result<AdmissionGuard<'_>, AdmissionSnapshot> {
        let mut occ = locked(&self.occupancy);
        if occ.in_flight >= self.limits.max_in_flight {
            if occ.queued >= self.limits.queue_depth {
                occ.rejected += 1;
                return Err(AdmissionSnapshot {
                    in_flight: occ.in_flight,
                    queued: occ.queued,
                    max_in_flight: self.limits.max_in_flight,
                    queue_depth: self.limits.queue_depth,
                });
            }
            occ.queued += 1;
            while occ.in_flight >= self.limits.max_in_flight {
                occ = self.freed.wait(occ).unwrap_or_else(PoisonError::into_inner);
            }
            occ.queued -= 1;
        }
        occ.in_flight += 1;
        occ.admitted += 1;
        Ok(AdmissionGuard { gate: self })
    }

    /// Current occupancy and limits.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let occ = locked(&self.occupancy);
        AdmissionSnapshot {
            in_flight: occ.in_flight,
            queued: occ.queued,
            max_in_flight: self.limits.max_in_flight,
            queue_depth: self.limits.queue_depth,
        }
    }

    /// Total queries admitted and rejected so far.
    pub fn totals(&self) -> (u64, u64) {
        let occ = locked(&self.occupancy);
        (occ.admitted, occ.rejected)
    }

    fn release(&self) {
        let mut occ = locked(&self.occupancy);
        occ.in_flight = occ.in_flight.saturating_sub(1);
        drop(occ);
        self.freed.notify_one();
    }
}

/// RAII token for one admitted query: dropping it frees the slot and wakes
/// one queued waiter.
#[derive(Debug)]
pub struct AdmissionGuard<'a> {
    gate: &'a Admission,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn admits_up_to_the_ceiling_then_rejects_past_the_queue() {
        let gate = Admission::new(AdmissionLimits {
            max_in_flight: 2,
            queue_depth: 0,
        });
        let a = gate.admit().expect("slot 1");
        let _b = gate.admit().expect("slot 2");
        let rejected = gate.admit().expect_err("no queue: third is shed");
        assert_eq!(rejected.in_flight, 2);
        assert_eq!(rejected.max_in_flight, 2);
        assert_eq!(rejected.queue_depth, 0);
        drop(a);
        let _c = gate.admit().expect("freed slot readmits");
        assert_eq!(gate.totals(), (3, 1));
    }

    #[test]
    fn queued_queries_wait_for_a_freed_slot() {
        let gate = Arc::new(Admission::new(AdmissionLimits {
            max_in_flight: 1,
            queue_depth: 1,
        }));
        let first = gate.admit().expect("slot");
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _g = gate.admit().expect("queued, then admitted");
            })
        };
        // Let the waiter park in the queue, then observe it there.
        while gate.snapshot().queued == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(gate.admit().expect_err("queue full").queued, 1);
        drop(first);
        waiter.join().expect("waiter completes after the release");
        assert_eq!(gate.snapshot().in_flight, 0);
    }
}
