//! Minimal CSV reading and writing for relations.
//!
//! The paper's prototype exchanges input/output relations as CSV files between
//! the per-party agents and the backends (`writeToCSV` in Listings 1–2). This
//! module provides the same capability without external dependencies; it
//! handles the integer/float data the workloads use and does not attempt full
//! RFC 4180 quoting.

use crate::error::{EngineError, EngineResult};
use crate::relation::Relation;
use conclave_ir::schema::{ColumnDef, Schema};
use conclave_ir::types::{DataType, Value};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Serializes a relation to CSV text with a header row.
pub fn to_csv_string(rel: &Relation) -> String {
    let mut out = String::new();
    out.push_str(&rel.schema.names().join(","));
    out.push('\n');
    for row in &rel.rows {
        let cells: Vec<String> = row.iter().map(value_to_cell).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn value_to_cell(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        other => other.to_string(),
    }
}

/// Writes a relation to a CSV file.
pub fn write_csv(rel: &Relation, path: &Path) -> io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(to_csv_string(rel).as_bytes())
}

/// Parses CSV text into a relation using the given schema. The header row is
/// validated against the schema's column names; parse failures carry the
/// 1-based CSV line number in a typed [`EngineError::Csv`].
pub fn from_csv_string(text: &str, schema: &Schema) -> EngineResult<Relation> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(EngineError::Csv {
        line: 1,
        message: "empty CSV input".to_string(),
    })?;
    let names: Vec<&str> = header.split(',').map(str::trim).collect();
    if names != schema.names() {
        return Err(EngineError::Csv {
            line: 1,
            message: format!(
                "header {:?} does not match schema {:?}",
                names,
                schema.names()
            ),
        });
    }
    let mut rows = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != schema.len() {
            return Err(EngineError::Csv {
                line: lineno + 2,
                message: format!("expected {} cells, got {}", schema.len(), cells.len()),
            });
        }
        let mut row = Vec::with_capacity(cells.len());
        for (cell, col) in cells.iter().zip(&schema.columns) {
            row.push(
                parse_cell(cell.trim(), col).map_err(|message| EngineError::Csv {
                    line: lineno + 2,
                    message,
                })?,
            );
        }
        rows.push(row);
    }
    // Arity was validated per line, but routing through the typed constructor
    // keeps `RowArity` as the single source of truth for shape errors.
    Relation::new(schema.clone(), rows)
}

fn parse_cell(cell: &str, col: &ColumnDef) -> Result<Value, String> {
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    match col.dtype {
        DataType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| format!("column `{}`: {e}", col.name)),
        DataType::Float => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| format!("column `{}`: {e}", col.name)),
        DataType::Bool => match cell {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            other => Err(format!("column `{}`: invalid bool `{other}`", col.name)),
        },
        DataType::Str => Ok(Value::Str(cell.to_string())),
    }
}

/// Reads a CSV file into a relation using the given schema.
pub fn read_csv(path: &Path, schema: &Schema) -> EngineResult<Relation> {
    let text = fs::read_to_string(path).map_err(|e| EngineError::Io(e.to_string()))?;
    from_csv_string(&text, schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_ints() {
        let rel = Relation::from_ints(&["k", "v"], &[vec![1, 10], vec![2, -20]]);
        let csv = to_csv_string(&rel);
        assert!(csv.starts_with("k,v\n"));
        let back = from_csv_string(&csv, &rel.schema).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn round_trip_mixed_types() {
        let schema = Schema::new(vec![
            ColumnDef::new("i", DataType::Int),
            ColumnDef::new("f", DataType::Float),
            ColumnDef::new("b", DataType::Bool),
            ColumnDef::new("s", DataType::Str),
        ]);
        let rel = Relation::new(
            schema.clone(),
            vec![
                vec![
                    Value::Int(1),
                    Value::Float(2.5),
                    Value::Bool(true),
                    Value::Str("abc".into()),
                ],
                vec![Value::Int(2), Value::Null, Value::Bool(false), Value::Null],
            ],
        )
        .unwrap();
        let csv = to_csv_string(&rel);
        let back = from_csv_string(&csv, &schema).unwrap();
        assert_eq!(back.rows[0][3], Value::Str("abc".into()));
        assert_eq!(back.rows[1][1], Value::Null);
    }

    #[test]
    fn header_mismatch_rejected() {
        let rel = Relation::from_ints(&["a"], &[vec![1]]);
        let other = Schema::ints(&["b"]);
        assert!(from_csv_string(&to_csv_string(&rel), &other).is_err());
        assert!(from_csv_string("", &other).is_err());
    }

    #[test]
    fn arity_and_parse_errors() {
        let schema = Schema::ints(&["a", "b"]);
        assert!(matches!(
            from_csv_string("a,b\n1\n", &schema),
            Err(EngineError::Csv { line: 2, .. })
        ));
        assert!(matches!(
            from_csv_string("a,b\n1,2\n3,notanumber\n", &schema),
            Err(EngineError::Csv { line: 3, .. })
        ));
        let bool_schema = Schema::new(vec![ColumnDef::new("x", DataType::Bool)]);
        assert!(from_csv_string("x\nmaybe\n", &bool_schema).is_err());
        assert!(from_csv_string("x\n1\n", &bool_schema).is_ok());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("conclave_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let rel = Relation::from_ints(&["k", "v"], &[vec![7, 8]]);
        write_csv(&rel, &path).unwrap();
        let back = read_csv(&path, &rel.schema).unwrap();
        assert_eq!(back, rel);
        let missing = dir.join("does_not_exist.csv");
        assert!(matches!(
            read_csv(&missing, &rel.schema),
            Err(EngineError::Io(_))
        ));
    }
}
