//! Vectorized cleartext execution over columnar relations.
//!
//! [`execute_columnar`] is the column-at-a-time counterpart of
//! [`crate::exec::execute`]: the same operators, the same semantics (the
//! differential test suite holds the two engines to cell-for-cell equality),
//! but implemented as tight loops over typed column vectors. Integer-only
//! workloads — the common case in Conclave queries — run entirely over `i64`
//! slices: filters evaluate predicates in batch, aggregations accumulate into
//! per-group slots, and hash joins build primitive-key tables.

use crate::columnar::{Column, ColumnarRelation};
use crate::error::{EngineError, EngineResult};
use crate::relation::Relation;
use conclave_ir::expr::{apply_binop_batch, BinOp, Expr, ValueBatch};
use conclave_ir::ops::{AggFunc, Operand, Operator};
use conclave_ir::schema::Schema;
use conclave_ir::types::Value;
use std::collections::{HashMap, HashSet};

/// Executes one operator over columnar inputs, producing a columnar output.
pub fn execute_columnar(
    op: &Operator,
    inputs: &[&ColumnarRelation],
) -> EngineResult<ColumnarRelation> {
    match op {
        Operator::Input { name, .. } => Err(EngineError::Unsupported(format!(
            "input({name}) must be bound to stored data by the driver"
        ))),
        Operator::Concat => {
            if inputs.is_empty() {
                return Err(EngineError::Arity {
                    op: "concat".into(),
                    expected: ">=1".into(),
                    got: 0,
                });
            }
            let parts: Vec<ColumnarRelation> = inputs.iter().map(|r| (*r).clone()).collect();
            ColumnarRelation::concat(&parts)
        }
        Operator::Project { columns } => {
            need(op, inputs, 1)?;
            project(inputs[0], columns)
        }
        Operator::Filter { predicate } => {
            need(op, inputs, 1)?;
            filter(inputs[0], predicate)
        }
        Operator::Join {
            left_keys,
            right_keys,
            ..
        } => {
            need(op, inputs, 2)?;
            join(inputs[0], inputs[1], left_keys, right_keys)
        }
        Operator::Aggregate {
            group_by,
            func,
            over,
            out,
        } => {
            need(op, inputs, 1)?;
            aggregate(inputs[0], group_by, *func, over.as_deref(), out)
        }
        Operator::Multiply { out, operands } => {
            need(op, inputs, 1)?;
            multiply(inputs[0], out, operands)
        }
        Operator::Divide { out, num, den } => {
            need(op, inputs, 1)?;
            divide(inputs[0], out, num, den)
        }
        Operator::SortBy { column, ascending } => {
            need(op, inputs, 1)?;
            sort_by(inputs[0], column, *ascending)
        }
        Operator::Limit { n } => {
            need(op, inputs, 1)?;
            let end = (*n).min(inputs[0].num_rows());
            Ok(inputs[0].slice(0, end))
        }
        Operator::Distinct { columns } => {
            need(op, inputs, 1)?;
            distinct(inputs[0], columns)
        }
        Operator::DistinctCount { column, out } => {
            need(op, inputs, 1)?;
            distinct_count(inputs[0], column, out)
        }
        Operator::Collect { .. } | Operator::Open { .. } | Operator::CloseTo => {
            need(op, inputs, 1)?;
            Ok(inputs[0].clone())
        }
        Operator::RevealTo { columns, .. } => {
            need(op, inputs, 1)?;
            match columns {
                Some(cols) => project(inputs[0], cols),
                None => Ok(inputs[0].clone()),
            }
        }
        Operator::Shuffle => {
            // Deterministic block-reversing permutation, matching the row
            // engine; the *oblivious* shuffle lives in `conclave-mpc`.
            need(op, inputs, 1)?;
            let n = inputs[0].num_rows();
            let reversed: Vec<usize> = (0..n).rev().collect();
            Ok(inputs[0].gather(&reversed))
        }
        Operator::Enumerate { out } => {
            need(op, inputs, 1)?;
            enumerate(inputs[0], out)
        }
        Operator::ObliviousSelect { index_column } => {
            need(op, inputs, 2)?;
            select_by_index(inputs[0], inputs[1], index_column)
        }
        Operator::Merge { column, ascending } => {
            if inputs.is_empty() {
                return Err(EngineError::Arity {
                    op: "merge".into(),
                    expected: ">=1".into(),
                    got: 0,
                });
            }
            let parts: Vec<ColumnarRelation> = inputs.iter().map(|r| (*r).clone()).collect();
            let merged = ColumnarRelation::concat(&parts)?;
            sort_by(&merged, column, *ascending)
        }
        Operator::HybridJoin { .. }
        | Operator::PublicJoin { .. }
        | Operator::HybridAggregate { .. } => Err(EngineError::Unsupported(op.name().to_string())),
    }
}

/// Executes one operator on row-major inputs through the vectorized engine:
/// converts to columnar form, runs [`execute_columnar`], converts back. This
/// is the entry point the driver uses when [`crate::EngineMode::Columnar`] is
/// selected at plan-execution boundaries that traffic in row relations.
pub fn execute_vectorized(op: &Operator, inputs: &[&Relation]) -> EngineResult<Relation> {
    let columnar: Vec<ColumnarRelation> = inputs
        .iter()
        .map(|r| ColumnarRelation::from_rows(r))
        .collect();
    let refs: Vec<&ColumnarRelation> = columnar.iter().collect();
    execute_columnar(op, &refs).map(|out| out.to_rows())
}

fn need(op: &Operator, inputs: &[&ColumnarRelation], n: usize) -> EngineResult<()> {
    if inputs.len() == n {
        Ok(())
    } else {
        Err(EngineError::Arity {
            op: op.name().to_string(),
            expected: n.to_string(),
            got: inputs.len(),
        })
    }
}

fn col_idx(rel: &ColumnarRelation, name: &str) -> EngineResult<usize> {
    rel.col_index(name)
        .ok_or_else(|| EngineError::UnknownColumn(name.to_string()))
}

fn out_schema(op: &Operator, inputs: &[&ColumnarRelation]) -> Schema {
    let schemas: Vec<Schema> = inputs.iter().map(|r| r.schema.clone()).collect();
    op.output_schema(&schemas)
        .unwrap_or_else(|_| inputs[0].schema.clone())
}

fn project(rel: &ColumnarRelation, columns: &[String]) -> EngineResult<ColumnarRelation> {
    let idxs: Vec<usize> = columns
        .iter()
        .map(|c| col_idx(rel, c))
        .collect::<EngineResult<_>>()?;
    let op = Operator::Project {
        columns: columns.to_vec(),
    };
    let schema = out_schema(&op, &[rel]);
    let cols = idxs.iter().map(|&i| rel.column(i).clone()).collect();
    ColumnarRelation::with_columns(schema, cols)
}

fn filter(rel: &ColumnarRelation, predicate: &Expr) -> EngineResult<ColumnarRelation> {
    // The row engine evaluates the predicate per row, so an empty input never
    // evaluates it at all (and thus never errors); mirror that.
    if rel.is_empty() {
        return Ok(rel.clone());
    }
    let batch = predicate
        .eval_batch(&rel.schema, rel)
        .map_err(|e| EngineError::Eval(e.to_string()))?;
    Ok(rel.filter(&batch.to_mask()))
}

/// Hash equi-join (inner), vectorized: match row indices first, then gather
/// whole columns once.
fn join(
    left: &ColumnarRelation,
    right: &ColumnarRelation,
    left_keys: &[String],
    right_keys: &[String],
) -> EngineResult<ColumnarRelation> {
    let lk: Vec<usize> = left_keys
        .iter()
        .map(|c| col_idx(left, c))
        .collect::<EngineResult<_>>()?;
    let rk: Vec<usize> = right_keys
        .iter()
        .map(|c| col_idx(right, c))
        .collect::<EngineResult<_>>()?;
    let op = Operator::Join {
        left_keys: left_keys.to_vec(),
        right_keys: right_keys.to_vec(),
        kind: conclave_ir::ops::JoinKind::Inner,
    };
    let schema = out_schema(&op, &[left, right]);

    let (left_idx, right_idx) = match (single_int_key(left, &lk), single_int_key(right, &rk)) {
        // Primitive-key fast path: single integer key on both sides.
        (Some(lkeys), Some(rkeys)) => {
            let mut table: HashMap<i64, Vec<u32>> = HashMap::with_capacity(rkeys.len());
            for (i, &k) in rkeys.iter().enumerate() {
                table.entry(k).or_default().push(i as u32);
            }
            let mut li = Vec::new();
            let mut ri = Vec::new();
            for (i, &k) in lkeys.iter().enumerate() {
                if let Some(matches) = table.get(&k) {
                    for &m in matches {
                        li.push(i);
                        ri.push(m as usize);
                    }
                }
            }
            (li, ri)
        }
        // General path: `Value` keys (identical hash/equality semantics to
        // the row engine, including Int/Float cross-type equality).
        _ => {
            let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for i in 0..right.num_rows() {
                let key: Vec<Value> = rk.iter().map(|&c| right.value(i, c)).collect();
                table.entry(key).or_default().push(i);
            }
            let mut li = Vec::new();
            let mut ri = Vec::new();
            for i in 0..left.num_rows() {
                let key: Vec<Value> = lk.iter().map(|&c| left.value(i, c)).collect();
                if let Some(matches) = table.get(&key) {
                    for &m in matches {
                        li.push(i);
                        ri.push(m);
                    }
                }
            }
            (li, ri)
        }
    };

    let mut cols: Vec<Column> = (0..left.num_cols())
        .map(|c| left.column(c).gather(&left_idx))
        .collect();
    for c in 0..right.num_cols() {
        if !rk.contains(&c) {
            cols.push(right.column(c).gather(&right_idx));
        }
    }
    ColumnarRelation::with_columns(schema, cols)
}

/// The key column as an `i64` slice when the key is a single null-free
/// integer column (the fast-path precondition for joins and aggregations).
fn single_int_key<'a>(rel: &'a ColumnarRelation, key_cols: &[usize]) -> Option<&'a [i64]> {
    match key_cols {
        [one] => rel.column(*one).as_ints(),
        _ => None,
    }
}

fn aggregate(
    rel: &ColumnarRelation,
    group_by: &[String],
    func: AggFunc,
    over: Option<&str>,
    out: &str,
) -> EngineResult<ColumnarRelation> {
    let key_cols: Vec<usize> = group_by
        .iter()
        .map(|c| col_idx(rel, c))
        .collect::<EngineResult<_>>()?;
    let over_col = match over {
        Some(o) => Some(col_idx(rel, o)?),
        None => {
            if func.needs_over() {
                return Err(EngineError::Eval(format!("{func} requires an over column")));
            }
            None
        }
    };
    let op = Operator::Aggregate {
        group_by: group_by.to_vec(),
        func,
        over: over.map(|s| s.to_string()),
        out: out.to_string(),
    };
    let schema = out_schema(&op, &[rel]);

    // Scalar aggregation (no group-by): one output row.
    if key_cols.is_empty() {
        let value = scalar_aggregate(rel, func, over_col);
        let cols = vec![Column::from_values(vec![value])];
        return ColumnarRelation::with_columns(schema, cols);
    }

    let n = rel.num_rows();

    // Primitive fast path: single null-free integer group key with either no
    // over column (COUNT) or a null-free integer over column.
    if let Some(keys) = single_int_key(rel, &key_cols) {
        let over_ints = over_col.map(|c| rel.column(c).as_ints());
        let over_ok = match over_ints {
            None => true,
            Some(Some(_)) => true,
            Some(None) => false,
        };
        if over_ok {
            let vals: Option<&[i64]> = over_ints.flatten();
            let mut slots: HashMap<i64, usize> = HashMap::new();
            let mut group_keys: Vec<i64> = Vec::new();
            let mut accs: Vec<i64> = Vec::new();
            for (i, &k) in keys.iter().enumerate() {
                let slot = *slots.entry(k).or_insert_with(|| {
                    group_keys.push(k);
                    accs.push(match func {
                        AggFunc::Count => 0,
                        AggFunc::Sum => 0,
                        AggFunc::Min => i64::MAX,
                        AggFunc::Max => i64::MIN,
                    });
                    accs.len() - 1
                });
                match func {
                    AggFunc::Count => accs[slot] += 1,
                    AggFunc::Sum => accs[slot] = accs[slot].wrapping_add(vals.expect("over")[i]),
                    AggFunc::Min => accs[slot] = accs[slot].min(vals.expect("over")[i]),
                    AggFunc::Max => accs[slot] = accs[slot].max(vals.expect("over")[i]),
                }
            }
            let cols = vec![Column::ints(group_keys), Column::ints(accs)];
            return ColumnarRelation::with_columns(schema, cols);
        }
    }

    // General path: `Value` keys and `Value` accumulation, reproducing the
    // row engine's coercion rules (nulls poison sums, floats promote, NULL
    // sorts below everything for min/max).
    let mut slots: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut group_keys: Vec<Vec<Value>> = Vec::new();
    let mut accs: Vec<Value> = Vec::new();
    for i in 0..n {
        let key: Vec<Value> = key_cols.iter().map(|&c| rel.value(i, c)).collect();
        let over_value = || rel.value(i, over_col.expect("checked above"));
        match slots.get(&key) {
            None => {
                group_keys.push(key.clone());
                slots.insert(key, accs.len());
                // Each group is seeded from its first row, so min/max never
                // need a sentinel that could be confused with a real NULL.
                accs.push(match func {
                    AggFunc::Count => Value::Int(1),
                    AggFunc::Sum => Value::Int(0).add(&over_value()),
                    AggFunc::Min | AggFunc::Max => over_value(),
                });
            }
            Some(&slot) => match func {
                AggFunc::Count => {
                    accs[slot] = Value::Int(accs[slot].as_int().unwrap_or(0) + 1);
                }
                AggFunc::Sum => {
                    accs[slot] = accs[slot].add(&over_value());
                }
                AggFunc::Min | AggFunc::Max => {
                    // Tie-breaking mirrors the row engine's Iterator::min/max:
                    // min keeps the first of equal elements (strict <), max
                    // keeps the last (non-strict >=) — observable when cells
                    // compare equal but differ (e.g. Int(2) vs Float(2.0)).
                    let v = over_value();
                    let replace = if func == AggFunc::Min {
                        v < accs[slot]
                    } else {
                        v >= accs[slot]
                    };
                    if replace {
                        accs[slot] = v;
                    }
                }
            },
        }
    }
    let mut cols: Vec<Column> = Vec::with_capacity(key_cols.len() + 1);
    for k in 0..key_cols.len() {
        cols.push(Column::from_values(
            group_keys.iter().map(|g| g[k].clone()).collect(),
        ));
    }
    cols.push(Column::from_values(accs));
    ColumnarRelation::with_columns(schema, cols)
}

fn scalar_aggregate(rel: &ColumnarRelation, func: AggFunc, over_col: Option<usize>) -> Value {
    let n = rel.num_rows();
    match func {
        AggFunc::Count => Value::Int(n as i64),
        AggFunc::Sum => {
            let c = over_col.expect("validated by caller");
            if let Some(ints) = rel.column(c).as_ints() {
                let mut acc = 0i64;
                for &v in ints {
                    acc = acc.wrapping_add(v);
                }
                Value::Int(acc)
            } else if let Some(floats) = rel.column(c).as_floats() {
                // The row engine starts from Int(0) and promotes on the first
                // float: 0.0 + x1 + x2 + ... in the same order.
                if floats.is_empty() {
                    Value::Int(0)
                } else {
                    let mut acc = 0.0f64;
                    for &v in floats {
                        acc += v;
                    }
                    Value::Float(acc)
                }
            } else {
                let mut acc = Value::Int(0);
                for i in 0..n {
                    acc = acc.add(&rel.value(i, c));
                }
                acc
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let c = over_col.expect("validated by caller");
            let mut best: Option<Value> = None;
            for i in 0..n {
                let v = rel.value(i, c);
                best = Some(match best {
                    None => v,
                    // Same tie-breaking as Iterator::min/max: first minimal
                    // element wins, last maximal element wins.
                    Some(b) => {
                        if (func == AggFunc::Min && v < b) || (func == AggFunc::Max && v >= b) {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or(Value::Null)
        }
    }
}

fn operand_batch(rel: &ColumnarRelation, operand: &Operand) -> EngineResult<ValueBatch> {
    match operand {
        Operand::Col(c) => {
            let idx = col_idx(rel, c)?;
            Ok(rel.column(idx).to_batch())
        }
        Operand::Lit(v) => Ok(ValueBatch::Splat(v.clone(), rel.num_rows())),
    }
}

fn replace_or_append(
    rel: &ColumnarRelation,
    schema: Schema,
    out: &str,
    col: Column,
) -> EngineResult<ColumnarRelation> {
    let mut cols: Vec<Column> = rel.columns().to_vec();
    match rel.col_index(out) {
        Some(i) => cols[i] = col,
        None => cols.push(col),
    }
    ColumnarRelation::with_columns(schema, cols)
}

fn multiply(
    rel: &ColumnarRelation,
    out: &str,
    operands: &[Operand],
) -> EngineResult<ColumnarRelation> {
    let op = Operator::Multiply {
        out: out.to_string(),
        operands: operands.to_vec(),
    };
    let schema = out_schema(&op, &[rel]);
    // The row engine resolves operand columns inside the per-row loop, so an
    // empty input cannot raise unknown-column errors; mirror that.
    if rel.is_empty() {
        return Ok(ColumnarRelation::empty(schema));
    }
    let mut acc = ValueBatch::Splat(Value::Int(1), rel.num_rows());
    for o in operands {
        let b = operand_batch(rel, o)?;
        acc = apply_binop_batch(BinOp::Mul, &acc, &b);
    }
    replace_or_append(rel, schema, out, Column::from_batch(acc))
}

fn divide(
    rel: &ColumnarRelation,
    out: &str,
    num: &Operand,
    den: &Operand,
) -> EngineResult<ColumnarRelation> {
    let op = Operator::Divide {
        out: out.to_string(),
        num: num.clone(),
        den: den.clone(),
    };
    let schema = out_schema(&op, &[rel]);
    if rel.is_empty() {
        return Ok(ColumnarRelation::empty(schema));
    }
    let n = operand_batch(rel, num)?;
    let d = operand_batch(rel, den)?;
    let result = apply_binop_batch(BinOp::Div, &n, &d);
    replace_or_append(rel, schema, out, Column::from_batch(result))
}

fn sort_by(
    rel: &ColumnarRelation,
    column: &str,
    ascending: bool,
) -> EngineResult<ColumnarRelation> {
    let idx = col_idx(rel, column)?;
    let n = rel.num_rows();
    let mut indices: Vec<usize> = (0..n).collect();
    if let Some(ints) = rel.column(idx).as_ints() {
        indices.sort_by_key(|&i| ints[i]);
    } else {
        let values = rel.column(idx).values();
        indices.sort_by(|&a, &b| values[a].cmp(&values[b]));
    }
    // The row engine sorts ascending (stably) and then reverses the whole
    // relation for descending order; reproduce that exactly, tie order
    // included.
    if !ascending {
        indices.reverse();
    }
    Ok(rel.gather(&indices))
}

fn distinct(rel: &ColumnarRelation, columns: &[String]) -> EngineResult<ColumnarRelation> {
    let proj = project(rel, columns)?;
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut keep: Vec<usize> = Vec::new();
    for i in 0..proj.num_rows() {
        let key: Vec<Value> = (0..proj.num_cols()).map(|c| proj.value(i, c)).collect();
        if seen.insert(key) {
            keep.push(i);
        }
    }
    Ok(proj.gather(&keep))
}

fn distinct_count(
    rel: &ColumnarRelation,
    column: &str,
    out: &str,
) -> EngineResult<ColumnarRelation> {
    let idx = col_idx(rel, column)?;
    let count = if let Some(ints) = rel.column(idx).as_ints() {
        let seen: HashSet<i64> = ints.iter().copied().collect();
        seen.len()
    } else {
        let seen: HashSet<Value> = (0..rel.num_rows()).map(|i| rel.value(i, idx)).collect();
        seen.len()
    };
    let op = Operator::DistinctCount {
        column: column.to_string(),
        out: out.to_string(),
    };
    let schema = out_schema(&op, &[rel]);
    ColumnarRelation::with_columns(schema, vec![Column::ints(vec![count as i64])])
}

fn enumerate(rel: &ColumnarRelation, out: &str) -> EngineResult<ColumnarRelation> {
    let op = Operator::Enumerate {
        out: out.to_string(),
    };
    let schema = out_schema(&op, &[rel]);
    let mut cols: Vec<Column> = rel.columns().to_vec();
    cols.push(Column::ints((0..rel.num_rows() as i64).collect()));
    ColumnarRelation::with_columns(schema, cols)
}

fn select_by_index(
    data: &ColumnarRelation,
    indexes: &ColumnarRelation,
    index_column: &str,
) -> EngineResult<ColumnarRelation> {
    let idx_col = col_idx(indexes, index_column)?;
    let mut gather_idx = Vec::with_capacity(indexes.num_rows());
    for i in 0..indexes.num_rows() {
        let v = indexes.value(i, idx_col);
        let raw = v
            .as_int()
            .ok_or_else(|| EngineError::Eval("non-integer index".to_string()))?;
        let j =
            usize::try_from(raw).map_err(|_| EngineError::Eval("negative index".to_string()))?;
        if j >= data.num_rows() {
            return Err(EngineError::Eval(format!("index {j} out of bounds")));
        }
        gather_idx.push(j);
    }
    Ok(data.gather(&gather_idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use conclave_ir::ops::JoinKind;
    use conclave_ir::schema::{ColumnDef, Schema};
    use conclave_ir::types::DataType;

    /// Runs `op` on both engines and asserts cell-for-cell equality.
    fn assert_engines_agree(op: &Operator, inputs: &[&Relation]) {
        let row = execute(op, inputs);
        let vec = execute_vectorized(op, inputs);
        match (row, vec) {
            (Ok(r), Ok(v)) => {
                assert_eq!(r.schema.names(), v.schema.names(), "{op}: schema mismatch");
                assert_eq!(r.rows, v.rows, "{op}: row mismatch");
            }
            (Err(_), Err(_)) => {}
            (r, v) => panic!("{op}: engines disagree on success: row={r:?} vec={v:?}"),
        }
    }

    fn sales() -> Relation {
        Relation::from_ints(
            &["companyID", "price"],
            &[vec![1, 10], vec![2, 5], vec![1, 20], vec![3, 7], vec![2, 5]],
        )
    }

    fn null_heavy() -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("v", DataType::Int),
        ]);
        Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Null],
                vec![Value::Null, Value::Int(5)],
                vec![Value::Int(1), Value::Int(3)],
                vec![Value::Null, Value::Null],
            ],
        )
        .unwrap()
    }

    fn unary_ops() -> Vec<Operator> {
        vec![
            Operator::Project {
                columns: vec!["price".into(), "companyID".into()],
            },
            Operator::Filter {
                predicate: Expr::col("price").gt(Expr::lit(6)),
            },
            Operator::Aggregate {
                group_by: vec!["companyID".into()],
                func: AggFunc::Sum,
                over: Some("price".into()),
                out: "rev".into(),
            },
            Operator::Aggregate {
                group_by: vec![],
                func: AggFunc::Min,
                over: Some("price".into()),
                out: "m".into(),
            },
            Operator::Aggregate {
                group_by: vec!["companyID".into()],
                func: AggFunc::Count,
                over: None,
                out: "n".into(),
            },
            Operator::Multiply {
                out: "sq".into(),
                operands: vec![Operand::col("price"), Operand::col("price")],
            },
            Operator::Divide {
                out: "half".into(),
                num: Operand::col("price"),
                den: Operand::lit(2),
            },
            Operator::SortBy {
                column: "price".into(),
                ascending: false,
            },
            Operator::Limit { n: 3 },
            Operator::Distinct {
                columns: vec!["companyID".into()],
            },
            Operator::DistinctCount {
                column: "price".into(),
                out: "n".into(),
            },
            Operator::Shuffle,
            Operator::Enumerate { out: "idx".into() },
        ]
    }

    #[test]
    fn unary_operators_match_row_engine() {
        let rel = sales();
        for op in unary_ops() {
            assert_engines_agree(&op, &[&rel]);
        }
    }

    #[test]
    fn unary_operators_match_row_engine_on_empty_input() {
        let rel = Relation::from_ints(&["companyID", "price"], &[]);
        for op in unary_ops() {
            assert_engines_agree(&op, &[&rel]);
        }
    }

    #[test]
    fn unary_operators_match_row_engine_on_single_row() {
        let rel = Relation::from_ints(&["companyID", "price"], &[vec![4, 9]]);
        for op in unary_ops() {
            assert_engines_agree(&op, &[&rel]);
        }
    }

    #[test]
    fn unary_operators_match_row_engine_on_null_heavy_input() {
        let rel = null_heavy();
        for op in [
            Operator::Filter {
                predicate: Expr::col("v").gt(Expr::lit(2)),
            },
            Operator::Aggregate {
                group_by: vec!["k".into()],
                func: AggFunc::Sum,
                over: Some("v".into()),
                out: "s".into(),
            },
            Operator::Aggregate {
                group_by: vec!["k".into()],
                func: AggFunc::Min,
                over: Some("v".into()),
                out: "m".into(),
            },
            Operator::Aggregate {
                group_by: vec![],
                func: AggFunc::Sum,
                over: Some("v".into()),
                out: "s".into(),
            },
            Operator::Multiply {
                out: "x".into(),
                operands: vec![Operand::col("v"), Operand::lit(2)],
            },
            Operator::Divide {
                out: "d".into(),
                num: Operand::col("v"),
                den: Operand::col("k"),
            },
            Operator::SortBy {
                column: "v".into(),
                ascending: true,
            },
            Operator::Distinct {
                columns: vec!["k".into()],
            },
            Operator::DistinctCount {
                column: "k".into(),
                out: "n".into(),
            },
        ] {
            assert_engines_agree(&op, &[&rel]);
        }
    }

    #[test]
    fn join_matches_row_engine_including_duplicate_keys() {
        let left = Relation::from_ints(
            &["k", "a"],
            &[vec![1, 1], vec![1, 2], vec![1, 3], vec![2, 4]],
        );
        let right = Relation::from_ints(&["k", "b"], &[vec![1, 10], vec![1, 20], vec![3, 30]]);
        let op = Operator::Join {
            left_keys: vec!["k".into()],
            right_keys: vec!["k".into()],
            kind: JoinKind::Inner,
        };
        assert_engines_agree(&op, &[&left, &right]);
        // All-duplicate keys: full cross product of the key group.
        let dup = Relation::from_ints(&["k", "x"], &[vec![7, 1], vec![7, 2], vec![7, 3]]);
        assert_engines_agree(&op, &[&dup, &dup]);
        // Empty sides.
        let empty = Relation::from_ints(&["k", "x"], &[]);
        assert_engines_agree(&op, &[&empty, &dup]);
        assert_engines_agree(&op, &[&dup, &empty]);
        // Null keys compare equal to each other under the total order (they
        // do match) and route both engines through the generic `Value` path.
        assert_engines_agree(&op, &[&null_heavy(), &null_heavy()]);
    }

    #[test]
    fn nary_and_binary_operators_match_row_engine() {
        let a = sales();
        let mut b = sales();
        b.sort_by_column("price", true).unwrap();
        assert_engines_agree(&Operator::Concat, &[&a, &b]);
        assert_engines_agree(
            &Operator::Merge {
                column: "price".into(),
                ascending: true,
            },
            &[&b, &b],
        );
        let indexes = Relation::from_ints(&["i"], &[vec![4], vec![0], vec![2]]);
        assert_engines_agree(
            &Operator::ObliviousSelect {
                index_column: "i".into(),
            },
            &[&a, &indexes],
        );
        // Error cases agree too.
        let bad = Relation::from_ints(&["i"], &[vec![99]]);
        assert_engines_agree(
            &Operator::ObliviousSelect {
                index_column: "i".into(),
            },
            &[&a, &bad],
        );
        let neg = Relation::from_ints(&["i"], &[vec![-2]]);
        assert_engines_agree(
            &Operator::ObliviousSelect {
                index_column: "i".into(),
            },
            &[&a, &neg],
        );
    }

    #[test]
    fn passthrough_and_unsupported_match_row_engine() {
        use conclave_ir::party::PartySet;
        let rel = sales();
        for op in [
            Operator::CloseTo,
            Operator::Open {
                recipients: PartySet::singleton(1),
            },
            Operator::Collect {
                recipients: PartySet::singleton(1),
            },
            Operator::RevealTo {
                party: 1,
                columns: Some(vec!["price".into()]),
            },
            Operator::RevealTo {
                party: 1,
                columns: None,
            },
        ] {
            assert_engines_agree(&op, &[&rel]);
        }
        assert!(matches!(
            execute_vectorized(
                &Operator::HybridJoin {
                    left_keys: vec!["companyID".into()],
                    right_keys: vec!["companyID".into()],
                    stp: 1
                },
                &[&rel, &rel]
            ),
            Err(EngineError::Unsupported(_))
        ));
        assert!(execute_vectorized(
            &Operator::Input {
                name: "t".into(),
                party: 1
            },
            &[]
        )
        .is_err());
        assert!(execute_vectorized(&Operator::Concat, &[]).is_err());
        assert!(execute_vectorized(&Operator::Limit { n: 1 }, &[&rel, &rel]).is_err());
        assert!(execute_vectorized(
            &Operator::Merge {
                column: "k".into(),
                ascending: true
            },
            &[]
        )
        .is_err());
    }

    #[test]
    fn float_and_string_data_match_row_engine() {
        let schema = Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("score", DataType::Float),
        ]);
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Str("b".into()), Value::Float(2.5)],
                vec![Value::Str("a".into()), Value::Float(-1.0)],
                vec![Value::Str("b".into()), Value::Float(0.0)],
            ],
        )
        .unwrap();
        for op in [
            Operator::Filter {
                predicate: Expr::col("score").ge(Expr::lit(0.0)),
            },
            Operator::SortBy {
                column: "name".into(),
                ascending: true,
            },
            Operator::Aggregate {
                group_by: vec!["name".into()],
                func: AggFunc::Sum,
                over: Some("score".into()),
                out: "total".into(),
            },
            Operator::Aggregate {
                group_by: vec![],
                func: AggFunc::Sum,
                over: Some("score".into()),
                out: "total".into(),
            },
            Operator::Distinct {
                columns: vec!["name".into()],
            },
        ] {
            assert_engines_agree(&op, &[&rel]);
        }
    }

    #[test]
    fn min_max_tie_breaking_matches_iterator_semantics() {
        // Int(2) and Float(2.0) compare equal under the total order but are
        // distinct cells, so `assert_eq!` on rows cannot distinguish them;
        // compare the Debug rendering to pin down variant-identical results.
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("v", DataType::Float),
        ]);
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(1), Value::Float(2.0)],
                vec![Value::Int(1), Value::Int(2)],
            ],
        )
        .unwrap();
        for (func, group_by) in [
            (AggFunc::Min, vec!["k".to_string()]),
            (AggFunc::Max, vec!["k".to_string()]),
            (AggFunc::Min, vec![]),
            (AggFunc::Max, vec![]),
        ] {
            let op = Operator::Aggregate {
                group_by,
                func,
                over: Some("v".into()),
                out: "m".into(),
            };
            let row = execute(&op, &[&rel]).unwrap();
            let vec = execute_vectorized(&op, &[&rel]).unwrap();
            assert_eq!(
                format!("{:?}", row.rows),
                format!("{:?}", vec.rows),
                "{func}: tie-breaking diverges"
            );
        }
    }

    #[test]
    fn unknown_columns_error_on_both_engines() {
        let rel = sales();
        for op in [
            Operator::Project {
                columns: vec!["zzz".into()],
            },
            Operator::SortBy {
                column: "zzz".into(),
                ascending: true,
            },
            Operator::Aggregate {
                group_by: vec!["zzz".into()],
                func: AggFunc::Count,
                over: None,
                out: "n".into(),
            },
            Operator::Aggregate {
                group_by: vec![],
                func: AggFunc::Sum,
                over: None,
                out: "n".into(),
            },
            Operator::DistinctCount {
                column: "zzz".into(),
                out: "n".into(),
            },
        ] {
            assert_engines_agree(&op, &[&rel]);
        }
    }
}
