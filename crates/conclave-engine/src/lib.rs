//! Cleartext relational execution engines.
//!
//! This is the reproduction's equivalent of the paper's "sequential Python"
//! backend (§4.1): each party can run any cleartext sub-DAG of the compiled
//! query locally over its own data. Two interchangeable engines are provided:
//!
//! * the **row engine** ([`exec::execute`]) evaluates operators one row at a
//!   time over [`relation::Relation`] (`Vec<Vec<Value>>` storage), and
//! * the **vectorized engine** ([`vexec::execute_columnar`]) evaluates them
//!   one column at a time over [`columnar::ColumnarRelation`] (typed column
//!   vectors with null masks), which is markedly faster on large inputs.
//!
//! The two are semantically identical — the workspace's differential test
//! suite (`tests/engine_differential.rs`) holds them to cell-for-cell
//! equality — and callers select between them with [`EngineMode`]. Simulated
//! wall-clock costs come from [`cost::SequentialCostModel`], so end-to-end
//! experiment harnesses can reproduce the paper's runtime comparisons
//! without a cluster.
//!
//! Plan-level execution moves data through the unified [`table::Table`]
//! value, which holds either (or both) representations and converts lazily
//! with a one-shot cache, and dispatches operators through the
//! [`executor::Executor`] trait ([`RowExecutor`], [`ColumnarExecutor`], and
//! `conclave-parallel`'s engine), so a driven query pays row↔columnar
//! conversion only at genuine domain boundaries instead of at every
//! operator edge.

// Also enforced workspace-wide via [workspace.lints]; stated here so the
// guarantee is visible at the crate root.
#![forbid(unsafe_code)]

pub mod columnar;
pub mod cost;
pub mod csvio;
pub mod error;
pub mod exec;
pub mod executor;
pub mod relation;
pub mod table;
pub mod vexec;

pub use columnar::{Column, ColumnData, ColumnarRelation};
pub use cost::SequentialCostModel;
pub use error::{EngineError, EngineResult};
pub use exec::execute;
pub use executor::{sequential_executor, ColumnarExecutor, Executor, RowExecutor};
pub use relation::Relation;
pub use table::{ConversionCounts, Table};
pub use vexec::{execute_columnar, execute_vectorized};

/// Which cleartext execution strategy an engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Row-at-a-time execution over `Vec<Vec<Value>>` rows.
    #[default]
    Row,
    /// Vectorized execution over typed columns.
    Columnar,
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineMode::Row => f.write_str("row"),
            EngineMode::Columnar => f.write_str("columnar"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_mode_defaults_to_row() {
        assert_eq!(EngineMode::default(), EngineMode::Row);
        assert_eq!(EngineMode::Row.to_string(), "row");
        assert_eq!(EngineMode::Columnar.to_string(), "columnar");
    }
}
