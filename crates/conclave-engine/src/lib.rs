//! Sequential cleartext relational execution engine.
//!
//! This is the reproduction's equivalent of the paper's "sequential Python"
//! backend (§4.1): each party can run any cleartext sub-DAG of the compiled
//! query locally over its own data. The engine executes operators over
//! in-memory [`relation::Relation`]s and reports a simulated wall-clock cost
//! via [`cost::SequentialCostModel`], so that end-to-end experiment harnesses
//! can reproduce the paper's runtime comparisons without a cluster.

pub mod cost;
pub mod csvio;
pub mod exec;
pub mod relation;

pub use cost::SequentialCostModel;
pub use exec::{execute, EngineError, EngineResult};
pub use relation::Relation;
