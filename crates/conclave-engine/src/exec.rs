//! Cleartext execution of relational operators.
//!
//! [`execute`] evaluates one operator over materialized input relations. It
//! implements every operator that can run in the clear, including the
//! "physical" operators the compiler inserts (enumerate, select-by-index,
//! reveal, open). Hybrid operators are *protocols*, not single-site
//! operators, so they are rejected here and executed by the driver in
//! `conclave-core` (which combines MPC steps with cleartext steps from this
//! module).

use crate::relation::Relation;
use conclave_ir::expr::Expr;
use conclave_ir::ops::{AggFunc, Operand, Operator};
use conclave_ir::schema::Schema;
use conclave_ir::types::Value;
use std::collections::HashMap;

pub use crate::error::{EngineError, EngineResult};

fn need(op: &Operator, inputs: &[&Relation], n: usize) -> EngineResult<()> {
    if inputs.len() == n {
        Ok(())
    } else {
        Err(EngineError::Arity {
            op: op.name().to_string(),
            expected: n.to_string(),
            got: inputs.len(),
        })
    }
}

fn col_idx(rel: &Relation, name: &str) -> EngineResult<usize> {
    rel.col_index(name)
        .ok_or_else(|| EngineError::UnknownColumn(name.to_string()))
}

/// Executes one operator over its inputs, producing the output relation.
pub fn execute(op: &Operator, inputs: &[&Relation]) -> EngineResult<Relation> {
    match op {
        Operator::Input { name, .. } => Err(EngineError::Unsupported(format!(
            "input({name}) must be bound to stored data by the driver"
        ))),
        Operator::Concat => {
            if inputs.is_empty() {
                return Err(EngineError::Arity {
                    op: "concat".into(),
                    expected: ">=1".into(),
                    got: 0,
                });
            }
            let parts: Vec<Relation> = inputs.iter().map(|r| (*r).clone()).collect();
            Relation::concat(&parts)
        }
        Operator::Project { columns } => {
            need(op, inputs, 1)?;
            project(inputs[0], columns)
        }
        Operator::Filter { predicate } => {
            need(op, inputs, 1)?;
            filter(inputs[0], predicate)
        }
        Operator::Join {
            left_keys,
            right_keys,
            ..
        } => {
            need(op, inputs, 2)?;
            join(inputs[0], inputs[1], left_keys, right_keys)
        }
        Operator::Aggregate {
            group_by,
            func,
            over,
            out,
        } => {
            need(op, inputs, 1)?;
            aggregate(inputs[0], group_by, *func, over.as_deref(), out)
        }
        Operator::Multiply { out, operands } => {
            need(op, inputs, 1)?;
            multiply(inputs[0], out, operands)
        }
        Operator::Divide { out, num, den } => {
            need(op, inputs, 1)?;
            divide(inputs[0], out, num, den)
        }
        Operator::SortBy { column, ascending } => {
            need(op, inputs, 1)?;
            let mut rel = inputs[0].clone();
            rel.sort_by_column(column, *ascending)?;
            Ok(rel)
        }
        Operator::Limit { n } => {
            need(op, inputs, 1)?;
            let mut rel = inputs[0].clone();
            rel.rows.truncate(*n);
            Ok(rel)
        }
        Operator::Distinct { columns } => {
            need(op, inputs, 1)?;
            distinct(inputs[0], columns)
        }
        Operator::DistinctCount { column, out } => {
            need(op, inputs, 1)?;
            distinct_count(inputs[0], column, out)
        }
        Operator::Collect { .. } | Operator::Open { .. } | Operator::CloseTo => {
            need(op, inputs, 1)?;
            Ok(inputs[0].clone())
        }
        Operator::RevealTo { columns, .. } => {
            need(op, inputs, 1)?;
            match columns {
                Some(cols) => project(inputs[0], cols),
                None => Ok(inputs[0].clone()),
            }
        }
        Operator::Shuffle => {
            need(op, inputs, 1)?;
            // In cleartext the shuffle permutes deterministically by reversing
            // blocks; the *oblivious* shuffle lives in `conclave-mpc`. Any
            // permutation preserves multiset semantics.
            let mut rel = inputs[0].clone();
            rel.rows.reverse();
            Ok(rel)
        }
        Operator::Enumerate { out } => {
            need(op, inputs, 1)?;
            enumerate(inputs[0], out)
        }
        Operator::ObliviousSelect { index_column } => {
            need(op, inputs, 2)?;
            select_by_index(inputs[0], inputs[1], index_column)
        }
        Operator::Merge { column, ascending } => {
            if inputs.is_empty() {
                return Err(EngineError::Arity {
                    op: "merge".into(),
                    expected: ">=1".into(),
                    got: 0,
                });
            }
            merge_sorted(inputs, column, *ascending)
        }
        Operator::HybridJoin { .. }
        | Operator::PublicJoin { .. }
        | Operator::HybridAggregate { .. } => Err(EngineError::Unsupported(op.name().to_string())),
    }
}

fn out_schema(op: &Operator, inputs: &[&Relation]) -> Schema {
    let schemas: Vec<Schema> = inputs.iter().map(|r| r.schema.clone()).collect();
    op.output_schema(&schemas)
        .unwrap_or_else(|_| inputs[0].schema.clone())
}

fn project(rel: &Relation, columns: &[String]) -> EngineResult<Relation> {
    let idxs: Vec<usize> = columns
        .iter()
        .map(|c| col_idx(rel, c))
        .collect::<EngineResult<_>>()?;
    let op = Operator::Project {
        columns: columns.to_vec(),
    };
    let schema = out_schema(&op, &[rel]);
    let rows = rel
        .rows
        .iter()
        .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
        .collect();
    Ok(Relation { schema, rows })
}

fn filter(rel: &Relation, predicate: &Expr) -> EngineResult<Relation> {
    let mut rows = Vec::new();
    for row in &rel.rows {
        let v = predicate
            .eval(&rel.schema, row)
            .map_err(|e| EngineError::Eval(e.to_string()))?;
        if v.as_bool().unwrap_or(false) {
            rows.push(row.clone());
        }
    }
    Ok(Relation {
        schema: rel.schema.clone(),
        rows,
    })
}

/// Hash equi-join (inner).
fn join(
    left: &Relation,
    right: &Relation,
    left_keys: &[String],
    right_keys: &[String],
) -> EngineResult<Relation> {
    let lk: Vec<usize> = left_keys
        .iter()
        .map(|c| col_idx(left, c))
        .collect::<EngineResult<_>>()?;
    let rk: Vec<usize> = right_keys
        .iter()
        .map(|c| col_idx(right, c))
        .collect::<EngineResult<_>>()?;
    let op = Operator::Join {
        left_keys: left_keys.to_vec(),
        right_keys: right_keys.to_vec(),
        kind: conclave_ir::ops::JoinKind::Inner,
    };
    let schema = out_schema(&op, &[left, right]);

    // Build hash table on the right side.
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (i, row) in right.rows.iter().enumerate() {
        let key: Vec<Value> = rk.iter().map(|&c| row[c].clone()).collect();
        table.entry(key).or_default().push(i);
    }
    let right_keep: Vec<usize> = (0..right.num_cols()).filter(|i| !rk.contains(i)).collect();

    let mut rows = Vec::new();
    for lrow in &left.rows {
        let key: Vec<Value> = lk.iter().map(|&c| lrow[c].clone()).collect();
        if let Some(matches) = table.get(&key) {
            for &ri in matches {
                let mut out = lrow.clone();
                for &c in &right_keep {
                    out.push(right.rows[ri][c].clone());
                }
                rows.push(out);
            }
        }
    }
    Ok(Relation { schema, rows })
}

fn aggregate(
    rel: &Relation,
    group_by: &[String],
    func: AggFunc,
    over: Option<&str>,
    out: &str,
) -> EngineResult<Relation> {
    let key_cols: Vec<usize> = group_by
        .iter()
        .map(|c| col_idx(rel, c))
        .collect::<EngineResult<_>>()?;
    let over_col = match over {
        Some(o) => Some(col_idx(rel, o)?),
        None => {
            if func.needs_over() {
                return Err(EngineError::Eval(format!("{func} requires an over column")));
            }
            None
        }
    };
    let op = Operator::Aggregate {
        group_by: group_by.to_vec(),
        func,
        over: over.map(|s| s.to_string()),
        out: out.to_string(),
    };
    let schema = out_schema(&op, &[rel]);

    let groups = if key_cols.is_empty() {
        vec![(Vec::new(), (0..rel.num_rows()).collect::<Vec<_>>())]
    } else {
        rel.group_indices(&key_cols)
    };

    let mut rows = Vec::new();
    for (key, idxs) in groups {
        let agg_value = match func {
            AggFunc::Count => Value::Int(idxs.len() as i64),
            AggFunc::Sum => {
                let c = over_col.expect("checked above");
                let mut acc = Value::Int(0);
                for &i in &idxs {
                    acc = acc.add(&rel.rows[i][c]);
                }
                acc
            }
            AggFunc::Min => {
                let c = over_col.expect("checked above");
                idxs.iter()
                    .map(|&i| rel.rows[i][c].clone())
                    .min()
                    .unwrap_or(Value::Null)
            }
            AggFunc::Max => {
                let c = over_col.expect("checked above");
                idxs.iter()
                    .map(|&i| rel.rows[i][c].clone())
                    .max()
                    .unwrap_or(Value::Null)
            }
        };
        let mut row = key;
        row.push(agg_value);
        rows.push(row);
    }
    // A scalar aggregate over an empty relation still yields one row (the
    // additive identity), matching SQL's SUM semantics under COALESCE and the
    // behaviour the downstream HHI computation expects.
    if rows.is_empty() && key_cols.is_empty() {
        rows.push(vec![match func {
            AggFunc::Count => Value::Int(0),
            AggFunc::Sum => Value::Int(0),
            _ => Value::Null,
        }]);
    }
    Ok(Relation { schema, rows })
}

fn operand_value(rel: &Relation, row: &[Value], operand: &Operand) -> EngineResult<Value> {
    match operand {
        Operand::Col(c) => {
            let idx = col_idx(rel, c)?;
            Ok(row[idx].clone())
        }
        Operand::Lit(v) => Ok(v.clone()),
    }
}

fn multiply(rel: &Relation, out: &str, operands: &[Operand]) -> EngineResult<Relation> {
    let op = Operator::Multiply {
        out: out.to_string(),
        operands: operands.to_vec(),
    };
    let schema = out_schema(&op, &[rel]);
    let replace_idx = rel.col_index(out);
    let mut rows = Vec::with_capacity(rel.num_rows());
    for row in &rel.rows {
        let mut acc = Value::Int(1);
        for o in operands {
            acc = acc.mul(&operand_value(rel, row, o)?);
        }
        let mut new_row = row.clone();
        match replace_idx {
            Some(i) => new_row[i] = acc,
            None => new_row.push(acc),
        }
        rows.push(new_row);
    }
    Ok(Relation { schema, rows })
}

fn divide(rel: &Relation, out: &str, num: &Operand, den: &Operand) -> EngineResult<Relation> {
    let op = Operator::Divide {
        out: out.to_string(),
        num: num.clone(),
        den: den.clone(),
    };
    let schema = out_schema(&op, &[rel]);
    let replace_idx = rel.col_index(out);
    let mut rows = Vec::with_capacity(rel.num_rows());
    for row in &rel.rows {
        let n = operand_value(rel, row, num)?;
        let d = operand_value(rel, row, den)?;
        let v = n.div(&d);
        let mut new_row = row.clone();
        match replace_idx {
            Some(i) => new_row[i] = v,
            None => new_row.push(v),
        }
        rows.push(new_row);
    }
    Ok(Relation { schema, rows })
}

fn distinct(rel: &Relation, columns: &[String]) -> EngineResult<Relation> {
    let proj = project(rel, columns)?;
    let mut seen = std::collections::HashSet::new();
    let mut rows = Vec::new();
    for row in proj.rows {
        if seen.insert(row.clone()) {
            rows.push(row);
        }
    }
    Ok(Relation {
        schema: proj.schema,
        rows,
    })
}

fn distinct_count(rel: &Relation, column: &str, out: &str) -> EngineResult<Relation> {
    let idx = col_idx(rel, column)?;
    let mut seen = std::collections::HashSet::new();
    for row in &rel.rows {
        seen.insert(row[idx].clone());
    }
    let op = Operator::DistinctCount {
        column: column.to_string(),
        out: out.to_string(),
    };
    let schema = out_schema(&op, &[rel]);
    Ok(Relation {
        schema,
        rows: vec![vec![Value::Int(seen.len() as i64)]],
    })
}

fn enumerate(rel: &Relation, out: &str) -> EngineResult<Relation> {
    let op = Operator::Enumerate {
        out: out.to_string(),
    };
    let schema = out_schema(&op, &[rel]);
    let rows = rel
        .rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut row = r.clone();
            row.push(Value::Int(i as i64));
            row
        })
        .collect();
    Ok(Relation { schema, rows })
}

fn select_by_index(
    data: &Relation,
    indexes: &Relation,
    index_column: &str,
) -> EngineResult<Relation> {
    let idx_col = col_idx(indexes, index_column)?;
    let mut rows = Vec::with_capacity(indexes.num_rows());
    for row in &indexes.rows {
        let i = row[idx_col]
            .as_int()
            .ok_or_else(|| EngineError::Eval("non-integer index".to_string()))?;
        let i = usize::try_from(i).map_err(|_| EngineError::Eval("negative index".to_string()))?;
        let data_row = data
            .rows
            .get(i)
            .ok_or_else(|| EngineError::Eval(format!("index {i} out of bounds")))?;
        rows.push(data_row.clone());
    }
    Ok(Relation {
        schema: data.schema.clone(),
        rows,
    })
}

fn merge_sorted(inputs: &[&Relation], column: &str, ascending: bool) -> EngineResult<Relation> {
    let parts: Vec<Relation> = inputs.iter().map(|r| (*r).clone()).collect();
    let mut merged = Relation::concat(&parts)?;
    merged.sort_by_column(column, ascending)?;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::expr::Expr;
    use conclave_ir::party::PartySet;

    fn sales() -> Relation {
        Relation::from_ints(
            &["companyID", "price"],
            &[vec![1, 10], vec![2, 5], vec![1, 20], vec![3, 7], vec![2, 5]],
        )
    }

    #[test]
    fn concat_appends_rows() {
        let a = sales();
        let b = sales();
        let out = execute(&Operator::Concat, &[&a, &b]).unwrap();
        assert_eq!(out.num_rows(), 10);
        assert!(execute(&Operator::Concat, &[]).is_err());
    }

    #[test]
    fn project_selects_and_reorders() {
        let r = sales();
        let out = execute(
            &Operator::Project {
                columns: vec!["price".into(), "companyID".into()],
            },
            &[&r],
        )
        .unwrap();
        assert_eq!(out.schema.names(), vec!["price", "companyID"]);
        assert_eq!(out.rows[0], vec![Value::Int(10), Value::Int(1)]);
        assert!(execute(
            &Operator::Project {
                columns: vec!["zzz".into()]
            },
            &[&r]
        )
        .is_err());
    }

    #[test]
    fn filter_drops_rows() {
        let r = sales();
        let out = execute(
            &Operator::Filter {
                predicate: Expr::col("price").gt(Expr::lit(6)),
            },
            &[&r],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn join_matches_keys_and_drops_right_key() {
        let left =
            Relation::from_ints(&["ssn", "zip"], &[vec![1, 100], vec![2, 200], vec![3, 300]]);
        let right = Relation::from_ints(
            &["ssn", "score"],
            &[vec![2, 700], vec![3, 650], vec![3, 660], vec![9, 1]],
        );
        let out = execute(
            &Operator::Join {
                left_keys: vec!["ssn".into()],
                right_keys: vec!["ssn".into()],
                kind: conclave_ir::ops::JoinKind::Inner,
            },
            &[&left, &right],
        )
        .unwrap();
        assert_eq!(out.schema.names(), vec!["ssn", "zip", "score"]);
        assert_eq!(out.num_rows(), 3);
        let ssns: Vec<i64> = out.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ssns, vec![2, 3, 3]);
    }

    #[test]
    fn grouped_aggregates() {
        let r = sales();
        let sum = execute(
            &Operator::Aggregate {
                group_by: vec!["companyID".into()],
                func: AggFunc::Sum,
                over: Some("price".into()),
                out: "rev".into(),
            },
            &[&r],
        )
        .unwrap();
        assert_eq!(sum.num_rows(), 3);
        let rev: HashMap<i64, i64> = sum
            .rows
            .iter()
            .map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
            .collect();
        assert_eq!(rev[&1], 30);
        assert_eq!(rev[&2], 10);
        assert_eq!(rev[&3], 7);

        let count = execute(
            &Operator::Aggregate {
                group_by: vec!["companyID".into()],
                func: AggFunc::Count,
                over: None,
                out: "n".into(),
            },
            &[&r],
        )
        .unwrap();
        let n: HashMap<i64, i64> = count
            .rows
            .iter()
            .map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
            .collect();
        assert_eq!(n[&2], 2);

        let min = execute(
            &Operator::Aggregate {
                group_by: vec![],
                func: AggFunc::Min,
                over: Some("price".into()),
                out: "m".into(),
            },
            &[&r],
        )
        .unwrap();
        assert_eq!(min.scalar(), Some(&Value::Int(5)));
        let max = execute(
            &Operator::Aggregate {
                group_by: vec![],
                func: AggFunc::Max,
                over: Some("price".into()),
                out: "m".into(),
            },
            &[&r],
        )
        .unwrap();
        assert_eq!(max.scalar(), Some(&Value::Int(20)));
    }

    #[test]
    fn scalar_sum_of_empty_relation_is_zero() {
        let r = Relation::from_ints(&["v"], &[]);
        let out = execute(
            &Operator::Aggregate {
                group_by: vec![],
                func: AggFunc::Sum,
                over: Some("v".into()),
                out: "t".into(),
            },
            &[&r],
        )
        .unwrap();
        assert_eq!(out.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn multiply_and_divide_append_or_replace() {
        let r = sales();
        let sq = execute(
            &Operator::Multiply {
                out: "p2".into(),
                operands: vec![Operand::col("price"), Operand::col("price")],
            },
            &[&r],
        )
        .unwrap();
        assert_eq!(sq.rows[0][2], Value::Int(100));
        // Replacing an existing column.
        let scaled = execute(
            &Operator::Multiply {
                out: "price".into(),
                operands: vec![Operand::col("price"), Operand::lit(2)],
            },
            &[&r],
        )
        .unwrap();
        assert_eq!(scaled.rows[0][1], Value::Int(20));
        assert_eq!(scaled.num_cols(), 2);

        let div = execute(
            &Operator::Divide {
                out: "ratio".into(),
                num: Operand::col("price"),
                den: Operand::lit(4),
            },
            &[&r],
        )
        .unwrap();
        assert_eq!(div.rows[0][2], Value::Float(2.5));
    }

    #[test]
    fn sort_limit_distinct() {
        let r = sales();
        let sorted = execute(
            &Operator::SortBy {
                column: "price".into(),
                ascending: false,
            },
            &[&r],
        )
        .unwrap();
        assert_eq!(sorted.rows[0][1], Value::Int(20));
        let limited = execute(&Operator::Limit { n: 2 }, &[&sorted]).unwrap();
        assert_eq!(limited.num_rows(), 2);
        let d = execute(
            &Operator::Distinct {
                columns: vec!["companyID".into()],
            },
            &[&r],
        )
        .unwrap();
        assert_eq!(d.num_rows(), 3);
        let dc = execute(
            &Operator::DistinctCount {
                column: "price".into(),
                out: "n".into(),
            },
            &[&r],
        )
        .unwrap();
        assert_eq!(dc.scalar(), Some(&Value::Int(4)));
    }

    #[test]
    fn enumerate_and_select_round_trip() {
        let r = sales();
        let idx = execute(&Operator::Enumerate { out: "idx".into() }, &[&r]).unwrap();
        assert_eq!(idx.rows[3][2], Value::Int(3));
        let indexes = Relation::from_ints(&["idx"], &[vec![4], vec![0]]);
        let sel = execute(
            &Operator::ObliviousSelect {
                index_column: "idx".into(),
            },
            &[&r, &indexes],
        )
        .unwrap();
        assert_eq!(sel.num_rows(), 2);
        assert_eq!(sel.rows[0], r.rows[4]);
        assert_eq!(sel.rows[1], r.rows[0]);
        // Out-of-bounds and negative indexes error.
        let bad = Relation::from_ints(&["idx"], &[vec![99]]);
        assert!(execute(
            &Operator::ObliviousSelect {
                index_column: "idx".into()
            },
            &[&r, &bad]
        )
        .is_err());
        let neg = Relation::from_ints(&["idx"], &[vec![-1]]);
        assert!(execute(
            &Operator::ObliviousSelect {
                index_column: "idx".into()
            },
            &[&r, &neg]
        )
        .is_err());
    }

    #[test]
    fn merge_produces_sorted_output() {
        let mut a = Relation::from_ints(&["k"], &[vec![1], vec![5], vec![9]]);
        let b = Relation::from_ints(&["k"], &[vec![2], vec![6]]);
        a.sort_by_column("k", true).unwrap();
        let out = execute(
            &Operator::Merge {
                column: "k".into(),
                ascending: true,
            },
            &[&a, &b],
        )
        .unwrap();
        assert!(out.is_sorted_by("k", true));
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn passthrough_operators() {
        let r = sales();
        for op in [
            Operator::CloseTo,
            Operator::Open {
                recipients: PartySet::singleton(1),
            },
            Operator::Collect {
                recipients: PartySet::singleton(1),
            },
        ] {
            let out = execute(&op, &[&r]).unwrap();
            assert_eq!(out.num_rows(), r.num_rows());
        }
        let revealed = execute(
            &Operator::RevealTo {
                party: 1,
                columns: Some(vec!["companyID".into()]),
            },
            &[&r],
        )
        .unwrap();
        assert_eq!(revealed.num_cols(), 1);
        let shuffled = execute(&Operator::Shuffle, &[&r]).unwrap();
        assert!(shuffled.same_rows_unordered(&r));
    }

    #[test]
    fn unsupported_operators_are_rejected() {
        let r = sales();
        assert!(matches!(
            execute(
                &Operator::HybridJoin {
                    left_keys: vec!["companyID".into()],
                    right_keys: vec!["companyID".into()],
                    stp: 1
                },
                &[&r, &r]
            ),
            Err(EngineError::Unsupported(_))
        ));
        assert!(execute(
            &Operator::Input {
                name: "t".into(),
                party: 1
            },
            &[]
        )
        .is_err());
        // Wrong arity.
        assert!(execute(&Operator::Limit { n: 1 }, &[&r, &r]).is_err());
    }

    #[test]
    fn empty_relations_flow_through_every_unary_operator() {
        let empty = Relation::from_ints(&["companyID", "price"], &[]);
        for op in [
            Operator::Project {
                columns: vec!["price".into()],
            },
            Operator::Filter {
                predicate: Expr::col("price").gt(Expr::lit(0)),
            },
            Operator::SortBy {
                column: "price".into(),
                ascending: true,
            },
            Operator::Limit { n: 5 },
            Operator::Distinct {
                columns: vec!["companyID".into()],
            },
            Operator::Shuffle,
            Operator::Enumerate { out: "i".into() },
            Operator::Multiply {
                out: "x".into(),
                operands: vec![Operand::col("price"), Operand::lit(2)],
            },
            Operator::Divide {
                out: "d".into(),
                num: Operand::col("price"),
                den: Operand::lit(2),
            },
        ] {
            let out = execute(&op, &[&empty]).unwrap_or_else(|e| panic!("{op}: {e}"));
            assert_eq!(out.num_rows(), 0, "{op} should produce no rows");
        }
        // Grouped aggregation over an empty input yields zero groups...
        let grouped = execute(
            &Operator::Aggregate {
                group_by: vec!["companyID".into()],
                func: AggFunc::Sum,
                over: Some("price".into()),
                out: "rev".into(),
            },
            &[&empty],
        )
        .unwrap();
        assert_eq!(grouped.num_rows(), 0);
        assert_eq!(grouped.schema.names(), vec!["companyID", "rev"]);
        // ...while distinct-count still yields its single scalar row.
        let dc = execute(
            &Operator::DistinctCount {
                column: "price".into(),
                out: "n".into(),
            },
            &[&empty],
        )
        .unwrap();
        assert_eq!(dc.scalar(), Some(&Value::Int(0)));
        // Joins against an empty side are empty.
        let some = sales();
        let join = Operator::Join {
            left_keys: vec!["companyID".into()],
            right_keys: vec!["companyID".into()],
            kind: conclave_ir::ops::JoinKind::Inner,
        };
        assert_eq!(execute(&join, &[&empty, &some]).unwrap().num_rows(), 0);
        assert_eq!(execute(&join, &[&some, &empty]).unwrap().num_rows(), 0);
    }

    #[test]
    fn all_duplicate_join_keys_produce_the_full_cross_product() {
        let left = Relation::from_ints(&["k", "a"], &[vec![1, 1], vec![1, 2], vec![1, 3]]);
        let right = Relation::from_ints(&["k", "b"], &[vec![1, 10], vec![1, 20]]);
        let out = execute(
            &Operator::Join {
                left_keys: vec!["k".into()],
                right_keys: vec!["k".into()],
                kind: conclave_ir::ops::JoinKind::Inner,
            },
            &[&left, &right],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 6);
        // Left-major order, right matches in insertion order.
        assert_eq!(
            out.rows[0],
            vec![Value::Int(1), Value::Int(1), Value::Int(10)]
        );
        assert_eq!(
            out.rows[1],
            vec![Value::Int(1), Value::Int(1), Value::Int(20)]
        );
    }

    #[test]
    fn single_row_inputs_are_handled_by_every_operator() {
        let one = Relation::from_ints(&["companyID", "price"], &[vec![2, 9]]);
        let sorted = execute(
            &Operator::SortBy {
                column: "price".into(),
                ascending: false,
            },
            &[&one],
        )
        .unwrap();
        assert_eq!(sorted.rows, one.rows);
        let agg = execute(
            &Operator::Aggregate {
                group_by: vec!["companyID".into()],
                func: AggFunc::Max,
                over: Some("price".into()),
                out: "m".into(),
            },
            &[&one],
        )
        .unwrap();
        assert_eq!(agg.rows, vec![vec![Value::Int(2), Value::Int(9)]]);
        let joined = execute(
            &Operator::Join {
                left_keys: vec!["companyID".into()],
                right_keys: vec!["companyID".into()],
                kind: conclave_ir::ops::JoinKind::Inner,
            },
            &[&one, &one],
        )
        .unwrap();
        assert_eq!(joined.num_rows(), 1);
    }

    #[test]
    fn null_heavy_columns_follow_sql_like_semantics() {
        let schema = Schema::new(vec![
            conclave_ir::schema::ColumnDef::new("k", conclave_ir::types::DataType::Int),
            conclave_ir::schema::ColumnDef::new("v", conclave_ir::types::DataType::Int),
        ]);
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Null],
                vec![Value::Int(1), Value::Int(5)],
                vec![Value::Int(2), Value::Int(3)],
            ],
        )
        .unwrap();
        // A null poisons the sum of its group.
        let sum = execute(
            &Operator::Aggregate {
                group_by: vec!["k".into()],
                func: AggFunc::Sum,
                over: Some("v".into()),
                out: "s".into(),
            },
            &[&rel],
        )
        .unwrap();
        let by_key: HashMap<i64, Value> = sum
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].clone()))
            .collect();
        assert_eq!(by_key[&1], Value::Null);
        assert_eq!(by_key[&2], Value::Int(3));
        // NULL sorts below every value and never passes a comparison filter.
        let sorted = execute(
            &Operator::SortBy {
                column: "v".into(),
                ascending: true,
            },
            &[&rel],
        )
        .unwrap();
        assert!(sorted.rows[0][1].is_null());
        let filtered = execute(
            &Operator::Filter {
                predicate: Expr::col("v").gt(Expr::lit(-1000)),
            },
            &[&rel],
        )
        .unwrap();
        assert_eq!(filtered.num_rows(), 2);
        // Null join keys compare equal to each other under the total order,
        // so a null-keyed row matches its counterpart.
        let nulled_keys = Relation::new(
            Schema::ints(&["k", "v"]),
            vec![vec![Value::Null, Value::Int(1)]],
        )
        .unwrap();
        let join = Operator::Join {
            left_keys: vec!["k".into()],
            right_keys: vec!["k".into()],
            kind: conclave_ir::ops::JoinKind::Inner,
        };
        let out = execute(&join, &[&nulled_keys, &nulled_keys]).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn error_display() {
        let e = EngineError::UnknownColumn("x".into());
        assert!(e.to_string().contains('x'));
        let e = EngineError::Arity {
            op: "join".into(),
            expected: "2".into(),
            got: 1,
        };
        assert!(e.to_string().contains("join"));
        assert!(EngineError::Unsupported("h".into())
            .to_string()
            .contains('h'));
        assert!(EngineError::Eval("boom".into())
            .to_string()
            .contains("boom"));
    }
}
