//! Columnar relation storage.
//!
//! [`ColumnarRelation`] is the cache-friendly counterpart of the row-major
//! [`Relation`]: each column is stored as one typed vector ([`Column`]) with
//! an optional null mask, so the vectorized engine in [`crate::vexec`] can run
//! tight loops over primitive slices instead of chasing `Vec<Vec<Value>>`
//! pointers. Conversion to and from the row representation is lossless for
//! *any* relation — columns whose cells do not share one concrete type fall
//! back to a [`ColumnData::Mixed`] value vector — which is what lets the
//! differential test suite compare the two engines cell for cell.

use crate::error::{EngineError, EngineResult};
use crate::relation::Relation;
use conclave_ir::expr::{BatchRef, ColumnSource, ValueBatch};
use conclave_ir::schema::Schema;
use conclave_ir::types::{DataType, Value};
use std::fmt;

/// Typed storage for one column's values. Null slots in typed variants hold
/// a placeholder (`0`, `0.0`, `""`, `false`) and are marked in the owning
/// [`Column`]'s null mask.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// All non-null values are `Value::Int`.
    Int(Vec<i64>),
    /// All non-null values are `Value::Float`.
    Float(Vec<f64>),
    /// All non-null values are `Value::Str`.
    Str(Vec<String>),
    /// All non-null values are `Value::Bool`.
    Bool(Vec<bool>),
    /// Heterogeneous fallback: the cells verbatim (including nulls).
    Mixed(Vec<Value>),
}

/// One stored column: typed data plus an optional null mask.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    /// `Some(mask)` where `mask[i]` marks row `i` as NULL. Always `None` for
    /// [`ColumnData::Mixed`], which stores `Value::Null` inline.
    nulls: Option<Vec<bool>>,
}

impl Column {
    /// Builds a column from row values, inferring the tightest typed
    /// representation: if every non-null cell shares one concrete type the
    /// column is stored as a primitive vector (plus a null mask when needed),
    /// otherwise the values are kept verbatim as [`ColumnData::Mixed`].
    pub fn from_values(values: Vec<Value>) -> Column {
        let mut dtype: Option<DataType> = None;
        let mut has_nulls = false;
        for v in &values {
            match v.data_type() {
                None => has_nulls = true,
                Some(t) => match dtype {
                    None => dtype = Some(t),
                    Some(prev) if prev == t => {}
                    Some(_) => return Column::mixed(values),
                },
            }
        }
        let n = values.len();
        let nulls = if has_nulls {
            Some(values.iter().map(Value::is_null).collect::<Vec<bool>>())
        } else {
            None
        };
        let data = match dtype {
            // All-null (or empty) columns default to integer storage.
            None => ColumnData::Int(vec![0; n]),
            Some(DataType::Int) => ColumnData::Int(
                values
                    .into_iter()
                    .map(|v| if let Value::Int(x) = v { x } else { 0 })
                    .collect(),
            ),
            Some(DataType::Float) => ColumnData::Float(
                values
                    .into_iter()
                    .map(|v| if let Value::Float(x) = v { x } else { 0.0 })
                    .collect(),
            ),
            Some(DataType::Bool) => ColumnData::Bool(
                values
                    .into_iter()
                    .map(|v| matches!(v, Value::Bool(true)))
                    .collect(),
            ),
            Some(DataType::Str) => ColumnData::Str(
                values
                    .into_iter()
                    .map(|v| {
                        if let Value::Str(s) = v {
                            s
                        } else {
                            String::new()
                        }
                    })
                    .collect(),
            ),
        };
        Column { data, nulls }
    }

    /// Builds a column directly from a batch-evaluation result.
    pub fn from_batch(batch: ValueBatch) -> Column {
        match batch {
            ValueBatch::Int(v) => Column {
                data: ColumnData::Int(v),
                nulls: None,
            },
            ValueBatch::Float(v) => Column {
                data: ColumnData::Float(v),
                nulls: None,
            },
            ValueBatch::Bool(v) => Column {
                data: ColumnData::Bool(v),
                nulls: None,
            },
            other => Column::from_values(other.into_values()),
        }
    }

    /// An all-integer column without nulls.
    pub fn ints(values: Vec<i64>) -> Column {
        Column {
            data: ColumnData::Int(values),
            nulls: None,
        }
    }

    fn mixed(values: Vec<Value>) -> Column {
        Column {
            data: ColumnData::Mixed(values),
            nulls: None,
        }
    }

    /// Number of values (including nulls).
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// Returns `true` if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if any value is NULL.
    pub fn has_nulls(&self) -> bool {
        match &self.data {
            ColumnData::Mixed(v) => v.iter().any(Value::is_null),
            _ => self.nulls.as_ref().is_some_and(|m| m.iter().any(|&b| b)),
        }
    }

    /// The typed storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null mask, if one exists.
    pub fn null_mask(&self) -> Option<&[bool]> {
        self.nulls.as_deref()
    }

    /// A borrowed batch view for vectorized expression evaluation.
    pub fn batch_ref(&self) -> BatchRef<'_> {
        match &self.data {
            ColumnData::Int(v) => BatchRef::Int(v),
            ColumnData::Float(v) => BatchRef::Float(v),
            ColumnData::Str(v) => BatchRef::Str(v),
            ColumnData::Bool(v) => BatchRef::Bool(v),
            ColumnData::Mixed(v) => BatchRef::Mixed(v),
        }
    }

    /// The column as an `i64` slice, when it is a null-free integer column.
    pub fn as_ints(&self) -> Option<&[i64]> {
        match (&self.data, &self.nulls) {
            (ColumnData::Int(v), None) => Some(v),
            _ => None,
        }
    }

    /// The column as an `f64` slice, when it is a null-free float column.
    pub fn as_floats(&self) -> Option<&[f64]> {
        match (&self.data, &self.nulls) {
            (ColumnData::Float(v), None) => Some(v),
            _ => None,
        }
    }

    /// The value at row `i` (cloned).
    pub fn value(&self, i: usize) -> Value {
        if let Some(mask) = &self.nulls {
            if mask[i] {
                return Value::Null;
            }
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// All values, materialized.
    pub fn values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.value(i)).collect()
    }

    /// An owned batch of the column for expression pipelines.
    pub fn to_batch(&self) -> ValueBatch {
        match (&self.data, &self.nulls) {
            (ColumnData::Int(v), None) => ValueBatch::Int(v.clone()),
            (ColumnData::Float(v), None) => ValueBatch::Float(v.clone()),
            (ColumnData::Bool(v), None) => ValueBatch::Bool(v.clone()),
            _ => ValueBatch::Values(self.values()),
        }
    }

    /// The rows at the given indices, in index order.
    pub fn gather(&self, indices: &[usize]) -> Column {
        let nulls = self
            .nulls
            .as_ref()
            .map(|m| indices.iter().map(|&i| m[i]).collect());
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Mixed(v) => {
                ColumnData::Mixed(indices.iter().map(|&i| v[i].clone()).collect())
            }
        };
        Column { data, nulls }
    }

    /// The rows where `keep[i]` is `true`, preserving order.
    pub fn filter(&self, keep: &[bool]) -> Column {
        fn select<T: Clone>(v: &[T], keep: &[bool]) -> Vec<T> {
            v.iter()
                .zip(keep)
                .filter(|(_, &k)| k)
                .map(|(x, _)| x.clone())
                .collect()
        }
        let nulls = self.nulls.as_ref().map(|m| select(m, keep));
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(select(v, keep)),
            ColumnData::Float(v) => ColumnData::Float(select(v, keep)),
            ColumnData::Str(v) => ColumnData::Str(select(v, keep)),
            ColumnData::Bool(v) => ColumnData::Bool(select(v, keep)),
            ColumnData::Mixed(v) => ColumnData::Mixed(select(v, keep)),
        };
        Column { data, nulls }
    }

    /// The contiguous rows `start..end`.
    pub fn slice(&self, start: usize, end: usize) -> Column {
        let nulls = self.nulls.as_ref().map(|m| m[start..end].to_vec());
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(v[start..end].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[start..end].to_vec()),
            ColumnData::Str(v) => ColumnData::Str(v[start..end].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[start..end].to_vec()),
            ColumnData::Mixed(v) => ColumnData::Mixed(v[start..end].to_vec()),
        };
        Column { data, nulls }
    }

    /// Concatenates columns. Homogeneous typed parts stay typed; otherwise
    /// the result falls back to the generic representation.
    pub fn concat(parts: &[&Column]) -> Column {
        fn same_typed(parts: &[&Column]) -> bool {
            parts
                .windows(2)
                .all(|w| std::mem::discriminant(&w[0].data) == std::mem::discriminant(&w[1].data))
        }
        let Some(first) = parts.first() else {
            return Column::ints(Vec::new());
        };
        if !same_typed(parts) {
            let values = parts.iter().flat_map(|c| c.values()).collect();
            return Column::from_values(values);
        }
        let has_nulls = parts.iter().any(|c| c.nulls.is_some());
        let nulls = has_nulls.then(|| {
            parts
                .iter()
                .flat_map(|c| match &c.nulls {
                    Some(m) => m.clone(),
                    None => vec![false; c.len()],
                })
                .collect()
        });
        let data = match &first.data {
            ColumnData::Int(_) => ColumnData::Int(
                parts
                    .iter()
                    .flat_map(|c| match &c.data {
                        ColumnData::Int(v) => v.clone(),
                        _ => unreachable!("checked same variant"),
                    })
                    .collect(),
            ),
            ColumnData::Float(_) => ColumnData::Float(
                parts
                    .iter()
                    .flat_map(|c| match &c.data {
                        ColumnData::Float(v) => v.clone(),
                        _ => unreachable!("checked same variant"),
                    })
                    .collect(),
            ),
            ColumnData::Str(_) => ColumnData::Str(
                parts
                    .iter()
                    .flat_map(|c| match &c.data {
                        ColumnData::Str(v) => v.clone(),
                        _ => unreachable!("checked same variant"),
                    })
                    .collect(),
            ),
            ColumnData::Bool(_) => ColumnData::Bool(
                parts
                    .iter()
                    .flat_map(|c| match &c.data {
                        ColumnData::Bool(v) => v.clone(),
                        _ => unreachable!("checked same variant"),
                    })
                    .collect(),
            ),
            ColumnData::Mixed(_) => ColumnData::Mixed(
                parts
                    .iter()
                    .flat_map(|c| match &c.data {
                        ColumnData::Mixed(v) => v.clone(),
                        _ => unreachable!("checked same variant"),
                    })
                    .collect(),
            ),
        };
        Column { data, nulls }
    }
}

/// A materialized relation in columnar form.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarRelation {
    /// Column definitions (shared with the row representation).
    pub schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl ColumnarRelation {
    /// Creates an empty columnar relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = (0..schema.len())
            .map(|_| Column::ints(Vec::new()))
            .collect();
        ColumnarRelation {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Creates a columnar relation from parts, validating that the column
    /// count matches the schema and all columns have equal length.
    pub fn new(schema: Schema, columns: Vec<Column>) -> EngineResult<Self> {
        if columns.len() != schema.len() {
            return Err(EngineError::Eval(format!(
                "{} columns for a {}-column schema",
                columns.len(),
                schema.len()
            )));
        }
        let rows = columns.first().map_or(0, Column::len);
        if let Some(bad) = columns.iter().position(|c| c.len() != rows) {
            return Err(EngineError::Eval(format!(
                "column {bad} has {} rows, expected {rows}",
                columns[bad].len()
            )));
        }
        Ok(ColumnarRelation {
            schema,
            columns,
            rows,
        })
    }

    /// Converts a row-major relation to columnar form (lossless).
    pub fn from_rows(rel: &Relation) -> Self {
        let n = rel.num_rows();
        let columns = (0..rel.num_cols())
            .map(|c| Column::from_values(rel.rows.iter().map(|r| r[c].clone()).collect()))
            .collect();
        ColumnarRelation {
            schema: rel.schema.clone(),
            columns,
            rows: n,
        }
    }

    /// Converts back to the row-major representation (exact inverse of
    /// [`ColumnarRelation::from_rows`]).
    pub fn to_rows(&self) -> Relation {
        let rows = (0..self.rows)
            .map(|i| self.columns.iter().map(|c| c.value(i)).collect())
            .collect();
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    /// Returns `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Index of a named column.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.schema.index_of(name)
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The value at row `i`, column `c` (cloned).
    pub fn value(&self, i: usize, c: usize) -> Value {
        self.columns[c].value(i)
    }

    /// A new relation holding the rows at `indices`, in index order.
    pub fn gather(&self, indices: &[usize]) -> ColumnarRelation {
        ColumnarRelation {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// A new relation holding the rows where `keep[i]` is `true`.
    pub fn filter(&self, keep: &[bool]) -> ColumnarRelation {
        let kept = keep.iter().filter(|&&k| k).count();
        ColumnarRelation {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.filter(keep)).collect(),
            rows: kept,
        }
    }

    /// The contiguous rows `start..end` of every column.
    pub fn slice(&self, start: usize, end: usize) -> ColumnarRelation {
        ColumnarRelation {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.slice(start, end)).collect(),
            rows: end - start,
        }
    }

    /// Replaces the schema and columns wholesale (lengths must agree).
    pub fn with_columns(schema: Schema, columns: Vec<Column>) -> EngineResult<Self> {
        ColumnarRelation::new(schema, columns)
    }

    /// Splits into `n` horizontal partitions of near-equal size, slicing
    /// every column (the columnar counterpart of [`Relation::split`]).
    pub fn split(&self, n: usize) -> Vec<ColumnarRelation> {
        let n = n.max(1);
        let chunk = self.rows.div_ceil(n).max(1);
        (0..n)
            .map(|i| {
                let start = (i * chunk).min(self.rows);
                let end = ((i + 1) * chunk).min(self.rows);
                self.slice(start, end)
            })
            .collect()
    }

    /// Concatenates columnar relations with identical arity (union all).
    pub fn concat(parts: &[ColumnarRelation]) -> EngineResult<ColumnarRelation> {
        let Some(first) = parts.first() else {
            return Err(EngineError::Eval("concat of zero relations".to_string()));
        };
        if parts.iter().any(|p| p.num_cols() != first.num_cols()) {
            return Err(EngineError::Eval("concat arity mismatch".to_string()));
        }
        let columns = (0..first.num_cols())
            .map(|c| {
                let cols: Vec<&Column> = parts.iter().map(|p| &p.columns[c]).collect();
                Column::concat(&cols)
            })
            .collect();
        Ok(ColumnarRelation {
            schema: first.schema.clone(),
            columns,
            rows: parts.iter().map(|p| p.rows).sum(),
        })
    }
}

impl ColumnSource for ColumnarRelation {
    fn batch_rows(&self) -> usize {
        self.rows
    }

    fn batch(&self, col: usize) -> BatchRef<'_> {
        self.columns[col].batch_ref()
    }

    fn batch_nulls(&self, col: usize) -> Option<&[bool]> {
        self.columns[col].null_mask()
    }
}

impl fmt::Display for ColumnarRelation {
    /// Renders via the row representation (header plus up to 20 rows).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_rows().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::schema::ColumnDef;

    fn mixed_relation() -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::new("i", DataType::Int),
            ColumnDef::new("f", DataType::Float),
            ColumnDef::new("s", DataType::Str),
            ColumnDef::new("b", DataType::Bool),
            ColumnDef::new("m", DataType::Int),
        ]);
        Relation::new(
            schema,
            vec![
                vec![
                    Value::Int(1),
                    Value::Float(1.5),
                    Value::Str("x".into()),
                    Value::Bool(true),
                    Value::Int(7),
                ],
                vec![
                    Value::Int(2),
                    Value::Null,
                    Value::Null,
                    Value::Bool(false),
                    Value::Float(2.5), // heterogeneous cell: forces Mixed storage
                ],
                vec![
                    Value::Null,
                    Value::Float(-0.0),
                    Value::Str("".into()),
                    Value::Null,
                    Value::Null,
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_is_lossless_for_mixed_and_null_data() {
        let rel = mixed_relation();
        let col = ColumnarRelation::from_rows(&rel);
        assert_eq!(col.num_rows(), 3);
        assert_eq!(col.num_cols(), 5);
        assert_eq!(col.to_rows(), rel);
        // The heterogeneous column fell back to Mixed storage.
        assert!(matches!(col.column(4).data(), ColumnData::Mixed(_)));
        // The homogeneous int column stayed typed despite the null.
        assert!(matches!(col.column(0).data(), ColumnData::Int(_)));
        assert!(col.column(0).has_nulls());
        assert!(col.column(4).has_nulls());
        assert!(
            !ColumnarRelation::from_rows(&Relation::from_ints(&["a"], &[vec![1]]))
                .column(0)
                .has_nulls()
        );
    }

    #[test]
    fn typed_accessors() {
        let rel = Relation::from_ints(&["k", "v"], &[vec![1, 10], vec![2, 20]]);
        let col = ColumnarRelation::from_rows(&rel);
        assert_eq!(col.column(0).as_ints(), Some(&[1i64, 2][..]));
        assert_eq!(col.column(0).as_floats(), None);
        assert_eq!(col.value(1, 1), Value::Int(20));
        assert_eq!(col.col_index("v"), Some(1));
        assert!(!col.is_empty());
        let floats = Column::from_values(vec![Value::Float(1.0), Value::Float(2.0)]);
        assert_eq!(floats.as_floats(), Some(&[1.0f64, 2.0][..]));
        // Nulled typed column loses the fast-path slice.
        let nulled = Column::from_values(vec![Value::Int(1), Value::Null]);
        assert_eq!(nulled.as_ints(), None);
        assert_eq!(nulled.value(1), Value::Null);
    }

    #[test]
    fn gather_filter_slice_concat() {
        let rel = mixed_relation();
        let col = ColumnarRelation::from_rows(&rel);
        let gathered = col.gather(&[2, 0]);
        assert_eq!(gathered.to_rows().rows[0], rel.rows[2]);
        assert_eq!(gathered.to_rows().rows[1], rel.rows[0]);
        let filtered = col.filter(&[true, false, true]);
        assert_eq!(filtered.num_rows(), 2);
        assert_eq!(filtered.to_rows().rows[1], rel.rows[2]);
        let sliced = col.slice(1, 3);
        assert_eq!(sliced.num_rows(), 2);
        assert_eq!(sliced.to_rows().rows[0], rel.rows[1]);
        let cat = ColumnarRelation::concat(&[col.clone(), col.clone()]).unwrap();
        assert_eq!(cat.num_rows(), 6);
        assert_eq!(cat.to_rows().rows[3], rel.rows[0]);
        assert!(ColumnarRelation::concat(&[]).is_err());
        let other = ColumnarRelation::empty(Schema::ints(&["a"]));
        assert!(ColumnarRelation::concat(&[col, other]).is_err());
    }

    #[test]
    fn concat_of_heterogeneous_parts_falls_back_to_mixed() {
        let ints = Column::ints(vec![1, 2]);
        let floats = Column::from_values(vec![Value::Float(0.5)]);
        let cat = Column::concat(&[&ints, &floats]);
        assert_eq!(cat.len(), 3);
        assert!(matches!(cat.data(), ColumnData::Mixed(_)));
        assert_eq!(cat.value(2), Value::Float(0.5));
        assert!(Column::concat(&[]).is_empty());
    }

    #[test]
    fn split_mirrors_row_split() {
        let rel = Relation::from_ints(&["a"], &(0..10).map(|i| vec![i]).collect::<Vec<_>>());
        let col = ColumnarRelation::from_rows(&rel);
        let row_parts = rel.split(3);
        let col_parts = col.split(3);
        assert_eq!(row_parts.len(), col_parts.len());
        for (r, c) in row_parts.iter().zip(&col_parts) {
            assert_eq!(c.to_rows(), *r);
        }
        assert_eq!(col.split(0).len(), 1);
    }

    #[test]
    fn construction_validation() {
        let schema = Schema::ints(&["a", "b"]);
        assert!(ColumnarRelation::new(schema.clone(), vec![Column::ints(vec![1])]).is_err());
        assert!(ColumnarRelation::new(
            schema.clone(),
            vec![Column::ints(vec![1]), Column::ints(vec![1, 2])]
        )
        .is_err());
        let ok = ColumnarRelation::with_columns(
            schema,
            vec![Column::ints(vec![1]), Column::ints(vec![2])],
        )
        .unwrap();
        assert_eq!(ok.num_rows(), 1);
        assert_eq!(ok.columns().len(), 2);
    }

    #[test]
    fn batch_source_and_display() {
        let rel = mixed_relation();
        let col = ColumnarRelation::from_rows(&rel);
        assert_eq!(col.batch_rows(), 3);
        assert!(matches!(col.batch(0), BatchRef::Int(_)));
        assert!(col.batch_nulls(0).is_some());
        assert!(col.batch_nulls(3).is_some());
        assert!(col.to_string().contains('x'));
        // to_batch round trips.
        assert_eq!(
            Column::ints(vec![1, 2]).to_batch(),
            ValueBatch::Int(vec![1, 2])
        );
        assert_eq!(
            Column::from_batch(ValueBatch::Float(vec![1.0])).as_floats(),
            Some(&[1.0f64][..])
        );
        let from_mixed = Column::from_batch(ValueBatch::Values(vec![
            Value::Int(1),
            Value::Str("s".into()),
        ]));
        assert!(matches!(from_mixed.data(), ColumnData::Mixed(_)));
    }
}
