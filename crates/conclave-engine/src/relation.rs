//! In-memory relations: a schema plus a vector of rows.

use crate::error::{EngineError, EngineResult};
use conclave_ir::schema::Schema;
use conclave_ir::types::Value;
use std::collections::HashMap;
use std::fmt;

/// A materialized relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Column definitions.
    pub schema: Schema,
    /// Row-major data; every row has `schema.len()` values.
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Creates a relation from a schema and rows. Rows with the wrong arity
    /// are rejected with a typed [`EngineError::RowArity`].
    pub fn new(schema: Schema, rows: Vec<Vec<Value>>) -> EngineResult<Self> {
        let width = schema.len();
        if let Some(bad) = rows.iter().position(|r| r.len() != width) {
            return Err(EngineError::RowArity {
                row: bad,
                got: rows[bad].len(),
                expected: width,
            });
        }
        Ok(Relation { schema, rows })
    }

    /// Builds an all-integer relation from `i64` rows — the common case in
    /// tests and synthetic workloads.
    pub fn from_ints(names: &[&str], rows: &[Vec<i64>]) -> Self {
        let schema = Schema::ints(names);
        let rows = rows
            .iter()
            .map(|r| r.iter().map(|v| Value::Int(*v)).collect())
            .collect();
        Relation { schema, rows }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.schema.len()
    }

    /// Returns `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a named column.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.schema.index_of(name)
    }

    /// All values of a named column, cloned.
    pub fn column_values(&self, name: &str) -> Option<Vec<Value>> {
        let idx = self.col_index(name)?;
        Some(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// The single value of a 1×1 relation, if it is one.
    pub fn scalar(&self) -> Option<&Value> {
        if self.num_rows() == 1 && self.num_cols() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Approximate in-memory / on-wire size in bytes.
    pub fn byte_size(&self) -> usize {
        self.num_rows() * self.schema.row_byte_size()
    }

    /// Sorts rows in place by the named column.
    pub fn sort_by_column(&mut self, name: &str, ascending: bool) -> EngineResult<()> {
        let idx = self
            .col_index(name)
            .ok_or_else(|| EngineError::UnknownColumn(name.to_string()))?;
        self.rows.sort_by(|a, b| a[idx].cmp(&b[idx]));
        if !ascending {
            self.rows.reverse();
        }
        Ok(())
    }

    /// Returns `true` if rows are sorted by the named column.
    pub fn is_sorted_by(&self, name: &str, ascending: bool) -> bool {
        let Some(idx) = self.col_index(name) else {
            return false;
        };
        self.rows.windows(2).all(|w| {
            let ord = w[0][idx].cmp(&w[1][idx]);
            if ascending {
                ord != std::cmp::Ordering::Greater
            } else {
                ord != std::cmp::Ordering::Less
            }
        })
    }

    /// Groups row indices by the values of the given key columns, preserving
    /// first-seen key order.
    pub fn group_indices(&self, key_cols: &[usize]) -> Vec<(Vec<Value>, Vec<usize>)> {
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut map: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            let key: Vec<Value> = key_cols.iter().map(|&c| row[c].clone()).collect();
            if !map.contains_key(&key) {
                order.push(key.clone());
            }
            map.entry(key).or_default().push(i);
        }
        order
            .into_iter()
            .map(|k| {
                let idxs = map.remove(&k).expect("key recorded");
                (k, idxs)
            })
            .collect()
    }

    /// Splits the relation into `n` horizontal partitions of near-equal size
    /// (round-robin by block), preserving row order within partitions.
    pub fn split(&self, n: usize) -> Vec<Relation> {
        let n = n.max(1);
        let chunk = self.num_rows().div_ceil(n).max(1);
        let mut parts = Vec::with_capacity(n);
        for i in 0..n {
            let start = (i * chunk).min(self.num_rows());
            let end = ((i + 1) * chunk).min(self.num_rows());
            parts.push(Relation {
                schema: self.schema.clone(),
                rows: self.rows[start..end].to_vec(),
            });
        }
        parts
    }

    /// Concatenates relations with identical arity into one (union all).
    pub fn concat(parts: &[Relation]) -> EngineResult<Relation> {
        let Some(first) = parts.first() else {
            return Err(EngineError::Eval("concat of zero relations".to_string()));
        };
        let mut rows = Vec::new();
        for p in parts {
            if p.num_cols() != first.num_cols() {
                return Err(EngineError::Eval("concat arity mismatch".to_string()));
            }
            rows.extend(p.rows.iter().cloned());
        }
        Ok(Relation {
            schema: first.schema.clone(),
            rows,
        })
    }

    /// Compares contents ignoring row order (used by tests that check MPC and
    /// cleartext plans produce the same result).
    pub fn same_rows_unordered(&self, other: &Relation) -> bool {
        if self.num_rows() != other.num_rows() || self.num_cols() != other.num_cols() {
            return false;
        }
        let mut a = self.rows.clone();
        let mut b = other.rows.clone();
        a.sort();
        b.sort();
        a == b
    }
}

impl fmt::Display for Relation {
    /// Prints a header row followed by up to 20 data rows.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema.names().join("\t"))?;
        for row in self.rows.iter().take(20) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join("\t"))?;
        }
        if self.num_rows() > 20 {
            writeln!(f, "... ({} rows total)", self.num_rows())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::schema::{ColumnDef, Schema};
    use conclave_ir::types::DataType;

    #[test]
    fn construction_and_shape() {
        let r = Relation::from_ints(&["k", "v"], &[vec![1, 10], vec![2, 20]]);
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.num_cols(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.col_index("v"), Some(1));
        assert_eq!(
            r.column_values("v").unwrap(),
            vec![Value::Int(10), Value::Int(20)]
        );
        assert!(r.column_values("zzz").is_none());
        assert_eq!(r.byte_size(), 2 * 16);
    }

    #[test]
    fn new_rejects_bad_arity_with_typed_error() {
        let schema = Schema::ints(&["a", "b"]);
        assert!(matches!(
            Relation::new(schema.clone(), vec![vec![Value::Int(1)]]),
            Err(EngineError::RowArity {
                row: 0,
                got: 1,
                expected: 2
            })
        ));
        assert!(Relation::new(schema, vec![vec![Value::Int(1), Value::Int(2)]]).is_ok());
    }

    #[test]
    fn scalar_detection() {
        let r = Relation::from_ints(&["x"], &[vec![42]]);
        assert_eq!(r.scalar(), Some(&Value::Int(42)));
        let r2 = Relation::from_ints(&["x"], &[vec![1], vec![2]]);
        assert!(r2.scalar().is_none());
    }

    #[test]
    fn sorting_and_sortedness() {
        let mut r = Relation::from_ints(&["k"], &[vec![3], vec![1], vec![2]]);
        assert!(!r.is_sorted_by("k", true));
        r.sort_by_column("k", true).unwrap();
        assert!(r.is_sorted_by("k", true));
        r.sort_by_column("k", false).unwrap();
        assert!(r.is_sorted_by("k", false));
        assert!(r.sort_by_column("zzz", true).is_err());
        assert!(!r.is_sorted_by("zzz", true));
    }

    #[test]
    fn grouping_preserves_first_seen_order() {
        let r = Relation::from_ints(&["k", "v"], &[vec![2, 1], vec![1, 2], vec![2, 3]]);
        let groups = r.group_indices(&[0]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, vec![Value::Int(2)]);
        assert_eq!(groups[0].1, vec![0, 2]);
        assert_eq!(groups[1].1, vec![1]);
    }

    #[test]
    fn split_and_concat_round_trip() {
        let r = Relation::from_ints(&["a"], &(0..10).map(|i| vec![i]).collect::<Vec<_>>());
        let parts = r.split(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.num_rows()).sum::<usize>(), 10);
        let back = Relation::concat(&parts).unwrap();
        assert!(back.same_rows_unordered(&r));
        // Degenerate splits.
        assert_eq!(r.split(0).len(), 1);
        let tiny = Relation::from_ints(&["a"], &[vec![1]]);
        assert_eq!(tiny.split(4).iter().map(|p| p.num_rows()).sum::<usize>(), 1);
    }

    #[test]
    fn concat_errors() {
        assert!(Relation::concat(&[]).is_err());
        let a = Relation::from_ints(&["a"], &[vec![1]]);
        let b = Relation::from_ints(&["a", "b"], &[vec![1, 2]]);
        assert!(Relation::concat(&[a, b]).is_err());
    }

    #[test]
    fn unordered_equality() {
        let a = Relation::from_ints(&["a"], &[vec![1], vec![2]]);
        let b = Relation::from_ints(&["a"], &[vec![2], vec![1]]);
        let c = Relation::from_ints(&["a"], &[vec![2], vec![3]]);
        assert!(a.same_rows_unordered(&b));
        assert!(!a.same_rows_unordered(&c));
        let d = Relation::from_ints(&["a"], &[vec![1]]);
        assert!(!a.same_rows_unordered(&d));
    }

    #[test]
    fn display_truncates() {
        let r = Relation::from_ints(&["a"], &(0..25).map(|i| vec![i]).collect::<Vec<_>>());
        let s = r.to_string();
        assert!(s.contains("rows total"));
        let mixed = Relation::new(
            Schema::new(vec![ColumnDef::new("s", DataType::Str)]),
            vec![vec![Value::Str("hi".into())]],
        )
        .unwrap();
        assert!(mixed.to_string().contains("hi"));
    }
}
