//! The [`Executor`] trait: one operator-at-a-time execution over [`Table`]s.
//!
//! An executor evaluates a single relational operator over [`Table`] inputs
//! and produces a [`Table`] output *in its native representation*: the row
//! engine returns row-backed tables, the vectorized engine returns
//! column-backed tables, and the data-parallel engine in `conclave-parallel`
//! returns whichever its configured mode produces. Because tables convert
//! lazily and cache the result, chaining same-representation executors incurs
//! zero conversions — the property the driver's conversion counter asserts.
//!
//! Executors also estimate the *simulated* wall-clock time of a step, so the
//! driver can charge cluster-like costs regardless of the host machine.

use crate::cost::SequentialCostModel;
use crate::error::{EngineError, EngineResult};
use crate::relation::Relation;
use crate::table::Table;
use crate::{exec, vexec, EngineMode};
use conclave_ir::ops::Operator;
use std::time::Duration;

/// Executes single relational operators over the unified [`Table`] data
/// plane. Implemented by the sequential row engine ([`RowExecutor`]), the
/// vectorized columnar engine ([`ColumnarExecutor`]) and `conclave-parallel`'s
/// `ParallelEngine`.
pub trait Executor {
    /// Evaluates one operator over the inputs, producing the output table in
    /// this executor's native representation.
    fn execute(&self, op: &Operator, inputs: &[&Table]) -> Result<Table, EngineError>;

    /// Simulated wall-clock time of the step, from cardinalities. `row_bytes`
    /// is the (maximum) serialized row width of the inputs, which cluster
    /// cost models use to price shuffles.
    fn estimate(
        &self,
        op: &Operator,
        input_rows: u64,
        output_rows: u64,
        row_bytes: u64,
    ) -> Duration;

    /// [`Executor::estimate`] with the cardinality/row-width preamble derived
    /// from the input tables themselves — the one place that heuristic lives.
    fn estimate_tables(&self, op: &Operator, inputs: &[&Table], output_rows: u64) -> Duration {
        let input_rows: u64 = inputs.iter().map(|t| t.num_rows() as u64).sum();
        let row_bytes = inputs
            .iter()
            .map(|t| t.schema().row_byte_size() as u64)
            .max()
            .unwrap_or(16);
        self.estimate(op, input_rows, output_rows, row_bytes)
    }

    /// Short human-readable name for reports and logs.
    fn name(&self) -> &'static str;
}

/// The sequential row-at-a-time executor (the paper's "sequential Python"
/// stand-in): operators evaluate over `Vec<Vec<Value>>` rows.
#[derive(Debug, Clone, Default)]
pub struct RowExecutor {
    cost: SequentialCostModel,
}

impl RowExecutor {
    /// Creates a row executor with the default sequential cost model.
    pub fn new() -> Self {
        RowExecutor::default()
    }
}

impl Executor for RowExecutor {
    fn execute(&self, op: &Operator, inputs: &[&Table]) -> EngineResult<Table> {
        let rows: Vec<&Relation> = inputs.iter().map(|t| t.as_rows()).collect();
        exec::execute(op, &rows).map(Table::from_rows)
    }

    fn estimate(
        &self,
        op: &Operator,
        input_rows: u64,
        output_rows: u64,
        _row_bytes: u64,
    ) -> Duration {
        self.cost.estimate(op, input_rows, output_rows)
    }

    fn name(&self) -> &'static str {
        "sequential-row"
    }
}

/// The sequential vectorized executor: operators evaluate one typed column
/// at a time and results stay columnar.
#[derive(Debug, Clone, Default)]
pub struct ColumnarExecutor {
    cost: SequentialCostModel,
}

impl ColumnarExecutor {
    /// Creates a columnar executor with the default sequential cost model.
    pub fn new() -> Self {
        ColumnarExecutor::default()
    }
}

impl Executor for ColumnarExecutor {
    fn execute(&self, op: &Operator, inputs: &[&Table]) -> EngineResult<Table> {
        let cols: Vec<&crate::columnar::ColumnarRelation> =
            inputs.iter().map(|t| t.as_columns()).collect();
        vexec::execute_columnar(op, &cols).map(Table::from_columns)
    }

    fn estimate(
        &self,
        op: &Operator,
        input_rows: u64,
        output_rows: u64,
        _row_bytes: u64,
    ) -> Duration {
        self.cost.estimate(op, input_rows, output_rows)
    }

    fn name(&self) -> &'static str {
        "sequential-columnar"
    }
}

/// The sequential executor matching an [`EngineMode`].
pub fn sequential_executor(mode: EngineMode) -> Box<dyn Executor + Send + Sync> {
    match mode {
        EngineMode::Row => Box::new(RowExecutor::new()),
        EngineMode::Columnar => Box::new(ColumnarExecutor::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::expr::Expr;
    use conclave_ir::ops::AggFunc;

    fn table() -> Table {
        Table::from_rows(Relation::from_ints(
            &["k", "v"],
            &[vec![1, 10], vec![2, 0], vec![1, 5]],
        ))
    }

    fn ops() -> Vec<Operator> {
        vec![
            Operator::Filter {
                predicate: Expr::col("v").gt(Expr::lit(0)),
            },
            Operator::Aggregate {
                group_by: vec!["k".into()],
                func: AggFunc::Sum,
                over: Some("v".into()),
                out: "s".into(),
            },
            Operator::Project {
                columns: vec!["v".into()],
            },
        ]
    }

    #[test]
    fn row_and_columnar_executors_agree_and_keep_native_layout() {
        let t = table();
        let row_exec = RowExecutor::new();
        let col_exec = ColumnarExecutor::new();
        for op in ops() {
            let r = row_exec.execute(&op, &[&t]).unwrap();
            let c = col_exec.execute(&op, &[&t]).unwrap();
            assert!(r.has_rows() && !r.has_columns(), "{op}: row-native output");
            assert!(
                c.has_columns() && !c.has_rows(),
                "{op}: columnar-native output"
            );
            assert!(
                r.as_rows().same_rows_unordered(c.as_rows()),
                "{op}: engines disagree"
            );
        }
    }

    #[test]
    fn chained_columnar_execution_converts_only_at_the_input() {
        let t = table();
        let exec = ColumnarExecutor::new();
        let filtered = exec.execute(&ops()[0], &[&t]).unwrap();
        let aggregated = exec.execute(&ops()[1], &[&filtered]).unwrap();
        // The input table converted once; intermediates never did.
        assert_eq!(t.conversion_counts().row_to_columnar, 1);
        assert_eq!(filtered.conversion_counts().total(), 0);
        assert_eq!(aggregated.conversion_counts().total(), 0);
    }

    #[test]
    fn estimates_and_names() {
        let row_exec = sequential_executor(EngineMode::Row);
        let col_exec = sequential_executor(EngineMode::Columnar);
        assert_eq!(row_exec.name(), "sequential-row");
        assert_eq!(col_exec.name(), "sequential-columnar");
        let op = &ops()[1];
        assert!(row_exec.estimate(op, 10_000, 50, 16) > Duration::ZERO);
        assert_eq!(
            row_exec.estimate(op, 10_000, 50, 16),
            col_exec.estimate(op, 10_000, 50, 16)
        );
    }

    #[test]
    fn errors_surface_through_the_trait() {
        let t = table();
        let exec = RowExecutor::new();
        let bad = Operator::Project {
            columns: vec!["zzz".into()],
        };
        assert!(matches!(
            exec.execute(&bad, &[&t]),
            Err(EngineError::UnknownColumn(_))
        ));
    }
}
