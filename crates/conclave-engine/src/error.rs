//! Typed errors shared by the cleartext engines (row and columnar), the
//! relation constructors and the CSV I/O layer.

use std::fmt;

/// Errors produced by the cleartext engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Wrong number of inputs for the operator.
    Arity {
        /// Operator name.
        op: String,
        /// Expected input count description.
        expected: String,
        /// Actual input count.
        got: usize,
    },
    /// A row does not match the arity of its schema.
    RowArity {
        /// Index of the offending row.
        row: usize,
        /// Number of values the row holds.
        got: usize,
        /// Number of columns the schema defines.
        expected: usize,
    },
    /// Referenced column does not exist.
    UnknownColumn(String),
    /// The operator cannot run in a single-site cleartext engine.
    Unsupported(String),
    /// Expression evaluation failed.
    Eval(String),
    /// CSV text could not be parsed.
    Csv {
        /// 1-based line number in the CSV input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A file could not be read.
    Io(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Arity { op, expected, got } => {
                write!(f, "operator {op} expects {expected} inputs, got {got}")
            }
            EngineError::RowArity { row, got, expected } => {
                write!(
                    f,
                    "row {row} has {got} values, schema has {expected} columns"
                )
            }
            EngineError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            EngineError::Unsupported(op) => write!(f, "operator {op} is not a cleartext operator"),
            EngineError::Eval(e) => write!(f, "expression evaluation failed: {e}"),
            EngineError::Csv { line, message } => write!(f, "CSV line {line}: {message}"),
            EngineError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let e = EngineError::RowArity {
            row: 3,
            got: 1,
            expected: 2,
        };
        assert_eq!(e.to_string(), "row 3 has 1 values, schema has 2 columns");
        assert!(EngineError::Csv {
            line: 4,
            message: "bad cell".into()
        }
        .to_string()
        .contains("line 4"));
        assert!(EngineError::Io("missing".into())
            .to_string()
            .contains("missing"));
    }
}
