//! The unified execution data plane: [`Table`].
//!
//! Plan nodes exchange [`Table`] values instead of committing to one storage
//! layout. A `Table` holds a relation in row-major form ([`Relation`]),
//! columnar form ([`ColumnarRelation`]), or both: [`Table::as_rows`] and
//! [`Table::as_columns`] materialize the missing representation *lazily* and
//! cache it, so a table converted once is never converted again — and a
//! driven query pays row↔columnar conversion only where data genuinely
//! changes domain (input binding, MPC reveals, result collection), not at
//! every operator boundary.
//!
//! Cloning a `Table` is cheap (the representations live behind an `Arc`) and
//! clones share the conversion cache: converting any clone converts them all.
//! Each table also counts the conversions it performed
//! ([`Table::conversion_counts`]), which the driver aggregates into
//! `RunReport` so tests can assert that columnar-mode plans stay columnar
//! end to end.

use crate::columnar::ColumnarRelation;
use crate::relation::Relation;
use conclave_ir::schema::Schema;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Conversion work a [`Table`] (or a whole run) performed, by direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConversionCounts {
    /// Number of row→columnar materializations.
    pub row_to_columnar: u64,
    /// Number of columnar→row materializations.
    pub columnar_to_row: u64,
}

impl ConversionCounts {
    /// Total conversions in either direction.
    pub fn total(&self) -> u64 {
        self.row_to_columnar + self.columnar_to_row
    }

    /// Adds another count pair.
    pub fn merge(&mut self, other: &ConversionCounts) {
        self.row_to_columnar += other.row_to_columnar;
        self.columnar_to_row += other.columnar_to_row;
    }

    /// Element-wise saturating difference (`self - earlier`), used to turn
    /// absolute per-table counters into per-run deltas.
    pub fn since(&self, earlier: &ConversionCounts) -> ConversionCounts {
        ConversionCounts {
            row_to_columnar: self.row_to_columnar.saturating_sub(earlier.row_to_columnar),
            columnar_to_row: self.columnar_to_row.saturating_sub(earlier.columnar_to_row),
        }
    }
}

/// Shared state of a table: at least one representation is always populated.
struct TableInner {
    rows: OnceLock<Relation>,
    columns: OnceLock<ColumnarRelation>,
    row_to_columnar: AtomicU64,
    columnar_to_row: AtomicU64,
}

/// A materialized relation in whichever representation(s) the query has
/// needed so far. See the [module docs](self) for the caching contract.
#[derive(Clone)]
pub struct Table {
    inner: Arc<TableInner>,
}

impl Table {
    /// Wraps a row-major relation. The columnar form is materialized lazily
    /// on the first [`Table::as_columns`] call.
    pub fn from_rows(rel: Relation) -> Table {
        let inner = TableInner {
            rows: OnceLock::from(rel),
            columns: OnceLock::new(),
            row_to_columnar: AtomicU64::new(0),
            columnar_to_row: AtomicU64::new(0),
        };
        Table {
            inner: Arc::new(inner),
        }
    }

    /// Wraps a columnar relation. The row form is materialized lazily on the
    /// first [`Table::as_rows`] call.
    pub fn from_columns(rel: ColumnarRelation) -> Table {
        let inner = TableInner {
            rows: OnceLock::new(),
            columns: OnceLock::from(rel),
            row_to_columnar: AtomicU64::new(0),
            columnar_to_row: AtomicU64::new(0),
        };
        Table {
            inner: Arc::new(inner),
        }
    }

    /// The row-major representation, converting (and caching the conversion)
    /// if only the columnar form is materialized. Repeated calls return the
    /// same allocation.
    pub fn as_rows(&self) -> &Relation {
        self.inner.rows.get_or_init(|| {
            let cols = self
                .inner
                .columns
                .get()
                .expect("a table always holds at least one representation");
            self.inner.columnar_to_row.fetch_add(1, Ordering::Relaxed);
            cols.to_rows()
        })
    }

    /// The columnar representation, converting (and caching the conversion)
    /// if only the row form is materialized. Repeated calls return the same
    /// allocation.
    pub fn as_columns(&self) -> &ColumnarRelation {
        self.inner.columns.get_or_init(|| {
            let rows = self
                .inner
                .rows
                .get()
                .expect("a table always holds at least one representation");
            self.inner.row_to_columnar.fetch_add(1, Ordering::Relaxed);
            ColumnarRelation::from_rows(rows)
        })
    }

    /// Extracts an owned row relation (avoiding a clone when this table is
    /// the sole owner and the row form is already materialized).
    pub fn into_rows(self) -> Relation {
        self.as_rows();
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner.rows.into_inner().expect("materialized above"),
            Err(shared) => shared.rows.get().expect("materialized above").clone(),
        }
    }

    /// Returns `true` if the row representation is already materialized.
    pub fn has_rows(&self) -> bool {
        self.inner.rows.get().is_some()
    }

    /// Returns `true` if the columnar representation is already materialized.
    pub fn has_columns(&self) -> bool {
        self.inner.columns.get().is_some()
    }

    /// The schema shared by both representations.
    pub fn schema(&self) -> &Schema {
        match self.inner.rows.get() {
            Some(r) => &r.schema,
            None => {
                &self
                    .inner
                    .columns
                    .get()
                    .expect("a table always holds at least one representation")
                    .schema
            }
        }
    }

    /// Column names in schema order.
    pub fn column_names(&self) -> Vec<&str> {
        self.schema().names()
    }

    /// Number of rows (without forcing a conversion).
    pub fn num_rows(&self) -> usize {
        match self.inner.rows.get() {
            Some(r) => r.num_rows(),
            None => self
                .inner
                .columns
                .get()
                .expect("a table always holds at least one representation")
                .num_rows(),
        }
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.schema().len()
    }

    /// Returns `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Returns `true` if the named column is sorted in the given direction.
    /// Uses whichever representation is materialized (preferring rows, whose
    /// comparison is the semantic reference) without forcing a conversion.
    pub fn is_sorted_by(&self, column: &str, ascending: bool) -> bool {
        if let Some(rows) = self.inner.rows.get() {
            return rows.is_sorted_by(column, ascending);
        }
        // Only the columnar form exists; compare via materialized cell values
        // without building the whole row relation.
        let cols = self
            .inner
            .columns
            .get()
            .expect("a table always holds at least one representation");
        let Some(idx) = cols.col_index(column) else {
            return false;
        };
        let col = cols.column(idx);
        (1..col.len()).all(|i| {
            let prev = col.value(i - 1);
            let cur = col.value(i);
            if ascending {
                prev <= cur
            } else {
                prev >= cur
            }
        })
    }

    /// The values of a named column, materialized, read from whichever
    /// representation already exists (no conversion is forced).
    pub fn column_values(&self, name: &str) -> Option<Vec<conclave_ir::types::Value>> {
        if let Some(cols) = self.inner.columns.get() {
            let idx = cols.col_index(name)?;
            return Some(cols.column(idx).values());
        }
        let rows = self
            .inner
            .rows
            .get()
            .expect("a table always holds at least one representation");
        let idx = rows.col_index(name)?;
        Some(rows.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// How many conversions this table (and every clone sharing its cache)
    /// has performed so far.
    pub fn conversion_counts(&self) -> ConversionCounts {
        ConversionCounts {
            row_to_columnar: self.inner.row_to_columnar.load(Ordering::Relaxed),
            columnar_to_row: self.inner.columnar_to_row.load(Ordering::Relaxed),
        }
    }

    /// Returns `true` if `self` and `other` share the same cache (i.e. they
    /// are clones of one table).
    pub fn shares_cache_with(&self, other: &Table) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl From<Relation> for Table {
    fn from(rel: Relation) -> Table {
        Table::from_rows(rel)
    }
}

impl From<ColumnarRelation> for Table {
    fn from(rel: ColumnarRelation) -> Table {
        Table::from_columns(rel)
    }
}

impl PartialEq for Table {
    /// Tables compare by row-level contents (forcing materialization of the
    /// row form on both sides if needed).
    fn eq(&self, other: &Table) -> bool {
        self.as_rows() == other.as_rows()
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Table")
            .field("rows", &self.num_rows())
            .field("cols", &self.num_cols())
            .field("has_rows", &self.has_rows())
            .field("has_columns", &self.has_columns())
            .finish()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_rows().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::types::Value;

    fn demo() -> Relation {
        Relation::from_ints(&["k", "v"], &[vec![1, 10], vec![2, 20], vec![3, 30]])
    }

    #[test]
    fn lazy_conversion_is_cached_and_counted() {
        let t = Table::from_rows(demo());
        assert!(t.has_rows() && !t.has_columns());
        assert_eq!(t.conversion_counts(), ConversionCounts::default());
        let c1: *const ColumnarRelation = t.as_columns();
        assert!(t.has_columns());
        let c2: *const ColumnarRelation = t.as_columns();
        assert_eq!(c1, c2, "repeated access returns the cached allocation");
        assert_eq!(t.conversion_counts().row_to_columnar, 1);
        assert_eq!(t.conversion_counts().columnar_to_row, 0);
        // The pre-existing row form never counts as a conversion.
        let r1: *const Relation = t.as_rows();
        let r2: *const Relation = t.as_rows();
        assert_eq!(r1, r2);
        assert_eq!(t.conversion_counts().total(), 1);
    }

    #[test]
    fn clones_share_the_cache() {
        let t = Table::from_columns(ColumnarRelation::from_rows(&demo()));
        let u = t.clone();
        assert!(t.shares_cache_with(&u));
        let p1: *const Relation = u.as_rows();
        let p2: *const Relation = t.as_rows();
        assert_eq!(p1, p2, "a clone's conversion serves the original");
        assert_eq!(t.conversion_counts().columnar_to_row, 1);
        assert_eq!(u.conversion_counts().columnar_to_row, 1);
        let fresh = Table::from_rows(demo());
        assert!(!fresh.shares_cache_with(&t));
    }

    #[test]
    fn metadata_accessors_do_not_convert() {
        let rows = Table::from_rows(demo());
        assert_eq!(rows.num_rows(), 3);
        assert_eq!(rows.num_cols(), 2);
        assert_eq!(rows.column_names(), vec!["k", "v"]);
        assert_eq!(rows.schema().names(), vec!["k", "v"]);
        assert!(!rows.is_empty());
        assert!(rows.is_sorted_by("k", true));
        assert!(!rows.is_sorted_by("k", false));
        assert_eq!(rows.conversion_counts().total(), 0);

        let cols = Table::from_columns(ColumnarRelation::from_rows(&demo()));
        assert_eq!(cols.num_rows(), 3);
        assert_eq!(cols.column_names(), vec!["k", "v"]);
        assert!(cols.is_sorted_by("v", true));
        assert!(!cols.is_sorted_by("missing", true));
        assert!(!cols.is_sorted_by("v", false));
        let tens: Vec<Value> = vec![Value::Int(10), Value::Int(20), Value::Int(30)];
        assert_eq!(rows.column_values("v").unwrap(), tens);
        assert_eq!(cols.column_values("v").unwrap(), tens);
        assert!(cols.column_values("missing").is_none());
        assert!(rows.column_values("missing").is_none());
        assert_eq!(cols.conversion_counts().total(), 0);
    }

    #[test]
    fn into_rows_and_equality() {
        let t = Table::from_columns(ColumnarRelation::from_rows(&demo()));
        let u: Table = demo().into();
        assert_eq!(t, u);
        assert_eq!(t.clone().into_rows(), demo());
        // Sole-owner extraction hands back the cached relation.
        let sole = Table::from_rows(demo());
        assert_eq!(sole.into_rows(), demo());
        let via_columns: Table = ColumnarRelation::from_rows(&demo()).into();
        assert_eq!(via_columns.into_rows(), demo());
    }

    #[test]
    fn display_and_debug_render() {
        let t = Table::from_rows(Relation::from_ints(&["x"], &[vec![42]]));
        assert!(t.to_string().contains("42"));
        let dbg = format!("{t:?}");
        assert!(dbg.contains("Table") && dbg.contains("has_rows"));
    }

    #[test]
    fn conversion_counts_arithmetic() {
        let mut a = ConversionCounts {
            row_to_columnar: 2,
            columnar_to_row: 1,
        };
        let b = ConversionCounts {
            row_to_columnar: 1,
            columnar_to_row: 0,
        };
        assert_eq!(a.since(&b).row_to_columnar, 1);
        assert_eq!(b.since(&a).row_to_columnar, 0, "saturates at zero");
        a.merge(&b);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn empty_and_null_tables_round_trip() {
        let empty = Table::from_rows(Relation::from_ints(&["a"], &[]));
        assert!(empty.is_empty());
        assert_eq!(empty.as_columns().num_rows(), 0);
        let nulled = Table::from_rows(
            Relation::new(
                Schema::ints(&["a"]),
                vec![vec![Value::Null], vec![Value::Int(1)]],
            )
            .unwrap(),
        );
        assert_eq!(nulled.as_columns().to_rows(), *nulled.as_rows());
    }
}
