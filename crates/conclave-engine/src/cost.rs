//! Cost model for the sequential cleartext backend.
//!
//! The paper's experiments compare end-to-end runtimes of backends that we
//! cannot run here (multi-VM Spark clusters, Sharemind deployments). Every
//! engine crate therefore exposes a *cost model* that converts operator
//! cardinalities into simulated wall-clock time. The models are calibrated
//! against datapoints reported in the paper (§2.3 and §7) so that the
//! reproduced figures preserve the original shapes and crossovers.
//!
//! The sequential model corresponds to the prototype's fallback "sequential
//! Python" backend: roughly interpreter-speed row-at-a-time processing with
//! no job-startup overhead.

use conclave_ir::ops::Operator;
use std::time::Duration;

/// Cost model for single-threaded, interpreted cleartext execution.
#[derive(Debug, Clone)]
pub struct SequentialCostModel {
    /// Seconds of CPU time per row per simple operator (project, filter,
    /// arithmetic). Interpreted Python processes roughly 200k–500k rows/s per
    /// operator; we use 2.5 µs/row.
    pub per_row_simple: f64,
    /// Seconds per row for hash-based operators (join build/probe, group-by).
    pub per_row_hash: f64,
    /// Seconds per row for sorts (per comparison ~ log n factored in by the
    /// caller through `rows * log2(rows)`).
    pub per_row_sort: f64,
    /// Fixed per-operator startup overhead in seconds (process dispatch,
    /// file handling).
    pub op_overhead: f64,
}

impl Default for SequentialCostModel {
    fn default() -> Self {
        SequentialCostModel {
            per_row_simple: 2.5e-6,
            per_row_hash: 6.0e-6,
            per_row_sort: 1.0e-6,
            op_overhead: 0.05,
        }
    }
}

impl SequentialCostModel {
    /// Estimates the runtime of `op` given total input rows and output rows.
    pub fn estimate(&self, op: &Operator, input_rows: u64, output_rows: u64) -> Duration {
        let n = input_rows as f64;
        let m = output_rows as f64;
        let secs = match op {
            Operator::Project { .. }
            | Operator::Filter { .. }
            | Operator::Multiply { .. }
            | Operator::Divide { .. }
            | Operator::Concat
            | Operator::Limit { .. }
            | Operator::Enumerate { .. }
            | Operator::Shuffle
            | Operator::RevealTo { .. }
            | Operator::CloseTo
            | Operator::Open { .. }
            | Operator::Collect { .. }
            | Operator::ObliviousSelect { .. } => n * self.per_row_simple,
            Operator::Join { .. } | Operator::PublicJoin { .. } | Operator::HybridJoin { .. } => {
                (n + m) * self.per_row_hash
            }
            Operator::Aggregate { .. }
            | Operator::HybridAggregate { .. }
            | Operator::Distinct { .. }
            | Operator::DistinctCount { .. } => n * self.per_row_hash,
            Operator::SortBy { .. } | Operator::Merge { .. } => {
                n * self.per_row_sort * (n.max(2.0)).log2()
            }
            Operator::Input { .. } => 0.0,
        };
        Duration::from_secs_f64(secs + self.op_overhead)
    }

    /// Estimates the runtime of an entire local pipeline expressed as a list
    /// of `(operator, input_rows, output_rows)` steps.
    pub fn estimate_pipeline(&self, steps: &[(Operator, u64, u64)]) -> Duration {
        steps
            .iter()
            .map(|(op, i, o)| self.estimate(op, *i, *o))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::expr::Expr;
    use conclave_ir::ops::AggFunc;

    fn model() -> SequentialCostModel {
        SequentialCostModel::default()
    }

    #[test]
    fn simple_ops_scale_linearly() {
        let m = model();
        let op = Operator::Project {
            columns: vec!["a".into()],
        };
        let t1 = m.estimate(&op, 100_000, 100_000);
        let t2 = m.estimate(&op, 1_000_000, 1_000_000);
        assert!(t2 > t1);
        // Linear in rows (minus fixed overhead).
        let d1 = t1.as_secs_f64() - m.op_overhead;
        let d2 = t2.as_secs_f64() - m.op_overhead;
        assert!((d2 / d1 - 10.0).abs() < 0.5);
    }

    #[test]
    fn joins_cost_more_than_projections() {
        let m = model();
        let p = m.estimate(
            &Operator::Project {
                columns: vec!["a".into()],
            },
            1_000_000,
            1_000_000,
        );
        let j = m.estimate(
            &Operator::Join {
                left_keys: vec!["a".into()],
                right_keys: vec!["a".into()],
                kind: conclave_ir::ops::JoinKind::Inner,
            },
            1_000_000,
            1_000_000,
        );
        assert!(j > p);
    }

    #[test]
    fn sorts_are_superlinear() {
        let m = model();
        let op = Operator::SortBy {
            column: "a".into(),
            ascending: true,
        };
        let t1 = m.estimate(&op, 1 << 20, 1 << 20).as_secs_f64() - m.op_overhead;
        let t2 = m.estimate(&op, 1 << 21, 1 << 21).as_secs_f64() - m.op_overhead;
        assert!(t2 / t1 > 2.0);
    }

    #[test]
    fn python_scale_anchor() {
        // Interpreted processing of 10 M rows through a filter should take on
        // the order of tens of seconds (not milliseconds, not hours).
        let m = model();
        let t = m.estimate(
            &Operator::Filter {
                predicate: Expr::col("a").gt(Expr::lit(0)),
            },
            10_000_000,
            10_000_000,
        );
        assert!(t.as_secs_f64() > 5.0 && t.as_secs_f64() < 300.0);
    }

    #[test]
    fn pipeline_sums_steps() {
        let m = model();
        let steps = vec![
            (
                Operator::Filter {
                    predicate: Expr::col("a").gt(Expr::lit(0)),
                },
                1000,
                900,
            ),
            (
                Operator::Aggregate {
                    group_by: vec!["a".into()],
                    func: AggFunc::Sum,
                    over: Some("b".into()),
                    out: "s".into(),
                },
                900,
                10,
            ),
        ];
        let total = m.estimate_pipeline(&steps);
        let sum: Duration = steps.iter().map(|(op, i, o)| m.estimate(op, *i, *o)).sum();
        assert_eq!(total, sum);
    }

    #[test]
    fn input_costs_only_overhead() {
        let m = model();
        let t = m.estimate(
            &Operator::Input {
                name: "t".into(),
                party: 1,
            },
            1_000_000,
            1_000_000,
        );
        assert!((t.as_secs_f64() - m.op_overhead).abs() < 1e-9);
    }
}
