//! Parallel execution of relational operators.
//!
//! [`ParallelEngine`] executes one operator at a time, the way a Spark job
//! stage would: narrow transformations run independently on every partition
//! (on real threads), wide transformations hash-shuffle their inputs by key
//! first so each partition can be reduced locally. The returned simulated
//! duration comes from the [`crate::cost::ClusterCostModel`], so experiment
//! harnesses see cluster-like timing regardless of the host machine.

use crate::cluster::ClusterSpec;
use crate::cost::ClusterCostModel;
use crate::partition::{ColumnarPartitionedRelation, PartitionedRelation};
use conclave_engine::{
    execute, execute_columnar, ColumnarRelation, EngineError, EngineMode, EngineResult, Executor,
    Relation, Table,
};
use conclave_ir::ops::Operator;
use std::time::Duration;

/// A party's data-parallel execution engine.
#[derive(Debug, Clone)]
pub struct ParallelEngine {
    cluster: ClusterSpec,
    cost: ClusterCostModel,
    mode: EngineMode,
}

impl ParallelEngine {
    /// Creates an engine for the given cluster (row-mode tasks by default).
    pub fn new(cluster: ClusterSpec) -> Self {
        ParallelEngine {
            cluster,
            cost: ClusterCostModel::default(),
            mode: EngineMode::Row,
        }
    }

    /// Creates an engine with an explicit cost model.
    pub fn with_cost(cluster: ClusterSpec, cost: ClusterCostModel) -> Self {
        ParallelEngine {
            cluster,
            cost,
            mode: EngineMode::Row,
        }
    }

    /// Returns a copy whose per-task engine is the given mode; this is the
    /// mode the [`Executor`] implementation dispatches on.
    pub fn with_mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// The per-task engine mode.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// The engine's cluster description.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The engine's cost model.
    pub fn cost_model(&self) -> &ClusterCostModel {
        &self.cost
    }

    /// Executes one operator, returning the result and the simulated cluster
    /// time the stage would take. Uses the row-at-a-time engine per task; see
    /// [`ParallelEngine::execute_op_mode`] to select the vectorized engine.
    pub fn execute_op(
        &self,
        op: &Operator,
        inputs: &[&Relation],
    ) -> EngineResult<(Relation, Duration)> {
        self.execute_op_mode(op, inputs, EngineMode::Row)
    }

    /// Executes one operator with the chosen per-task engine: row tasks
    /// process `Vec<Vec<Value>>` partitions, columnar tasks slice typed
    /// column vectors and run the vectorized engine on each slice.
    ///
    /// This is the row-in/row-out compatibility surface; driven execution
    /// goes through the [`Executor`] implementation, which keeps columnar
    /// data columnar end to end.
    pub fn execute_op_mode(
        &self,
        op: &Operator,
        inputs: &[&Relation],
        mode: EngineMode,
    ) -> EngineResult<(Relation, Duration)> {
        let input_rows: u64 = inputs.iter().map(|r| r.num_rows() as u64).sum();
        let row_bytes = inputs
            .iter()
            .map(|r| r.schema.row_byte_size() as u64)
            .max()
            .unwrap_or(16);
        let out = match mode {
            EngineMode::Row => self.execute_parallel(op, inputs)?,
            EngineMode::Columnar => {
                let columnar: Vec<ColumnarRelation> = inputs
                    .iter()
                    .map(|r| ColumnarRelation::from_rows(r))
                    .collect();
                let refs: Vec<&ColumnarRelation> = columnar.iter().collect();
                self.execute_parallel_columnar(op, &refs)?.to_rows()
            }
        };
        let time = self.cost.estimate(
            &self.cluster,
            op,
            input_rows,
            out.num_rows() as u64,
            row_bytes,
        );
        Ok((out, time))
    }

    /// Estimates the simulated time of a whole local job (a pipeline of
    /// operators with known cardinalities) without executing it.
    pub fn estimate_job(&self, steps: &[(Operator, u64, u64, u64)]) -> Duration {
        self.cost.estimate_job(&self.cluster, steps)
    }

    fn execute_parallel(&self, op: &Operator, inputs: &[&Relation]) -> EngineResult<Relation> {
        let partitions = self.cluster.default_partitions();
        match op {
            // Narrow, partition-wise operators.
            Operator::Project { .. }
            | Operator::Filter { .. }
            | Operator::Multiply { .. }
            | Operator::Divide { .. } => {
                let input = single(inputs, op)?;
                let parted = PartitionedRelation::from_relation(input, partitions);
                let results = run_per_partition(&parted.partitions, |p| execute(op, &[p]))?;
                Ok(collect(results, &parted.schema, op, inputs)?)
            }
            // Aggregations: shuffle by the group-by key, reduce per partition.
            Operator::Aggregate { group_by, .. } => {
                let input = single(inputs, op)?;
                if group_by.is_empty() {
                    // Scalar aggregate: partial per partition, then combine.
                    return execute(op, inputs).map(|r| self.combine_scalar(op, r, input));
                }
                let key_cols: Vec<usize> = group_by
                    .iter()
                    .map(|c| {
                        input
                            .col_index(c)
                            .ok_or_else(|| EngineError::UnknownColumn(c.clone()))
                    })
                    .collect::<EngineResult<_>>()?;
                let parted = PartitionedRelation::from_relation(input, partitions)
                    .shuffle_by_key(&key_cols, partitions);
                let results = run_per_partition(&parted.partitions, |p| execute(op, &[p]))?;
                merge_results(results, op, inputs)
            }
            Operator::Distinct { columns } => {
                let input = single(inputs, op)?;
                let key_cols: Vec<usize> = columns
                    .iter()
                    .map(|c| {
                        input
                            .col_index(c)
                            .ok_or_else(|| EngineError::UnknownColumn(c.clone()))
                    })
                    .collect::<EngineResult<_>>()?;
                let parted = PartitionedRelation::from_relation(input, partitions)
                    .shuffle_by_key(&key_cols, partitions);
                let results = run_per_partition(&parted.partitions, |p| execute(op, &[p]))?;
                merge_results(results, op, inputs)
            }
            // Joins: co-partition both sides by the join key.
            Operator::Join {
                left_keys,
                right_keys,
                ..
            } => {
                if inputs.len() != 2 {
                    return Err(EngineError::Arity {
                        op: op.name().into(),
                        expected: "2".into(),
                        got: inputs.len(),
                    });
                }
                let lk: Vec<usize> = left_keys
                    .iter()
                    .map(|c| {
                        inputs[0]
                            .col_index(c)
                            .ok_or_else(|| EngineError::UnknownColumn(c.clone()))
                    })
                    .collect::<EngineResult<_>>()?;
                let rk: Vec<usize> = right_keys
                    .iter()
                    .map(|c| {
                        inputs[1]
                            .col_index(c)
                            .ok_or_else(|| EngineError::UnknownColumn(c.clone()))
                    })
                    .collect::<EngineResult<_>>()?;
                let left = PartitionedRelation::from_relation(inputs[0], partitions)
                    .shuffle_by_key(&lk, partitions);
                let right = PartitionedRelation::from_relation(inputs[1], partitions)
                    .shuffle_by_key(&rk, partitions);
                let pairs: Vec<(&Relation, &Relation)> = left
                    .partitions
                    .iter()
                    .zip(right.partitions.iter())
                    .collect();
                let results = run_per_partition(&pairs, |(l, r)| execute(op, &[l, r]))?;
                merge_results(results, op, inputs)
            }
            // Everything else is executed on the collected data (sorts,
            // limits, scalar steps, compiler-inserted physical operators);
            // these are either cheap or already tiny after local reduction.
            _ => execute(op, inputs),
        }
    }

    fn combine_scalar(&self, _op: &Operator, result: Relation, _input: &Relation) -> Relation {
        result
    }

    /// The columnar twin of [`ParallelEngine::execute_parallel`]: partitions
    /// are column slices and every per-partition task runs the vectorized
    /// engine. Consumes and produces columnar relations directly, so driven
    /// columnar plans never round-trip through rows between operators.
    fn execute_parallel_columnar(
        &self,
        op: &Operator,
        refs: &[&ColumnarRelation],
    ) -> EngineResult<ColumnarRelation> {
        let partitions = self.cluster.default_partitions();
        let out = match op {
            // Narrow, partition-wise operators.
            Operator::Project { .. }
            | Operator::Filter { .. }
            | Operator::Multiply { .. }
            | Operator::Divide { .. } => {
                let input = single_columnar(refs, op)?;
                let parted = ColumnarPartitionedRelation::from_relation(input, partitions);
                let results =
                    run_per_partition(&parted.partitions, |p| execute_columnar(op, &[p]))?;
                merge_columnar(results, op, refs)?
            }
            // Aggregations: shuffle by the group-by key, reduce per partition.
            Operator::Aggregate { group_by, .. } => {
                let input = single_columnar(refs, op)?;
                if group_by.is_empty() {
                    execute_columnar(op, refs)?
                } else {
                    let key_cols: Vec<usize> = group_by
                        .iter()
                        .map(|c| {
                            input
                                .col_index(c)
                                .ok_or_else(|| EngineError::UnknownColumn(c.clone()))
                        })
                        .collect::<EngineResult<_>>()?;
                    let parted = ColumnarPartitionedRelation::from_relation(input, partitions)
                        .shuffle_by_key(&key_cols, partitions);
                    let results =
                        run_per_partition(&parted.partitions, |p| execute_columnar(op, &[p]))?;
                    merge_columnar(results, op, refs)?
                }
            }
            Operator::Distinct { columns } => {
                let input = single_columnar(refs, op)?;
                let key_cols: Vec<usize> = columns
                    .iter()
                    .map(|c| {
                        input
                            .col_index(c)
                            .ok_or_else(|| EngineError::UnknownColumn(c.clone()))
                    })
                    .collect::<EngineResult<_>>()?;
                let parted = ColumnarPartitionedRelation::from_relation(input, partitions)
                    .shuffle_by_key(&key_cols, partitions);
                let results =
                    run_per_partition(&parted.partitions, |p| execute_columnar(op, &[p]))?;
                merge_columnar(results, op, refs)?
            }
            // Joins: co-partition both sides by the join key.
            Operator::Join {
                left_keys,
                right_keys,
                ..
            } => {
                if refs.len() != 2 {
                    return Err(EngineError::Arity {
                        op: op.name().into(),
                        expected: "2".into(),
                        got: refs.len(),
                    });
                }
                let lk: Vec<usize> = left_keys
                    .iter()
                    .map(|c| {
                        refs[0]
                            .col_index(c)
                            .ok_or_else(|| EngineError::UnknownColumn(c.clone()))
                    })
                    .collect::<EngineResult<_>>()?;
                let rk: Vec<usize> = right_keys
                    .iter()
                    .map(|c| {
                        refs[1]
                            .col_index(c)
                            .ok_or_else(|| EngineError::UnknownColumn(c.clone()))
                    })
                    .collect::<EngineResult<_>>()?;
                let left = ColumnarPartitionedRelation::from_relation(refs[0], partitions)
                    .shuffle_by_key(&lk, partitions);
                let right = ColumnarPartitionedRelation::from_relation(refs[1], partitions)
                    .shuffle_by_key(&rk, partitions);
                let pairs: Vec<(&ColumnarRelation, &ColumnarRelation)> = left
                    .partitions
                    .iter()
                    .zip(right.partitions.iter())
                    .collect();
                let results = run_per_partition(&pairs, |(l, r)| execute_columnar(op, &[l, r]))?;
                merge_columnar(results, op, refs)?
            }
            // Everything else runs on the collected data.
            _ => execute_columnar(op, refs)?,
        };
        Ok(out)
    }
}

impl Executor for ParallelEngine {
    /// Executes one operator over [`Table`]s with the configured per-task
    /// engine mode. Row mode partitions the row representation; columnar mode
    /// slices typed columns and returns a column-backed table, so chained
    /// columnar stages never round-trip through rows.
    fn execute(&self, op: &Operator, inputs: &[&Table]) -> Result<Table, EngineError> {
        match self.mode {
            EngineMode::Row => {
                let rows: Vec<&Relation> = inputs.iter().map(|t| t.as_rows()).collect();
                self.execute_parallel(op, &rows).map(Table::from_rows)
            }
            EngineMode::Columnar => {
                let cols: Vec<&ColumnarRelation> = inputs.iter().map(|t| t.as_columns()).collect();
                self.execute_parallel_columnar(op, &cols)
                    .map(Table::from_columns)
            }
        }
    }

    fn estimate(
        &self,
        op: &Operator,
        input_rows: u64,
        output_rows: u64,
        row_bytes: u64,
    ) -> Duration {
        self.cost
            .estimate(&self.cluster, op, input_rows, output_rows, row_bytes)
    }

    fn name(&self) -> &'static str {
        match self.mode {
            EngineMode::Row => "parallel-row",
            EngineMode::Columnar => "parallel-columnar",
        }
    }
}

fn single_columnar<'a>(
    inputs: &[&'a ColumnarRelation],
    op: &Operator,
) -> EngineResult<&'a ColumnarRelation> {
    if inputs.len() == 1 {
        Ok(inputs[0])
    } else {
        Err(EngineError::Arity {
            op: op.name().into(),
            expected: "1".into(),
            got: inputs.len(),
        })
    }
}

fn merge_columnar(
    results: Vec<ColumnarRelation>,
    op: &Operator,
    inputs: &[&ColumnarRelation],
) -> EngineResult<ColumnarRelation> {
    let non_empty: Vec<ColumnarRelation> =
        results.into_iter().filter(|r| r.num_rows() > 0).collect();
    if non_empty.is_empty() {
        // Derive the output schema from a direct (empty) execution.
        let empty_inputs: Vec<ColumnarRelation> = inputs
            .iter()
            .map(|r| ColumnarRelation::empty(r.schema.clone()))
            .collect();
        let refs: Vec<&ColumnarRelation> = empty_inputs.iter().collect();
        return execute_columnar(op, &refs);
    }
    ColumnarRelation::concat(&non_empty)
}

fn single<'a>(inputs: &[&'a Relation], op: &Operator) -> EngineResult<&'a Relation> {
    if inputs.len() == 1 {
        Ok(inputs[0])
    } else {
        Err(EngineError::Arity {
            op: op.name().into(),
            expected: "1".into(),
            got: inputs.len(),
        })
    }
}

/// Runs `f` over every item on its own thread (a task wave) and collects the
/// results in order.
fn run_per_partition<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&T) -> EngineResult<R> + Sync,
) -> EngineResult<Vec<R>> {
    if items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut results: Vec<Option<EngineResult<R>>> = Vec::new();
    results.resize_with(items.len(), || None);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let f = &f;
            handles.push((i, scope.spawn(move |_| f(item))));
        }
        for (i, h) in handles {
            results[i] = Some(h.join().expect("partition task panicked"));
        }
    })
    .expect("thread scope failed");
    results
        .into_iter()
        .map(|r| r.expect("every partition produced a result"))
        .collect()
}

fn collect(
    results: Vec<Relation>,
    _schema: &conclave_ir::schema::Schema,
    op: &Operator,
    inputs: &[&Relation],
) -> EngineResult<Relation> {
    merge_results(results, op, inputs)
}

fn merge_results(
    results: Vec<Relation>,
    op: &Operator,
    inputs: &[&Relation],
) -> EngineResult<Relation> {
    let non_empty: Vec<Relation> = results.into_iter().filter(|r| r.num_rows() > 0).collect();
    if non_empty.is_empty() {
        // Derive the output schema from a direct (empty) execution.
        let empty_inputs: Vec<Relation> = inputs
            .iter()
            .map(|r| Relation::empty(r.schema.clone()))
            .collect();
        let refs: Vec<&Relation> = empty_inputs.iter().collect();
        return execute(op, &refs);
    }
    Relation::concat(&non_empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::expr::Expr;
    use conclave_ir::ops::{AggFunc, JoinKind, Operand};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine() -> ParallelEngine {
        ParallelEngine::new(ClusterSpec::paper_party_cluster())
    }

    fn random_sales(n: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        Relation::from_ints(
            &["companyID", "price"],
            &(0..n)
                .map(|_| vec![rng.gen_range(0..50), rng.gen_range(0..1000)])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn narrow_ops_match_sequential_execution() {
        let eng = engine();
        let rel = random_sales(5_000, 1);
        for op in [
            Operator::Project {
                columns: vec!["price".into()],
            },
            Operator::Filter {
                predicate: Expr::col("price").gt(Expr::lit(500)),
            },
            Operator::Multiply {
                out: "x".into(),
                operands: vec![Operand::col("price"), Operand::lit(3)],
            },
            Operator::Divide {
                out: "r".into(),
                num: Operand::col("price"),
                den: Operand::lit(10),
            },
        ] {
            let (parallel, time) = eng.execute_op(&op, &[&rel]).unwrap();
            let sequential = execute(&op, &[&rel]).unwrap();
            assert!(parallel.same_rows_unordered(&sequential), "{op} mismatch");
            assert!(time > Duration::ZERO);
        }
    }

    #[test]
    fn grouped_aggregation_matches_sequential() {
        let eng = engine();
        let rel = random_sales(10_000, 2);
        let op = Operator::Aggregate {
            group_by: vec!["companyID".into()],
            func: AggFunc::Sum,
            over: Some("price".into()),
            out: "rev".into(),
        };
        let (parallel, _) = eng.execute_op(&op, &[&rel]).unwrap();
        let sequential = execute(&op, &[&rel]).unwrap();
        assert!(parallel.same_rows_unordered(&sequential));
    }

    #[test]
    fn scalar_aggregation_and_sort_fall_back_correctly() {
        let eng = engine();
        let rel = random_sales(1_000, 3);
        let sum = Operator::Aggregate {
            group_by: vec![],
            func: AggFunc::Sum,
            over: Some("price".into()),
            out: "total".into(),
        };
        let (out, _) = eng.execute_op(&sum, &[&rel]).unwrap();
        assert_eq!(out.rows, execute(&sum, &[&rel]).unwrap().rows);

        let sort = Operator::SortBy {
            column: "price".into(),
            ascending: true,
        };
        let (out, _) = eng.execute_op(&sort, &[&rel]).unwrap();
        assert!(out.is_sorted_by("price", true));
    }

    #[test]
    fn distinct_matches_sequential() {
        let eng = engine();
        let rel = random_sales(3_000, 4);
        let op = Operator::Distinct {
            columns: vec!["companyID".into()],
        };
        let (parallel, _) = eng.execute_op(&op, &[&rel]).unwrap();
        let sequential = execute(&op, &[&rel]).unwrap();
        assert!(parallel.same_rows_unordered(&sequential));
    }

    #[test]
    fn parallel_join_matches_sequential() {
        let eng = engine();
        let left = random_sales(2_000, 5);
        let mut right = random_sales(2_000, 6);
        right.schema = conclave_ir::schema::Schema::ints(&["companyID", "weight"]);
        let op = Operator::Join {
            left_keys: vec!["companyID".into()],
            right_keys: vec!["companyID".into()],
            kind: JoinKind::Inner,
        };
        let (parallel, _) = eng.execute_op(&op, &[&left, &right]).unwrap();
        let sequential = execute(&op, &[&left, &right]).unwrap();
        assert!(parallel.same_rows_unordered(&sequential));
        assert_eq!(parallel.schema.names(), sequential.schema.names());
    }

    #[test]
    fn join_arity_and_unknown_columns_error() {
        let eng = engine();
        let rel = random_sales(10, 7);
        let op = Operator::Join {
            left_keys: vec!["companyID".into()],
            right_keys: vec!["companyID".into()],
            kind: JoinKind::Inner,
        };
        assert!(eng.execute_op(&op, &[&rel]).is_err());
        let bad = Operator::Aggregate {
            group_by: vec!["zzz".into()],
            func: AggFunc::Count,
            over: None,
            out: "n".into(),
        };
        assert!(eng.execute_op(&bad, &[&rel]).is_err());
    }

    #[test]
    fn empty_input_produces_empty_output_with_right_schema() {
        let eng = engine();
        let rel = Relation::from_ints(&["companyID", "price"], &[]);
        let op = Operator::Aggregate {
            group_by: vec!["companyID".into()],
            func: AggFunc::Sum,
            over: Some("price".into()),
            out: "rev".into(),
        };
        let (out, _) = eng.execute_op(&op, &[&rel]).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.schema.names(), vec!["companyID", "rev"]);
    }

    #[test]
    fn columnar_mode_matches_row_mode_across_operators() {
        let eng = engine();
        let rel = random_sales(4_000, 11);
        let mut right = random_sales(2_000, 12);
        right.schema = conclave_ir::schema::Schema::ints(&["companyID", "weight"]);
        let unary = [
            Operator::Project {
                columns: vec!["price".into()],
            },
            Operator::Filter {
                predicate: Expr::col("price").gt(Expr::lit(500)),
            },
            Operator::Multiply {
                out: "x".into(),
                operands: vec![Operand::col("price"), Operand::lit(3)],
            },
            Operator::Divide {
                out: "r".into(),
                num: Operand::col("price"),
                den: Operand::lit(10),
            },
            Operator::Aggregate {
                group_by: vec!["companyID".into()],
                func: AggFunc::Sum,
                over: Some("price".into()),
                out: "rev".into(),
            },
            Operator::Aggregate {
                group_by: vec![],
                func: AggFunc::Max,
                over: Some("price".into()),
                out: "hi".into(),
            },
            Operator::Distinct {
                columns: vec!["companyID".into()],
            },
            Operator::SortBy {
                column: "price".into(),
                ascending: true,
            },
        ];
        for op in unary {
            let (row, _) = eng.execute_op_mode(&op, &[&rel], EngineMode::Row).unwrap();
            let (col, t) = eng
                .execute_op_mode(&op, &[&rel], EngineMode::Columnar)
                .unwrap();
            assert!(col.same_rows_unordered(&row), "{op} mismatch");
            assert_eq!(col.schema.names(), row.schema.names());
            assert!(t > Duration::ZERO);
        }
        let join = Operator::Join {
            left_keys: vec!["companyID".into()],
            right_keys: vec!["companyID".into()],
            kind: JoinKind::Inner,
        };
        let (row, _) = eng
            .execute_op_mode(&join, &[&rel, &right], EngineMode::Row)
            .unwrap();
        let (col, _) = eng
            .execute_op_mode(&join, &[&rel, &right], EngineMode::Columnar)
            .unwrap();
        assert!(col.same_rows_unordered(&row));
        // Errors surface in columnar mode too.
        assert!(eng
            .execute_op_mode(&join, &[&rel], EngineMode::Columnar)
            .is_err());
        let bad = Operator::Aggregate {
            group_by: vec!["zzz".into()],
            func: AggFunc::Count,
            over: None,
            out: "n".into(),
        };
        assert!(eng
            .execute_op_mode(&bad, &[&rel], EngineMode::Columnar)
            .is_err());
    }

    #[test]
    fn executor_trait_keeps_native_layout_and_matches_row_results() {
        let row_exec = engine();
        let col_exec = engine().with_mode(EngineMode::Columnar);
        assert_eq!(Executor::name(&row_exec), "parallel-row");
        assert_eq!(Executor::name(&col_exec), "parallel-columnar");
        let rel = random_sales(3_000, 21);
        let table = Table::from_columns(ColumnarRelation::from_rows(&rel));
        let op = Operator::Aggregate {
            group_by: vec!["companyID".into()],
            func: AggFunc::Sum,
            over: Some("price".into()),
            out: "rev".into(),
        };
        let col_out = col_exec.execute(&op, &[&table]).unwrap();
        assert!(col_out.has_columns() && !col_out.has_rows());
        // Columnar-in, columnar-out: the input table never converted.
        assert_eq!(table.conversion_counts().total(), 0);
        let row_table = Table::from_rows(rel.clone());
        let row_out = Executor::execute(&row_exec, &op, &[&row_table]).unwrap();
        assert!(row_out.has_rows() && !row_out.has_columns());
        assert!(row_out.as_rows().same_rows_unordered(col_out.as_rows()));
        // Cost estimates flow through the trait.
        assert!(Executor::estimate(&row_exec, &op, 3_000, 50, 16) > Duration::ZERO);
    }

    #[test]
    fn columnar_mode_empty_input_keeps_schema() {
        let eng = engine();
        let rel = Relation::from_ints(&["companyID", "price"], &[]);
        let op = Operator::Aggregate {
            group_by: vec!["companyID".into()],
            func: AggFunc::Sum,
            over: Some("price".into()),
            out: "rev".into(),
        };
        let (out, _) = eng
            .execute_op_mode(&op, &[&rel], EngineMode::Columnar)
            .unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.schema.names(), vec!["companyID", "rev"]);
    }

    #[test]
    fn accessors_and_estimate_job() {
        let eng = ParallelEngine::with_cost(ClusterSpec::new(2, 2), ClusterCostModel::default());
        assert_eq!(eng.cluster().total_cores(), 4);
        let t = eng.estimate_job(&[(
            Operator::Project {
                columns: vec!["a".into()],
            },
            1_000_000,
            1_000_000,
            16,
        )]);
        assert!(t > Duration::from_secs_f64(eng.cost_model().job_overhead - 0.1));
    }
}
