//! Data-parallel cleartext engine (the "Spark" backend).
//!
//! The paper runs each party's local, cleartext query steps on a small Spark
//! cluster so that pre-processing scales to hundreds of millions of rows
//! (§6, §7.1). This crate stands in for Spark: relations are split into
//! partitions, narrow operators run on every partition concurrently (real
//! threads via crossbeam), wide operators (joins, grouped aggregations)
//! shuffle partitions by key first, and a [`cost::ClusterCostModel`]
//! translates the work into the simulated wall-clock time a small cluster
//! would need — including the fixed job-scheduling overhead that makes Spark
//! slower than plain Python on tiny inputs but vastly faster on large ones
//! (the crossover visible in Figures 1 and 4).

// Also enforced workspace-wide via [workspace.lints]; stated here so the
// guarantee is visible at the crate root.
#![forbid(unsafe_code)]

pub mod cluster;
pub mod cost;
pub mod exec;
pub mod partition;

pub use cluster::ClusterSpec;
pub use cost::ClusterCostModel;
pub use exec::ParallelEngine;
pub use partition::{ColumnarPartitionedRelation, PartitionedRelation};
