//! Partitioned relations: the unit of parallelism.
//!
//! Two flavors are provided: [`PartitionedRelation`] partitions row-major
//! relations (vectors of row vectors), while [`ColumnarPartitionedRelation`]
//! partitions columnar relations by slicing every typed column — the shuffle
//! then moves contiguous column chunks instead of individual boxed rows.

use conclave_engine::{ColumnarRelation, Relation};
use conclave_ir::schema::Schema;
use conclave_ir::types::Value;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A relation split into horizontal partitions, each processed by one task.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedRelation {
    /// Shared schema of every partition.
    pub schema: Schema,
    /// The partitions.
    pub partitions: Vec<Relation>,
}

impl PartitionedRelation {
    /// Splits a relation into `n` near-equal partitions.
    pub fn from_relation(rel: &Relation, n: usize) -> Self {
        PartitionedRelation {
            schema: rel.schema.clone(),
            partitions: rel.split(n),
        }
    }

    /// Wraps existing partitions (they must share the given schema's arity).
    pub fn from_parts(schema: Schema, partitions: Vec<Relation>) -> Self {
        PartitionedRelation { schema, partitions }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of rows across all partitions.
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(|p| p.num_rows()).sum()
    }

    /// Collects all partitions back into one relation (Spark's `collect`).
    pub fn collect(&self) -> Relation {
        if self.partitions.is_empty() {
            return Relation::empty(self.schema.clone());
        }
        Relation::concat(&self.partitions).expect("partitions share a schema")
    }

    /// Re-partitions by hashing the given key columns, so that all rows with
    /// equal keys land in the same partition (the shuffle before a wide
    /// operator).
    pub fn shuffle_by_key(&self, key_cols: &[usize], num_partitions: usize) -> PartitionedRelation {
        let num_partitions = num_partitions.max(1);
        let mut buckets: Vec<Vec<Vec<Value>>> = vec![Vec::new(); num_partitions];
        for part in &self.partitions {
            for row in &part.rows {
                let mut hasher = DefaultHasher::new();
                for &c in key_cols {
                    row[c].hash(&mut hasher);
                }
                let bucket = (hasher.finish() % num_partitions as u64) as usize;
                buckets[bucket].push(row.clone());
            }
        }
        let partitions = buckets
            .into_iter()
            .map(|rows| Relation {
                schema: self.schema.clone(),
                rows,
            })
            .collect();
        PartitionedRelation {
            schema: self.schema.clone(),
            partitions,
        }
    }

    /// Total bytes the shuffle of this relation would move.
    pub fn shuffle_bytes(&self) -> u64 {
        (self.num_rows() * self.schema.row_byte_size()) as u64
    }
}

/// A columnar relation split into horizontal partitions: each partition keeps
/// the typed column vectors of its row range, so per-partition tasks run the
/// vectorized engine directly with no row materialization.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarPartitionedRelation {
    /// Shared schema of every partition.
    pub schema: Schema,
    /// The partitions.
    pub partitions: Vec<ColumnarRelation>,
}

impl ColumnarPartitionedRelation {
    /// Splits a columnar relation into `n` near-equal partitions by slicing
    /// every column.
    pub fn from_relation(rel: &ColumnarRelation, n: usize) -> Self {
        ColumnarPartitionedRelation {
            schema: rel.schema.clone(),
            partitions: rel.split(n),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of rows across all partitions.
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(|p| p.num_rows()).sum()
    }

    /// Collects all partitions back into one columnar relation.
    pub fn collect(&self) -> ColumnarRelation {
        if self.partitions.is_empty() {
            return ColumnarRelation::empty(self.schema.clone());
        }
        ColumnarRelation::concat(&self.partitions).expect("partitions share a schema")
    }

    /// Re-partitions by hashing the given key columns, so that all rows with
    /// equal keys land in the same partition. Buckets are materialized as
    /// per-partition gather index lists, then every column is gathered once.
    pub fn shuffle_by_key(
        &self,
        key_cols: &[usize],
        num_partitions: usize,
    ) -> ColumnarPartitionedRelation {
        let num_partitions = num_partitions.max(1);
        let partitions = self
            .partitions
            .iter()
            .flat_map(|part| {
                // Bucket indices within this partition.
                let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); num_partitions];
                for i in 0..part.num_rows() {
                    let mut hasher = DefaultHasher::new();
                    for &c in key_cols {
                        part.value(i, c).hash(&mut hasher);
                    }
                    let bucket = (hasher.finish() % num_partitions as u64) as usize;
                    buckets[bucket].push(i);
                }
                buckets
                    .into_iter()
                    .map(|idx| part.gather(&idx))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>();
        // Merge the per-source-partition buckets bucket-wise.
        let merged = (0..num_partitions)
            .map(|b| {
                let parts: Vec<ColumnarRelation> = partitions
                    .iter()
                    .skip(b)
                    .step_by(num_partitions)
                    .cloned()
                    .collect();
                if parts.is_empty() {
                    ColumnarRelation::empty(self.schema.clone())
                } else {
                    ColumnarRelation::concat(&parts).expect("buckets share a schema")
                }
            })
            .collect();
        ColumnarPartitionedRelation {
            schema: self.schema.clone(),
            partitions: merged,
        }
    }

    /// Total bytes the shuffle of this relation would move.
    pub fn shuffle_bytes(&self) -> u64 {
        (self.num_rows() * self.schema.row_byte_size()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(n: i64) -> Relation {
        Relation::from_ints(
            &["k", "v"],
            &(0..n).map(|i| vec![i % 7, i]).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn split_and_collect_round_trip() {
        let r = rel(100);
        let p = PartitionedRelation::from_relation(&r, 8);
        assert_eq!(p.num_partitions(), 8);
        assert_eq!(p.num_rows(), 100);
        assert!(p.collect().same_rows_unordered(&r));
        assert!(p.shuffle_bytes() > 0);
    }

    #[test]
    fn empty_partitioned_relation_collects_to_empty() {
        let p = PartitionedRelation::from_parts(Schema::ints(&["a"]), vec![]);
        assert_eq!(p.collect().num_rows(), 0);
        assert_eq!(p.num_rows(), 0);
    }

    #[test]
    fn shuffle_by_key_groups_equal_keys_together() {
        let r = rel(200);
        let p = PartitionedRelation::from_relation(&r, 4);
        let shuffled = p.shuffle_by_key(&[0], 5);
        assert_eq!(shuffled.num_rows(), 200);
        assert_eq!(shuffled.num_partitions(), 5);
        // Every distinct key must appear in exactly one partition.
        for key in 0..7i64 {
            let holders = shuffled
                .partitions
                .iter()
                .filter(|part| part.rows.iter().any(|row| row[0] == Value::Int(key)))
                .count();
            assert_eq!(holders, 1, "key {key} appears in {holders} partitions");
        }
        // All rows survive the shuffle.
        assert!(shuffled.collect().same_rows_unordered(&r));
    }

    #[test]
    fn shuffle_with_zero_partitions_is_clamped() {
        let r = rel(10);
        let p = PartitionedRelation::from_relation(&r, 2);
        let shuffled = p.shuffle_by_key(&[0], 0);
        assert_eq!(shuffled.num_partitions(), 1);
    }

    #[test]
    fn columnar_split_and_collect_round_trip() {
        let r = rel(100);
        let c = ColumnarRelation::from_rows(&r);
        let p = ColumnarPartitionedRelation::from_relation(&c, 8);
        assert_eq!(p.num_partitions(), 8);
        assert_eq!(p.num_rows(), 100);
        assert!(p.collect().to_rows().same_rows_unordered(&r));
        assert!(p.shuffle_bytes() > 0);
        let empty = ColumnarPartitionedRelation {
            schema: Schema::ints(&["a"]),
            partitions: vec![],
        };
        assert_eq!(empty.collect().num_rows(), 0);
    }

    #[test]
    fn columnar_shuffle_matches_row_shuffle_semantics() {
        let r = rel(200);
        let row_part = PartitionedRelation::from_relation(&r, 4).shuffle_by_key(&[0], 5);
        let col_part =
            ColumnarPartitionedRelation::from_relation(&ColumnarRelation::from_rows(&r), 4)
                .shuffle_by_key(&[0], 5);
        assert_eq!(col_part.num_partitions(), 5);
        assert_eq!(col_part.num_rows(), 200);
        // Same bucketing (both hash `Value`s with the same hasher), and every
        // key lands in exactly one partition.
        for (rp, cp) in row_part.partitions.iter().zip(&col_part.partitions) {
            assert_eq!(cp.to_rows().rows, rp.rows);
        }
        for key in 0..7i64 {
            let holders = col_part
                .partitions
                .iter()
                .filter(|part| (0..part.num_rows()).any(|i| part.value(i, 0) == Value::Int(key)))
                .count();
            assert_eq!(holders, 1, "key {key} appears in {holders} partitions");
        }
        // Zero-partition shuffles clamp.
        let clamped =
            ColumnarPartitionedRelation::from_relation(&ColumnarRelation::from_rows(&r), 2)
                .shuffle_by_key(&[0], 0);
        assert_eq!(clamped.num_partitions(), 1);
    }
}
