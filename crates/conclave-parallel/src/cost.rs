//! Cost model for the Spark-like data-parallel backend.
//!
//! Calibration anchors (Figure 1 and Figure 4 of the paper):
//!
//! * Spark runs single relational operators over tens of millions of records
//!   "in seconds" (Figure 1) — per-core throughput of roughly one million
//!   simple row operations per second plus fixed job overhead.
//! * Even on 10-row inputs, Spark jobs take a few seconds: scheduling,
//!   executor launch and stage setup dominate (the flat left-hand side of
//!   every Spark curve).
//! * In Figure 4 the insecure 9-node baseline completes the full market-
//!   concentration query over 1.3 billion records in roughly 15–20 minutes,
//!   i.e. ≈1.2–1.5 M rows/s across the cluster for a multi-operator query.

use crate::cluster::ClusterSpec;
use conclave_ir::ops::Operator;
use std::time::Duration;

/// Converts operator cardinalities into simulated cluster runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterCostModel {
    /// Seconds of fixed overhead per job (driver/executor startup).
    pub job_overhead: f64,
    /// Seconds of fixed overhead per stage (scheduling a wave of tasks).
    pub stage_overhead: f64,
    /// Seconds per row per core for narrow transformations.
    pub per_row_narrow: f64,
    /// Seconds per row per core for wide transformations (hashing, shuffle
    /// serialization).
    pub per_row_wide: f64,
    /// Effective shuffle bandwidth of the whole cluster, bytes per second.
    pub shuffle_bandwidth_bps: f64,
}

impl Default for ClusterCostModel {
    fn default() -> Self {
        ClusterCostModel {
            job_overhead: 4.0,
            stage_overhead: 0.5,
            per_row_narrow: 0.8e-6,
            per_row_wide: 2.5e-6,
            shuffle_bandwidth_bps: 250.0e6,
        }
    }
}

impl ClusterCostModel {
    /// Estimates the runtime of one operator over `input_rows` rows of
    /// `row_bytes`-wide rows on the given cluster.
    pub fn estimate(
        &self,
        cluster: &ClusterSpec,
        op: &Operator,
        input_rows: u64,
        output_rows: u64,
        row_bytes: u64,
    ) -> Duration {
        let cores = f64::from(cluster.total_cores());
        let n = input_rows as f64;
        let m = output_rows as f64;
        let secs = match op {
            // Narrow transformations: one stage, no shuffle.
            Operator::Project { .. }
            | Operator::Filter { .. }
            | Operator::Multiply { .. }
            | Operator::Divide { .. }
            | Operator::Concat
            | Operator::Limit { .. }
            | Operator::Enumerate { .. }
            | Operator::RevealTo { .. }
            | Operator::CloseTo
            | Operator::Open { .. }
            | Operator::Collect { .. }
            | Operator::Shuffle
            | Operator::ObliviousSelect { .. } => {
                self.stage_overhead + n * self.per_row_narrow / cores
            }
            // Wide transformations: shuffle the input by key, then reduce.
            Operator::Join { .. }
            | Operator::PublicJoin { .. }
            | Operator::HybridJoin { .. }
            | Operator::Aggregate { .. }
            | Operator::HybridAggregate { .. }
            | Operator::Distinct { .. }
            | Operator::DistinctCount { .. }
            | Operator::SortBy { .. }
            | Operator::Merge { .. } => {
                let shuffle_bytes = (n + m) * row_bytes as f64;
                2.0 * self.stage_overhead
                    + (n + m) * self.per_row_wide / cores
                    + shuffle_bytes / self.shuffle_bandwidth_bps
            }
            Operator::Input { .. } => 0.0,
        };
        Duration::from_secs_f64(secs)
    }

    /// Estimates a whole local job: fixed job overhead plus the sum of its
    /// operator stages.
    pub fn estimate_job(
        &self,
        cluster: &ClusterSpec,
        steps: &[(Operator, u64, u64, u64)],
    ) -> Duration {
        let stages: f64 = steps
            .iter()
            .map(|(op, i, o, w)| self.estimate(cluster, op, *i, *o, *w).as_secs_f64())
            .sum();
        Duration::from_secs_f64(self.job_overhead + stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::expr::Expr;
    use conclave_ir::ops::AggFunc;

    fn agg() -> Operator {
        Operator::Aggregate {
            group_by: vec!["k".into()],
            func: AggFunc::Sum,
            over: Some("v".into()),
            out: "s".into(),
        }
    }

    #[test]
    fn small_jobs_are_dominated_by_overhead() {
        let m = ClusterCostModel::default();
        let c = ClusterSpec::paper_party_cluster();
        let t = m.estimate_job(&c, &[(agg(), 10, 5, 16)]);
        // Figure 1: Spark takes a few seconds even on ten rows.
        assert!(t.as_secs_f64() > 2.0 && t.as_secs_f64() < 30.0);
    }

    #[test]
    fn ten_million_row_operator_runs_in_seconds_not_minutes() {
        let m = ClusterCostModel::default();
        let c = ClusterSpec::paper_party_cluster();
        let t = m.estimate_job(&c, &[(agg(), 10_000_000, 100_000, 16)]);
        assert!(
            t.as_secs_f64() < 120.0,
            "Spark should handle 10 M rows quickly, got {:.0} s",
            t.as_secs_f64()
        );
    }

    #[test]
    fn figure4_insecure_baseline_anchor() {
        // The full market-concentration query over 1.3 B records on the joint
        // 9-node cluster finishes in roughly 900–1500 s.
        let m = ClusterCostModel::default();
        let c = ClusterSpec::paper_insecure_cluster();
        let filter = Operator::Filter {
            predicate: Expr::col("price").gt(Expr::lit(0)),
        };
        let proj = Operator::Project {
            columns: vec!["companyID".into(), "price".into()],
        };
        let n: u64 = 1_300_000_000;
        let t = m.estimate_job(
            &c,
            &[(filter, n, n, 24), (proj, n, n, 16), (agg(), n, 1_000, 16)],
        );
        let secs = t.as_secs_f64();
        assert!(
            (300.0..3_000.0).contains(&secs),
            "insecure baseline at 1.3 B rows should take tens of minutes, got {secs:.0} s"
        );
    }

    #[test]
    fn more_cores_reduce_runtime() {
        let m = ClusterCostModel::default();
        let small = ClusterSpec::new(1, 2);
        let big = ClusterSpec::new(9, 2);
        let t_small = m.estimate(&big.clone(), &agg(), 50_000_000, 1_000, 16);
        let t_big = m.estimate(&small, &agg(), 50_000_000, 1_000, 16);
        assert!(t_small < t_big);
    }

    #[test]
    fn wide_ops_cost_more_than_narrow() {
        let m = ClusterCostModel::default();
        let c = ClusterSpec::default();
        let narrow = m.estimate(
            &c,
            &Operator::Project {
                columns: vec!["a".into()],
            },
            1_000_000,
            1_000_000,
            16,
        );
        let wide = m.estimate(&c, &agg(), 1_000_000, 1_000, 16);
        assert!(wide > narrow);
        let input = m.estimate(
            &c,
            &Operator::Input {
                name: "t".into(),
                party: 1,
            },
            1_000_000,
            1_000_000,
            16,
        );
        assert_eq!(input, Duration::ZERO);
    }
}
