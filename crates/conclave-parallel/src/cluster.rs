//! Description of the simulated cluster a party runs its local jobs on.

use serde::{Deserialize, Serialize};

/// A party's local data-parallel cluster.
///
/// The paper's evaluation gives each party three Spark VMs with 2 vCPUs each
/// (§7, "Setup"); [`ClusterSpec::paper_party_cluster`] mirrors that, and
/// [`ClusterSpec::paper_insecure_cluster`] mirrors the joint nine-node
/// cluster used for the insecure Spark baseline of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub workers: u32,
    /// Executor cores per worker.
    pub cores_per_worker: u32,
}

impl ClusterSpec {
    /// Creates a cluster description.
    pub fn new(workers: u32, cores_per_worker: u32) -> Self {
        assert!(workers > 0 && cores_per_worker > 0);
        ClusterSpec {
            workers,
            cores_per_worker,
        }
    }

    /// The per-party cluster of the paper's setup: 3 Spark VMs × 2 vCPUs.
    pub fn paper_party_cluster() -> Self {
        ClusterSpec::new(3, 2)
    }

    /// The joint insecure-baseline cluster of Figure 4: 9 nodes × 2 vCPUs.
    pub fn paper_insecure_cluster() -> Self {
        ClusterSpec::new(9, 2)
    }

    /// Total parallel task slots.
    pub fn total_cores(&self) -> u32 {
        self.workers * self.cores_per_worker
    }

    /// Default number of partitions for a job (2 tasks per core, Spark's
    /// usual guidance).
    pub fn default_partitions(&self) -> usize {
        (self.total_cores() * 2) as usize
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::paper_party_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clusters() {
        let party = ClusterSpec::paper_party_cluster();
        assert_eq!(party.total_cores(), 6);
        assert_eq!(party.default_partitions(), 12);
        let joint = ClusterSpec::paper_insecure_cluster();
        assert_eq!(joint.total_cores(), 18);
        assert!(joint.total_cores() > party.total_cores());
        assert_eq!(ClusterSpec::default(), party);
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        let _ = ClusterSpec::new(0, 2);
    }
}
