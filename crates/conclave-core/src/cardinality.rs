//! Cardinality propagation and analytic runtime estimation.
//!
//! The paper's figures sweep input sizes from ten records to 1.3 billion.
//! Executing a billion-row query in-process is not possible, so the benchmark
//! harness uses this module instead: it propagates estimated row counts
//! through the *compiled* plan (so every rewrite — push-down, hybrid
//! operators, sort elimination — changes the estimate exactly as it changes
//! real execution) and converts per-node work into simulated time using the
//! same cost models the driver charges.

use crate::config::{ConclaveConfig, LocalBackend};
use crate::plan::PhysicalPlan;
use conclave_engine::SequentialCostModel;
use conclave_ir::dag::NodeId;
use conclave_ir::error::IrResult;
use conclave_ir::ops::{ExecSite, Operator};
use conclave_ir::party::PartyId;
use conclave_mpc::backend::{MpcEngine, MpcError, MpcResult};
use conclave_parallel::ClusterCostModel;
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// Statistical knobs describing the workload, used to estimate intermediate
/// cardinalities.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadStats {
    /// Fraction of rows that survive a filter.
    pub filter_selectivity: f64,
    /// Output rows of a join as a fraction of the smaller input.
    pub join_selectivity: f64,
    /// Number of distinct group-by keys as a fraction of the input rows
    /// (capped at 1.0); determines aggregation output sizes.
    pub distinct_key_ratio: f64,
    /// Absolute cap on the number of distinct group-by keys, if known (e.g.
    /// the number of companies or ZIP codes).
    pub max_groups: Option<u64>,
}

impl Default for WorkloadStats {
    fn default() -> Self {
        WorkloadStats {
            filter_selectivity: 0.9,
            join_selectivity: 1.0,
            distinct_key_ratio: 0.1,
            max_groups: None,
        }
    }
}

impl WorkloadStats {
    fn groups_for(&self, rows: u64) -> u64 {
        let by_ratio = ((rows as f64) * self.distinct_key_ratio).ceil().max(1.0) as u64;
        match self.max_groups {
            Some(cap) => by_ratio.min(cap).max(1),
            None => by_ratio,
        }
    }
}

/// An analytic end-to-end runtime estimate for one plan and input size.
#[derive(Debug, Clone, Default)]
pub struct RuntimeEstimate {
    /// Simulated local processing time per party.
    pub local_time: BTreeMap<PartyId, Duration>,
    /// Simulated MPC time (includes moving data in and out of the MPC).
    pub mpc_time: Duration,
    /// Simulated cleartext time at the STP / helper inside hybrid protocols.
    pub stp_time: Duration,
    /// Estimated rows per node.
    pub rows: HashMap<NodeId, u64>,
    /// Whether the MPC backend would fail (garbled-circuit out-of-memory),
    /// and at which node.
    pub failure: Option<(NodeId, String)>,
}

impl RuntimeEstimate {
    /// Total simulated runtime (slowest party's local work, then MPC and STP
    /// phases).
    pub fn total_time(&self) -> Duration {
        let local = self.local_time.values().copied().max().unwrap_or_default();
        local + self.mpc_time + self.stp_time
    }

    /// Returns `true` if the estimated execution would not complete (backend
    /// failure such as out-of-memory).
    pub fn failed(&self) -> bool {
        self.failure.is_some()
    }
}

/// Propagates cardinalities through a compiled plan and estimates runtime.
#[derive(Debug)]
pub struct CardinalityEstimator {
    config: ConclaveConfig,
    stats: WorkloadStats,
    mpc: MpcEngine,
    cluster_cost: ClusterCostModel,
    sequential_cost: SequentialCostModel,
}

impl CardinalityEstimator {
    /// Creates an estimator for a configuration and workload description.
    pub fn new(config: ConclaveConfig, stats: WorkloadStats) -> Self {
        let mpc = MpcEngine::new(config.mpc);
        CardinalityEstimator {
            config,
            stats,
            mpc,
            cluster_cost: ClusterCostModel::default(),
            sequential_cost: SequentialCostModel::default(),
        }
    }

    /// Estimates the output cardinality of one operator.
    fn output_rows(&self, op: &Operator, input_rows: &[u64]) -> u64 {
        let n: u64 = input_rows.iter().sum();
        match op {
            Operator::Input { .. } => n,
            Operator::Filter { .. } => ((n as f64) * self.stats.filter_selectivity).ceil() as u64,
            Operator::Join { .. } | Operator::HybridJoin { .. } | Operator::PublicJoin { .. } => {
                let smaller = input_rows.iter().copied().min().unwrap_or(0);
                ((smaller as f64) * self.stats.join_selectivity).ceil() as u64
            }
            Operator::Aggregate { group_by, .. } | Operator::HybridAggregate { group_by, .. } => {
                if group_by.is_empty() {
                    1
                } else {
                    self.stats.groups_for(n)
                }
            }
            Operator::Distinct { .. } => self.stats.groups_for(n),
            Operator::DistinctCount { .. } => 1,
            Operator::Limit { n: limit } => n.min(*limit as u64),
            _ => n,
        }
    }

    /// Estimates the end-to-end runtime of a plan given per-input row counts
    /// (keyed by the input relation names of the query).
    pub fn estimate(
        &self,
        plan: &PhysicalPlan,
        input_rows: &HashMap<String, u64>,
    ) -> IrResult<RuntimeEstimate> {
        let mut est = RuntimeEstimate::default();
        let order = plan.dag.topo_order()?;
        let mut mpc_jobs = 0u32;
        for id in order {
            let node = plan.dag.node(id)?;
            let in_rows: Vec<u64> = node
                .inputs
                .iter()
                .map(|i| est.rows.get(i).copied().unwrap_or(0))
                .collect();
            let in_cols: Vec<u64> = node
                .inputs
                .iter()
                .filter_map(|i| plan.dag.node(*i).ok())
                .map(|n| n.schema.len() as u64)
                .collect();
            let out_rows = match &node.op {
                Operator::Input { name, .. } => input_rows.get(name).copied().unwrap_or(0),
                op => self.output_rows(op, &in_rows),
            };
            est.rows.insert(id, out_rows);
            if est.failure.is_some() {
                continue;
            }

            match node.site {
                ExecSite::Local(party) | ExecSite::Stp(party) => {
                    let row_bytes = node.schema.row_byte_size() as u64;
                    let t = self.local_time(&node.op, in_rows.iter().sum(), out_rows, row_bytes);
                    *est.local_time.entry(party).or_default() += t;
                }
                ExecSite::Mpc => {
                    mpc_jobs = 1;
                    match self.mpc_time(plan, id, &node.op, &in_rows, &in_cols, out_rows) {
                        Ok((mpc, stp)) => {
                            est.mpc_time += mpc;
                            est.stp_time += stp;
                        }
                        Err(MpcError::OutOfMemory { needed, limit }) => {
                            est.failure = Some((
                                id,
                                format!(
                                    "out of memory: needs {:.1} GB, limit {:.1} GB",
                                    needed / 1e9,
                                    limit / 1e9
                                ),
                            ));
                        }
                        Err(e) => {
                            est.failure = Some((id, e.to_string()));
                        }
                    }
                }
                ExecSite::Undecided => {}
            }

            // Data crossing the MPC frontier pays sharing / opening costs.
            if node.site.is_mpc() {
                for (idx, &input) in node.inputs.iter().enumerate() {
                    let parent = plan.dag.node(input)?;
                    if parent.site.is_cleartext() {
                        let stats = self
                            .mpc
                            .estimate_input(in_rows[idx], parent.schema.len() as u64);
                        est.mpc_time += stats.simulated_time;
                    }
                }
            } else if node.site.is_cleartext() {
                for (idx, &input) in node.inputs.iter().enumerate() {
                    let parent = plan.dag.node(input)?;
                    if parent.site.is_mpc() {
                        let stats = self
                            .mpc
                            .estimate_open(in_rows[idx], parent.schema.len() as u64);
                        est.mpc_time += stats.simulated_time;
                    }
                }
            }
        }
        // Fixed per-job overheads: one MPC session plus (for the parallel
        // backend) one cluster job per party that does local work.
        if mpc_jobs > 0 {
            est.mpc_time += Duration::from_secs_f64(self.config.mpc.ss_cost.job_overhead);
        }
        if self.config.local_backend == LocalBackend::Parallel {
            for t in est.local_time.values_mut() {
                *t += Duration::from_secs_f64(self.cluster_cost.job_overhead);
            }
        }
        Ok(est)
    }

    fn local_time(&self, op: &Operator, in_rows: u64, out_rows: u64, row_bytes: u64) -> Duration {
        match self.config.local_backend {
            LocalBackend::Parallel => {
                self.cluster_cost
                    .estimate(&self.config.cluster, op, in_rows, out_rows, row_bytes)
            }
            LocalBackend::Sequential => self.sequential_cost.estimate(op, in_rows, out_rows),
        }
    }

    fn mpc_time(
        &self,
        plan: &PhysicalPlan,
        id: NodeId,
        op: &Operator,
        in_rows: &[u64],
        in_cols: &[u64],
        out_rows: u64,
    ) -> MpcResult<(Duration, Duration)> {
        let cols = in_cols.iter().copied().max().unwrap_or(1);
        match op {
            Operator::HybridJoin { .. } => {
                let stats = self.mpc.estimate_hybrid_join(
                    in_rows.first().copied().unwrap_or(0),
                    in_rows.get(1).copied().unwrap_or(0),
                    out_rows,
                    cols,
                );
                // STP cleartext join over the revealed key columns.
                let stp = self.sequential_cost.estimate(
                    &Operator::Join {
                        left_keys: vec!["k".into()],
                        right_keys: vec!["k".into()],
                        kind: conclave_ir::ops::JoinKind::Inner,
                    },
                    in_rows.iter().sum(),
                    out_rows,
                );
                Ok((stats.simulated_time, stp))
            }
            Operator::PublicJoin { .. } => {
                let stats = self
                    .mpc
                    .estimate_public_join(in_rows.iter().sum(), out_rows);
                let stp = self.local_time(
                    &Operator::Join {
                        left_keys: vec!["k".into()],
                        right_keys: vec!["k".into()],
                        kind: conclave_ir::ops::JoinKind::Inner,
                    },
                    in_rows.iter().sum(),
                    out_rows,
                    16,
                );
                Ok((stats.simulated_time, stp))
            }
            Operator::HybridAggregate { .. } => {
                let n = in_rows.iter().sum();
                let stats = self.mpc.estimate_hybrid_aggregate(n, out_rows, cols);
                let stp = self.sequential_cost.estimate(
                    &Operator::SortBy {
                        column: "k".into(),
                        ascending: true,
                    },
                    n,
                    n,
                );
                Ok((stats.simulated_time, stp))
            }
            // Sort-elimination pay-off: a pre-sorted MPC aggregation skips the
            // oblivious sort and costs only the linear accumulation scan.
            Operator::Aggregate { group_by, .. }
                if self.config.use_sort_elimination
                    && !group_by.is_empty()
                    && plan
                        .dag
                        .node(id)
                        .ok()
                        .and_then(|n| n.inputs.first().copied())
                        .and_then(|i| plan.dag.node(i).ok())
                        .map(|n| n.sorted_by.as_deref() == group_by.first().map(|s| s.as_str()))
                        .unwrap_or(false) =>
            {
                let n: u64 = in_rows.iter().sum();
                let counts = conclave_mpc::cost::PrimitiveCounts {
                    equalities: n,
                    mults: 2 * n,
                    shuffled_elems: n * (cols + 1),
                    opened_elems: n,
                    ..Default::default()
                };
                let t = self
                    .config
                    .mpc
                    .ss_cost
                    .time_no_overhead(&counts, &self.config.mpc.network);
                Ok((t, Duration::ZERO))
            }
            // Division under the secret-sharing backend: charged as an
            // oblivious fixed-point division (≈30 comparison-equivalents per
            // row), mirroring the driver's treatment.
            Operator::Divide { .. } if self.config.mpc.kind.is_secret_sharing() => {
                let n: u64 = in_rows.iter().sum();
                let counts = conclave_mpc::cost::PrimitiveCounts {
                    comparisons: 30 * n,
                    ..Default::default()
                };
                Ok((
                    self.config
                        .mpc
                        .ss_cost
                        .time_no_overhead(&counts, &self.config.mpc.network),
                    Duration::ZERO,
                ))
            }
            _ => {
                let stats = self.mpc.estimate_op(op, in_rows, in_cols, out_rows)?;
                Ok((stats.simulated_time, Duration::ZERO))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::compile;
    use conclave_ir::builder::QueryBuilder;
    use conclave_ir::ops::AggFunc;
    use conclave_ir::party::Party;
    use conclave_ir::schema::{ColumnDef, Schema};
    use conclave_ir::trust::TrustSet;
    use conclave_ir::types::DataType;

    fn market_query() -> conclave_ir::builder::Query {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let pc = Party::new(3, "c");
        let schema = Schema::ints(&["companyID", "price"]);
        let mut q = QueryBuilder::new();
        let a = q.input("inputA", schema.clone(), pa.clone());
        let b = q.input("inputB", schema.clone(), pb);
        let c = q.input("inputC", schema, pc);
        let taxi = q.concat(&[a, b, c]);
        let proj = q.project(taxi, &["companyID", "price"]);
        let rev = q.aggregate(proj, "local_rev", AggFunc::Sum, &["companyID"], "price");
        q.collect(rev, &[pa]);
        q.build().unwrap()
    }

    fn inputs(n: u64) -> HashMap<String, u64> {
        let mut m = HashMap::new();
        m.insert("inputA".to_string(), n / 3);
        m.insert("inputB".to_string(), n / 3);
        m.insert("inputC".to_string(), n - 2 * (n / 3));
        m
    }

    fn stats() -> WorkloadStats {
        WorkloadStats {
            max_groups: Some(12),
            ..Default::default()
        }
    }

    #[test]
    fn conclave_scales_where_mpc_only_does_not() {
        // Figure 4's shape: at 100 k records the MPC-only plan already takes
        // hours, while Conclave stays in the minutes range even at 100 M.
        let query = market_query();
        let conclave_plan = compile(&query, &ConclaveConfig::standard()).unwrap();
        let mpc_plan = compile(&query, &ConclaveConfig::mpc_only()).unwrap();
        let conclave = CardinalityEstimator::new(ConclaveConfig::standard(), stats());
        let mpc_only = CardinalityEstimator::new(ConclaveConfig::mpc_only(), stats());

        let c_100m = conclave
            .estimate(&conclave_plan, &inputs(100_000_000))
            .unwrap();
        assert!(!c_100m.failed());
        assert!(
            c_100m.total_time().as_secs_f64() < 1_800.0,
            "Conclave at 100 M rows should stay under 30 min, got {:.0} s",
            c_100m.total_time().as_secs_f64()
        );

        let m_100k = mpc_only.estimate(&mpc_plan, &inputs(100_000)).unwrap();
        assert!(
            m_100k.total_time().as_secs_f64() > 900.0,
            "MPC-only at 100 k rows should be far beyond Figure 4's plotted range, got {:.0} s",
            m_100k.total_time().as_secs_f64()
        );
        let m_1m = mpc_only.estimate(&mpc_plan, &inputs(1_000_000)).unwrap();
        assert!(
            m_1m.total_time().as_secs_f64() > 2.0 * 3_600.0,
            "MPC-only at 1 M rows should exceed the two-hour cutoff, got {:.0} s",
            m_1m.total_time().as_secs_f64()
        );
        // And the gap at the same size is enormous.
        let c_100k = conclave.estimate(&conclave_plan, &inputs(100_000)).unwrap();
        assert!(m_100k.total_time() > c_100k.total_time() * 10);
    }

    #[test]
    fn estimates_grow_monotonically_with_input_size() {
        let query = market_query();
        let plan = compile(&query, &ConclaveConfig::standard()).unwrap();
        let est = CardinalityEstimator::new(ConclaveConfig::standard(), stats());
        let mut last = Duration::ZERO;
        for n in [1_000u64, 100_000, 10_000_000, 1_000_000_000] {
            let e = est.estimate(&plan, &inputs(n)).unwrap();
            assert!(e.total_time() >= last, "estimate should grow with n");
            last = e.total_time();
        }
        // Even at 1 B rows the Conclave plan finishes within ~20 minutes
        // (Figure 4's headline result).
        assert!(
            last.as_secs_f64() < 2_400.0,
            "1 B rows should stay under ~40 min, got {:.0} s",
            last.as_secs_f64()
        );
    }

    #[test]
    fn hybrid_credit_plan_beats_mpc_only_estimate() {
        let regulator = Party::new(1, "gov");
        let bank_a = Party::new(2, "a");
        let bank_b = Party::new(3, "b");
        let demo = Schema::new(vec![
            ColumnDef::new("ssn", DataType::Int),
            ColumnDef::with_trust("zip", DataType::Int, TrustSet::of([1])),
        ]);
        let bank = Schema::new(vec![
            ColumnDef::with_trust("ssn", DataType::Int, TrustSet::of([1])),
            ColumnDef::new("score", DataType::Int),
        ]);
        let mut q = QueryBuilder::new();
        let demographics = q.input("demographics", demo, regulator.clone());
        let s1 = q.input("scores1", bank.clone(), bank_a);
        let s2 = q.input("scores2", bank, bank_b);
        let scores = q.concat(&[s1, s2]);
        let joined = q.join(demographics, scores, &["ssn"], &["ssn"]);
        let total = q.aggregate(joined, "total", AggFunc::Sum, &["zip"], "score");
        q.collect(total, &[regulator]);
        let query = q.build().unwrap();

        let mut rows = HashMap::new();
        rows.insert("demographics".to_string(), 100_000u64);
        rows.insert("scores1".to_string(), 50_000);
        rows.insert("scores2".to_string(), 50_000);

        let wstats = WorkloadStats {
            max_groups: Some(100),
            ..Default::default()
        };
        let hybrid_plan = compile(&query, &ConclaveConfig::standard()).unwrap();
        let mpc_plan = compile(&query, &ConclaveConfig::mpc_only()).unwrap();
        let hybrid = CardinalityEstimator::new(ConclaveConfig::standard(), wstats)
            .estimate(&hybrid_plan, &rows)
            .unwrap();
        let full = CardinalityEstimator::new(ConclaveConfig::mpc_only(), wstats)
            .estimate(&mpc_plan, &rows)
            .unwrap();
        assert!(
            hybrid.total_time() * 5 < full.total_time(),
            "hybrid {:.0} s vs full MPC {:.0} s",
            hybrid.total_time().as_secs_f64(),
            full.total_time().as_secs_f64()
        );
    }

    #[test]
    fn garbled_backend_reports_oom_at_scale() {
        let query = market_query();
        let config =
            ConclaveConfig::mpc_only().with_mpc(conclave_mpc::backend::MpcBackendConfig::obliv_c());
        let plan = compile(&query, &config).unwrap();
        let est = CardinalityEstimator::new(config, stats());
        let e = est.estimate(&plan, &inputs(10_000_000)).unwrap();
        assert!(e.failed(), "10 M rows should exceed the GC memory limit");
        assert!(e.failure.as_ref().unwrap().1.contains("memory"));
    }

    #[test]
    fn workload_stats_group_cap() {
        let s = WorkloadStats {
            distinct_key_ratio: 0.5,
            max_groups: Some(10),
            ..Default::default()
        };
        assert_eq!(s.groups_for(1_000), 10);
        let s2 = WorkloadStats {
            distinct_key_ratio: 0.5,
            max_groups: None,
            ..Default::default()
        };
        assert_eq!(s2.groups_for(1_000), 500);
        assert_eq!(s2.groups_for(0), 1);
    }
}
