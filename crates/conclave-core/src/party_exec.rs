//! Distributed execution of MPC plan steps: one thread per computing party.
//!
//! When [`crate::config::ConclaveConfig::party_runtime`] selects a
//! distributed mode, the driver routes every secret-sharing MPC step here
//! instead of into the in-process engine. For each step this module
//!
//! 1. builds a transport mesh ([`ChannelTransport`] or a localhost
//!    [`TcpTransport`] mesh, per the configured [`PartyRuntime`]),
//! 2. spawns one thread per computing party, each constructing a
//!    [`PartyProtocol`] endpoint that holds **only that party's shares**,
//! 3. has the input-owning parties secret-share their relations in, runs the
//!    operator through real message rounds
//!    ([`conclave_mpc::runtime::execute_party_op`]), and opens the result,
//! 4. verifies that every party opened the *identical* relation (a built-in
//!    consistency check of the share arithmetic), and
//! 5. merges the per-endpoint [`NetStats`] into one measured per-link
//!    byte/round picture for [`crate::report::RunReport::net`].
//!
//! The in-process [`conclave_mpc::Protocol`] path remains the default and the
//! differential-testing oracle: a transport-executed step must reveal
//! cell-identical results.

use crate::config::PartyRuntime;
use crate::driver::DriverError;
use conclave_engine::{Relation, Table};
use conclave_ir::ops::Operator;
use conclave_mpc::cost::PrimitiveCounts;
use conclave_mpc::runtime::{
    execute_party_op, open_relation, share_relation, PartyError, PartyProtocol,
};
use conclave_mpc::MpcError;
use conclave_net::{merge_mesh_stats, ChannelTransport, NetStats, TcpTransport, Transport};

/// Outcome of one distributed MPC step: the opened result, the primitive
/// counts every party tallied, and the merged *measured* traffic.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The opened (revealed) result relation.
    pub relation: Relation,
    /// Primitive counts of the step (identical on every party).
    pub counts: PrimitiveCounts,
    /// Observed per-link bytes/messages and synchronous rounds.
    pub net: NetStats,
}

/// Executes one relational operator as a real multi-party protocol.
///
/// `parties` is the computing-party count of the configured backend, `seed`
/// must be unique per plan step (it drives the mesh's common randomness), and
/// `presorted_aggregate` mirrors the driver's §5.4 sort-elimination shortcut.
pub fn execute_op_distributed(
    op: &Operator,
    inputs: &[&Table],
    parties: u32,
    seed: u64,
    runtime: PartyRuntime,
    presorted_aggregate: bool,
) -> Result<DistributedOutcome, DriverError> {
    let input_rels: Vec<&Relation> = inputs.iter().map(|t| t.as_rows()).collect();
    match runtime {
        PartyRuntime::Simulated => Err(DriverError::Mpc(MpcError::Exec(
            "execute_op_distributed called in simulated mode".into(),
        ))),
        PartyRuntime::Channel => {
            let mesh = ChannelTransport::mesh(parties);
            run_mesh(mesh, op, &input_rels, seed, presorted_aggregate)
        }
        PartyRuntime::Tcp => {
            let mesh = TcpTransport::localhost_mesh(parties).map_err(DriverError::Transport)?;
            run_mesh(mesh, op, &input_rels, seed, presorted_aggregate)
        }
    }
}

/// The per-party program: share every input (owner `i % parties` holds input
/// `i`), execute the operator, open the result.
fn run_party(
    transport: &dyn Transport,
    op: &Operator,
    inputs: &[&Relation],
    seed: u64,
    presorted_aggregate: bool,
) -> Result<(Relation, PrimitiveCounts), PartyError> {
    let mut proto = PartyProtocol::new(transport, seed);
    let parties = proto.parties();
    let mut shared = Vec::with_capacity(inputs.len());
    for (i, rel) in inputs.iter().enumerate() {
        let owner = (i as u32) % parties;
        let cleartext = (proto.party() == owner).then_some(*rel);
        shared.push(share_relation(
            &mut proto,
            owner,
            cleartext,
            &rel.schema,
            rel.num_rows(),
        )?);
    }
    let refs: Vec<&conclave_mpc::PartyRelation> = shared.iter().collect();
    let result = execute_party_op(&mut proto, op, &refs, presorted_aggregate)?;
    let opened = open_relation(&mut proto, &result)?;
    Ok((opened, proto.counts()))
}

fn run_mesh<T: Transport>(
    mesh: Vec<T>,
    op: &Operator,
    inputs: &[&Relation],
    seed: u64,
    presorted_aggregate: bool,
) -> Result<DistributedOutcome, DriverError> {
    type PartyReturn = (Result<(Relation, PrimitiveCounts), PartyError>, NetStats);
    let outcomes: Vec<PartyReturn> = std::thread::scope(|s| {
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|transport| {
                s.spawn(move || {
                    let result = run_party(&transport, op, inputs, seed, presorted_aggregate);
                    (result, transport.stats())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("party thread panicked"))
            .collect()
    });
    let net = merge_mesh_stats(outcomes.iter().map(|(_, stats)| stats.clone()));
    let mut opened: Option<(Relation, PrimitiveCounts)> = None;
    for (result, _) in outcomes {
        let (relation, counts) = result.map_err(party_to_driver_error)?;
        match &opened {
            None => opened = Some((relation, counts)),
            Some((first, _)) => {
                if first != &relation {
                    return Err(DriverError::Mpc(MpcError::Exec(
                        "parties opened divergent results from one MPC step".into(),
                    )));
                }
            }
        }
    }
    let (relation, counts) = opened.expect("mesh has at least two parties");
    Ok(DistributedOutcome {
        relation,
        counts,
        net,
    })
}

fn party_to_driver_error(e: PartyError) -> DriverError {
    match e {
        PartyError::Net(t) => DriverError::Transport(t),
        PartyError::Proto(s) => DriverError::Mpc(MpcError::Exec(s)),
        PartyError::Unsupported(s) => DriverError::Mpc(MpcError::Unsupported(s)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::ops::AggFunc;
    use conclave_mpc::backend::{MpcBackendConfig, MpcEngine};

    fn sales_table() -> Table {
        Table::from_rows(Relation::from_ints(
            &["companyID", "price"],
            &[vec![1, 10], vec![2, 5], vec![1, 20], vec![3, 7], vec![2, 5]],
        ))
    }

    #[test]
    fn channel_step_matches_the_inprocess_oracle() {
        let table = sales_table();
        let op = Operator::Aggregate {
            group_by: vec!["companyID".into()],
            func: AggFunc::Sum,
            over: Some("price".into()),
            out: "rev".into(),
        };
        let mut oracle = MpcEngine::new(MpcBackendConfig::sharemind());
        let (expected, _) = oracle.execute_op(&op, &[table.as_rows()]).unwrap();
        let outcome =
            execute_op_distributed(&op, &[&table], 3, 42, PartyRuntime::Channel, false).unwrap();
        assert!(outcome.relation.same_rows_unordered(&expected));
        assert!(outcome.net.total_bytes() > 0, "bytes must be measured");
        assert!(outcome.net.rounds > 0, "rounds must be measured");
        assert!(outcome.counts.nonlinear_ops() > 0);
    }

    #[test]
    fn tcp_step_matches_the_channel_step() {
        let table = sales_table();
        let op = Operator::SortBy {
            column: "price".into(),
            ascending: true,
        };
        let chan =
            execute_op_distributed(&op, &[&table], 3, 7, PartyRuntime::Channel, false).unwrap();
        let tcp = execute_op_distributed(&op, &[&table], 3, 7, PartyRuntime::Tcp, false).unwrap();
        assert_eq!(chan.relation.rows, tcp.relation.rows);
        // Equal payload flow, different framing is allowed; both measured.
        assert!(tcp.net.total_bytes() > 0);
        assert_eq!(chan.net.rounds, tcp.net.rounds);
    }

    #[test]
    fn simulated_mode_is_rejected_here() {
        let table = sales_table();
        let op = Operator::Shuffle;
        assert!(matches!(
            execute_op_distributed(&op, &[&table], 3, 1, PartyRuntime::Simulated, false),
            Err(DriverError::Mpc(MpcError::Exec(_)))
        ));
    }

    #[test]
    fn unsupported_operators_surface_as_mpc_unsupported() {
        let table = sales_table();
        let op = Operator::Divide {
            out: "x".into(),
            num: conclave_ir::ops::Operand::col("price"),
            den: conclave_ir::ops::Operand::lit(2),
        };
        assert!(matches!(
            execute_op_distributed(&op, &[&table], 3, 1, PartyRuntime::Channel, false),
            Err(DriverError::Mpc(MpcError::Unsupported(_)))
        ));
    }
}
