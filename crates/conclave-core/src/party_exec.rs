//! Distributed execution of MPC plan steps: a query-lifetime party mesh.
//!
//! When [`crate::config::ConclaveConfig::party_runtime`] selects a
//! distributed mode, the driver routes the plan's secret-sharing MPC steps
//! into a [`PartyMeshRuntime`]:
//!
//! 1. **one** transport mesh ([`Mesh::channel`] or a localhost
//!    [`Mesh::tcp_localhost`], per the configured [`PartyRuntime`]) is built
//!    for the whole query — `NetStats::mesh_builds` stays at 1 however many
//!    steps the plan has;
//! 2. one worker thread per computing party is spawned **once**, each owning
//!    a session-lifetime [`PartySession`] (dealer streams, triple cache) that
//!    holds **only that party's shares**;
//! 3. the driver feeds plan steps over a work queue. Intermediate relations
//!    stay **resident** on the workers as shares between steps — they are
//!    re-used by reference, not re-shared — and results are opened only at
//!    *reveal boundaries* (steps whose output leaves the MPC pipeline);
//! 4. opens are split-phase ([`begin_open_relation`] /
//!    [`finish_open_relation`]): the broadcast goes out as soon as a step
//!    finishes, but the peer shares are collected only once the work queue
//!    drains, so a worker accepts the next step's inputs while the previous
//!    step's final open is still in flight;
//! 5. at every reveal the driver verifies that all parties opened the
//!    *identical* relation (a built-in consistency check of the share
//!    arithmetic), and [`PartyMeshRuntime::finish`] merges the per-endpoint
//!    [`NetStats`] into one measured per-link byte/round picture for
//!    [`crate::report::RunReport::net`].
//!
//! Comparison-bearing steps (sorts, joins, filters) run the bit-decomposed
//! circuits of [`conclave_mpc::circuits`], so their [`StepOutcome::counts`]
//! additionally report `bit_ands` (binary Beaver AND gates) and
//! `circuit_rounds` (masked-open / gate-level synchronous rounds); both are
//! batch-size-dependent only, so the cross-party equality check in step 5
//! covers them too.
//!
//! The in-process [`conclave_mpc::Protocol`] path remains the default and the
//! differential-testing oracle: a transport-executed plan must reveal
//! cell-identical results. [`execute_op_distributed`] survives as a
//! single-step convenience wrapper over the runtime.

use crate::config::{DealerMode, PartyRuntime};
use crate::driver::DriverError;
use conclave_engine::{Relation, Table};
use conclave_ir::ops::Operator;
use conclave_ir::schema::Schema;
use conclave_mpc::cost::PrimitiveCounts;
use conclave_mpc::dealer::{
    load_party_file, serve_party, DealerSource, MaterialBlocks, MaterialPool,
};
use conclave_mpc::runtime::{
    begin_open_relation, execute_party_op, finish_open_relation, share_relation, PartyError,
    PartyRelation, PartySession, PendingOpen,
};
use conclave_mpc::MpcError;
use conclave_net::{merge_mesh_stats, ChannelTransport, Mesh, NetStats, Transport};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;

/// Sentinel party id standing for the dealer endpoint in
/// [`MeshSummary::dealer_net`] link keys: each party's dedicated offline link
/// is re-keyed `(party, DEALER_ID)` / `(DEALER_ID, party)`.
pub const DEALER_ID: u32 = u32::MAX;

/// Whether the party-runtime protocol drivers execute this operator.
///
/// The exclusions are exactly the operators the driver orchestrates itself:
/// plan inputs/outputs, the hybrid protocols, and `Divide` (integer-only
/// secret sharing; the driver substitutes the simulated division path).
pub fn op_is_party_capable(op: &Operator) -> bool {
    !matches!(
        op,
        Operator::Input { .. }
            | Operator::Collect { .. }
            | Operator::Divide { .. }
            | Operator::HybridJoin { .. }
            | Operator::PublicJoin { .. }
            | Operator::HybridAggregate { .. }
    )
}

/// One input of a step fed to [`PartyMeshRuntime::enqueue`].
pub enum StepInput {
    /// A cleartext relation entering the MPC pipeline: the runtime picks an
    /// owning party (round-robin by input position) which secret-shares it.
    Table(Relation),
    /// The output of an earlier enqueued step, still resident on the workers
    /// as shares; consumed by reference without re-sharing.
    Resident(u32),
}

/// What every party reported for one executed step (identical across
/// parties; the runtime enforces this).
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// The step id [`PartyMeshRuntime::enqueue`] returned.
    pub step: u32,
    /// Total input rows (shared + resident).
    pub input_rows: u64,
    /// Rows of the step's result relation.
    pub output_rows: u64,
    /// Primitive counts attributable to this step alone.
    pub counts: PrimitiveCounts,
    /// The opened result — present only for reveal-boundary steps.
    pub opened: Option<Relation>,
}

/// Everything a finished query measured: per-step outcomes plus the merged
/// observed traffic of the whole mesh.
#[derive(Debug)]
pub struct MeshSummary {
    /// Outcomes ordered by step id.
    pub steps: Vec<StepOutcome>,
    /// Per-link bytes/messages, synchronous rounds, and mesh builds.
    pub net: NetStats,
    /// Traffic on the dedicated per-party dealer links (the offline phase),
    /// present only under [`DealerMode::Streamed`]. Link keys use
    /// [`DEALER_ID`] for the dealer endpoint; this traffic is accounted
    /// separately from the online mesh in [`MeshSummary::net`].
    pub dealer_net: Option<NetStats>,
}

/// A step as shipped to one worker: the owning parties' copies carry the
/// cleartext input data, everyone else's carry schema and row count only.
struct StepSpec {
    step: u32,
    op: Operator,
    inputs: Vec<WorkerInput>,
    presorted: bool,
    reveal: bool,
}

enum WorkerInput {
    Share {
        owner: u32,
        schema: Schema,
        num_rows: usize,
        data: Option<Relation>,
    },
    Resident(u32),
}

enum WorkMsg {
    Step(Box<StepSpec>),
    /// Ends the current query on a long-lived mesh: flush deferred opens,
    /// drop resident relations, acknowledge with cumulative endpoint stats.
    /// The worker (and its session, MAC key, dealer feed) stays alive for
    /// the next query.
    EndQuery,
    /// Tops up the session's preloaded stock with a fresh pool bundle
    /// (dealt under the same MAC key) before the next query runs.
    Refill(Box<MaterialBlocks>),
    Finish,
}

enum WorkerReply {
    Step(u32, Result<StepOutcome, PartyError>),
    /// Acknowledges [`WorkMsg::EndQuery`]: this endpoint's *cumulative* mesh
    /// stats (the runtime turns them into per-query deltas) plus, in
    /// streamed-dealer mode, the cumulative dealer-link stats.
    QueryEnd {
        net: NetStats,
        dealer: Option<NetStats>,
    },
}

/// What one worker thread needs to set up its session's offline feed.
enum WorkerDealer {
    /// Synthesize material from the mesh seed in-process.
    Seeded,
    /// Load this party's pregenerated dealer file.
    File(PathBuf),
    /// Stream blocks over this dedicated link (the party holds endpoint 0,
    /// the dealer server endpoint 1).
    Link(Box<dyn Transport>),
    /// Preload this party's block of a pool bundle; later queries on the
    /// same mesh are topped up via [`WorkMsg::Refill`].
    Preloaded(Box<MaterialBlocks>),
}

struct WorkerHandle {
    work: Sender<WorkMsg>,
    replies: Receiver<WorkerReply>,
    join: Option<JoinHandle<(NetStats, Option<NetStats>)>>,
}

/// A streamed-mode dealer server thread: yields whether serving succeeded
/// and the traffic observed on the dealer's end of the link.
type DealerServerHandle = JoinHandle<(Result<(), PartyError>, NetStats)>;

/// The query-lifetime distributed runtime: one mesh, one worker thread and
/// one [`PartySession`] per party, a pipelined work queue of plan steps.
/// Under a non-seeded [`DealerMode`] the offline phase runs first: per-party
/// dealer files are loaded, or a dealer server thread per party streams
/// blocks over a dedicated link for the lifetime of the query.
pub struct PartyMeshRuntime {
    workers: Vec<WorkerHandle>,
    /// In-process dealer servers (streamed mode), one per party, joined at
    /// [`PartyMeshRuntime::finish`] once the workers drop their link ends.
    dealer_servers: Vec<(u32, DealerServerHandle)>,
    next_step: u32,
    /// Replies received out of order, per worker, keyed by step.
    buffered: Vec<HashMap<u32, StepOutcome>>,
    /// Cross-party-checked outcomes, keyed by step.
    completed: BTreeMap<u32, StepOutcome>,
    /// The shared pool backing [`DealerMode::Pooled`]: each
    /// [`PartyMeshRuntime::begin_query`] draws one fresh bundle from it.
    pool: Option<MaterialPool>,
    /// First step id of the current query (step ids keep counting across
    /// queries on a long-lived mesh).
    query_start: u32,
    /// Per-worker cumulative-stats baselines as of the last
    /// [`PartyMeshRuntime::end_query`], for per-query delta attribution.
    net_base: Vec<NetStats>,
    /// Same, for the worker-side dealer-link stats (streamed mode).
    dealer_base: Vec<NetStats>,
}

impl PartyMeshRuntime {
    /// Builds the mesh (once) and spawns the per-party workers (once),
    /// synthesizing offline material from the seed ([`DealerMode::Seeded`]).
    pub fn new(parties: u32, seed: u64, runtime: PartyRuntime) -> Result<Self, DriverError> {
        Self::with_dealer(parties, seed, runtime, &DealerMode::Seeded)
    }

    /// Builds the mesh and workers with an explicit offline-material source.
    pub fn with_dealer(
        parties: u32,
        seed: u64,
        runtime: PartyRuntime,
        dealer: &DealerMode,
    ) -> Result<Self, DriverError> {
        let mesh = match runtime {
            PartyRuntime::Simulated => {
                return Err(DriverError::Mpc(MpcError::Exec(
                    "PartyMeshRuntime built in simulated mode".into(),
                )))
            }
            PartyRuntime::Channel => Mesh::channel(parties),
            PartyRuntime::Tcp => Mesh::tcp_localhost(parties).map_err(DriverError::Transport)?,
        };
        let mut dealer_servers = Vec::new();
        // Pooled mode draws the first bundle up front (blocking until the
        // refiller has one ready — a starved pool delays, never corrupts).
        let mut pool_bundle = match dealer {
            DealerMode::Pooled(pool) => {
                if pool.parties() != parties as usize {
                    return Err(DriverError::Mpc(MpcError::Exec(format!(
                        "dealer pool deals for {} parties, but the mesh has {parties}",
                        pool.parties()
                    ))));
                }
                Some(pool.take())
            }
            _ => None,
        };
        let workers: Vec<WorkerHandle> = mesh
            .into_endpoints()
            .into_iter()
            .enumerate()
            .map(|(i, net)| {
                let feed = match dealer {
                    DealerMode::Seeded => WorkerDealer::Seeded,
                    DealerMode::File(dir) => {
                        WorkerDealer::File(dir.join(format!("party-{i}.dealer")))
                    }
                    DealerMode::Pooled(_) => {
                        let bundle = pool_bundle.as_mut().expect("bundle taken above");
                        WorkerDealer::Preloaded(Box::new(std::mem::take(&mut bundle[i])))
                    }
                    DealerMode::Streamed => {
                        // One dedicated 2-endpoint link per party: the party
                        // keeps endpoint 0, the dealer server thread serves
                        // on endpoint 1 until the party drops its end.
                        let mut ends = ChannelTransport::mesh(2).into_iter();
                        let party_end = ends.next().expect("two endpoints");
                        let dealer_end = ends.next().expect("two endpoints");
                        let party = i as u32;
                        dealer_servers.push((
                            party,
                            std::thread::spawn(move || {
                                let served = serve_party(&dealer_end, party, parties, seed);
                                (served, dealer_end.stats())
                            }),
                        ));
                        WorkerDealer::Link(Box::new(party_end))
                    }
                };
                let (work_tx, work_rx) = std::sync::mpsc::channel();
                let (reply_tx, reply_rx) = std::sync::mpsc::channel();
                let join =
                    std::thread::spawn(move || worker_main(net, seed, feed, work_rx, reply_tx));
                WorkerHandle {
                    work: work_tx,
                    replies: reply_rx,
                    join: Some(join),
                }
            })
            .collect();
        let buffered = workers.iter().map(|_| HashMap::new()).collect();
        let net_base = workers.iter().map(|_| NetStats::default()).collect();
        let dealer_base = workers.iter().map(|_| NetStats::default()).collect();
        Ok(PartyMeshRuntime {
            workers,
            dealer_servers,
            next_step: 0,
            buffered,
            completed: BTreeMap::new(),
            pool: match dealer {
                DealerMode::Pooled(pool) => Some(pool.clone()),
                _ => None,
            },
            query_start: 0,
            net_base,
            dealer_base,
        })
    }

    /// Number of computing parties in the mesh.
    pub fn parties(&self) -> u32 {
        self.workers.len() as u32
    }

    /// Enqueues one plan step on every worker and returns its step id
    /// without waiting for execution: workers drain the queue at their own
    /// pace, so the driver can keep feeding steps while earlier opens are in
    /// flight. `reveal` marks a reveal boundary — the step's result is opened
    /// and becomes retrievable via [`PartyMeshRuntime::wait_opened`].
    pub fn enqueue(
        &mut self,
        op: &Operator,
        inputs: Vec<StepInput>,
        presorted: bool,
        reveal: bool,
    ) -> Result<u32, DriverError> {
        let step = self.next_step;
        self.next_step += 1;
        let parties = self.parties();
        for (w, worker) in self.workers.iter().enumerate() {
            let spec_inputs: Vec<WorkerInput> = inputs
                .iter()
                .enumerate()
                .map(|(i, input)| match input {
                    StepInput::Table(rel) => {
                        let owner = (i as u32) % parties;
                        WorkerInput::Share {
                            owner,
                            schema: rel.schema.clone(),
                            num_rows: rel.num_rows(),
                            data: (w as u32 == owner).then(|| rel.clone()),
                        }
                    }
                    StepInput::Resident(s) => WorkerInput::Resident(*s),
                })
                .collect();
            let spec = StepSpec {
                step,
                op: op.clone(),
                inputs: spec_inputs,
                presorted,
                reveal,
            };
            worker
                .work
                .send(WorkMsg::Step(Box::new(spec)))
                .map_err(|_| {
                    DriverError::Mpc(MpcError::Exec(format!("party worker {w} exited early")))
                })?;
        }
        Ok(step)
    }

    /// Blocks until every party has opened step `step`, cross-checks that
    /// all opened relations are identical, and returns the relation.
    pub fn wait_opened(&mut self, step: u32) -> Result<Relation, DriverError> {
        let outcome = self.collect_step(step)?;
        outcome.opened.clone().ok_or_else(|| {
            DriverError::Mpc(MpcError::Exec(format!(
                "step {step} was not enqueued as a reveal step"
            )))
        })
    }

    /// Prepares a long-lived mesh for its next query: in pooled-dealer mode,
    /// draws one fresh bundle from the pool (blocking if the refiller lags)
    /// and tops up every worker's session. A no-op under other dealer modes
    /// — their feeds are query-unbounded by construction.
    pub fn begin_query(&mut self) -> Result<(), DriverError> {
        let Some(pool) = self.pool.clone() else {
            return Ok(());
        };
        let mut bundle = pool.take();
        for (i, w) in self.workers.iter().enumerate() {
            let blocks = std::mem::take(&mut bundle[i]);
            w.work
                .send(WorkMsg::Refill(Box::new(blocks)))
                .map_err(|_| {
                    DriverError::Mpc(MpcError::Exec(format!("party worker {i} exited early")))
                })?;
        }
        Ok(())
    }

    /// Ends the current query **without** tearing down the mesh: flushes all
    /// in-flight opens, drains this query's step outcomes, drops the workers'
    /// resident relations, and returns a [`MeshSummary`] covering *only* the
    /// traffic since the previous `end_query` (so `mesh_builds` is 1 for the
    /// first query on a mesh and 0 for every later one). The workers, their
    /// sessions and the MAC key survive for the next query.
    pub fn end_query(&mut self) -> Result<MeshSummary, DriverError> {
        for (i, w) in self.workers.iter().enumerate() {
            w.work.send(WorkMsg::EndQuery).map_err(|_| {
                DriverError::Mpc(MpcError::Exec(format!("party worker {i} exited early")))
            })?;
        }
        for step in self.query_start..self.next_step {
            self.collect_step(step)?;
        }
        let mut mesh_stats = Vec::new();
        let mut dealer_net: Option<NetStats> = None;
        for w in 0..self.workers.len() {
            let (net, dealer) = self.take_query_end(w)?;
            mesh_stats.push(net.since(&self.net_base[w]));
            self.net_base[w] = net;
            if let Some(d) = dealer {
                let delta = d.since(&self.dealer_base[w]);
                self.dealer_base[w] = d;
                dealer_net
                    .get_or_insert_with(NetStats::default)
                    .merge(&remap_dealer_stats(w as u32, delta));
            }
        }
        let steps: Vec<StepOutcome> = (self.query_start..self.next_step)
            .filter_map(|s| self.completed.remove(&s))
            .collect();
        self.query_start = self.next_step;
        Ok(MeshSummary {
            steps,
            net: merge_mesh_stats(mesh_stats),
            dealer_net,
        })
    }

    /// Receives worker `w`'s [`WorkerReply::QueryEnd`] acknowledgement,
    /// buffering any step replies that are still in flight ahead of it.
    fn take_query_end(&mut self, w: usize) -> Result<(NetStats, Option<NetStats>), DriverError> {
        loop {
            match self.workers[w].replies.recv() {
                Ok(WorkerReply::QueryEnd { net, dealer }) => return Ok((net, dealer)),
                Ok(WorkerReply::Step(s, Ok(outcome))) => {
                    self.buffered[w].insert(s, outcome);
                }
                Ok(WorkerReply::Step(_, Err(e))) => return Err(party_to_driver_error(e)),
                Err(_) => {
                    return Err(DriverError::Mpc(MpcError::Exec(format!(
                        "party worker {w} exited before acknowledging query end"
                    ))))
                }
            }
        }
    }

    /// Flushes all in-flight opens, drains every outstanding step outcome,
    /// joins the workers, and returns the per-step outcomes together with
    /// the merged measured traffic (since the last
    /// [`PartyMeshRuntime::end_query`], if any was run).
    pub fn finish(mut self) -> Result<MeshSummary, DriverError> {
        for w in &self.workers {
            let _ = w.work.send(WorkMsg::Finish);
        }
        let mut first_err = None;
        for step in self.query_start..self.next_step {
            if let Err(e) = self.collect_step(step) {
                first_err = Some(e);
                break;
            }
        }
        // Join every worker even on error, so no thread outlives the query.
        let mut mesh_stats = Vec::new();
        let mut dealer_net: Option<NetStats> = None;
        for (i, w) in self.workers.iter_mut().enumerate() {
            if let Some(j) = w.join.take() {
                let (net, dealer) = j.join().expect("party worker panicked");
                // Baselines are empty unless `end_query` ran: a one-shot mesh
                // reports its full traffic, a long-lived one only the
                // residual since its last per-query summary.
                mesh_stats.push(net.since(&self.net_base[i]));
                if let Some(d) = dealer {
                    dealer_net
                        .get_or_insert_with(NetStats::default)
                        .merge(&remap_dealer_stats(i as u32, d.since(&self.dealer_base[i])));
                }
            }
        }
        // The workers dropped their link ends above, so the dealer servers
        // have observed the disconnect and returned.
        for (party, j) in self.dealer_servers.drain(..) {
            let (served, stats) = j.join().expect("dealer server panicked");
            if let Err(e) = served {
                if first_err.is_none() {
                    first_err = Some(party_to_driver_error(e));
                }
            }
            dealer_net
                .get_or_insert_with(NetStats::default)
                .merge(&remap_dealer_stats(party, stats));
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(MeshSummary {
            steps: std::mem::take(&mut self.completed).into_values().collect(),
            net: merge_mesh_stats(mesh_stats),
            dealer_net,
        })
    }

    /// Ensures step `step`'s outcome has been received from every worker and
    /// cross-checked (opened relations and primitive counts must be
    /// identical on all parties).
    fn collect_step(&mut self, step: u32) -> Result<&StepOutcome, DriverError> {
        if !self.completed.contains_key(&step) {
            let mut agreed: Option<StepOutcome> = None;
            for w in 0..self.workers.len() {
                let outcome = self.take_reply(w, step)?;
                match &agreed {
                    None => agreed = Some(outcome),
                    Some(first) => {
                        if first.opened != outcome.opened
                            || first.counts != outcome.counts
                            || first.output_rows != outcome.output_rows
                        {
                            return Err(DriverError::Mpc(MpcError::Exec(
                                "parties opened divergent results from one MPC step".into(),
                            )));
                        }
                    }
                }
            }
            let outcome = agreed.expect("mesh has at least two parties");
            self.completed.insert(step, outcome);
        }
        Ok(&self.completed[&step])
    }

    /// Receives worker `w`'s reply for `step`, buffering replies for other
    /// steps (reveal-boundary outcomes are flushed lazily, so replies can
    /// arrive out of step order).
    fn take_reply(&mut self, w: usize, step: u32) -> Result<StepOutcome, DriverError> {
        if let Some(outcome) = self.buffered[w].remove(&step) {
            return Ok(outcome);
        }
        loop {
            let reply = self.workers[w].replies.recv().map_err(|_| {
                DriverError::Mpc(MpcError::Exec(format!(
                    "party worker {w} exited before reporting step {step}"
                )))
            })?;
            let (s, result) = match reply {
                WorkerReply::Step(s, result) => (s, result),
                WorkerReply::QueryEnd { .. } => {
                    return Err(DriverError::Mpc(MpcError::Exec(format!(
                        "party worker {w} ended the query before reporting step {step}"
                    ))))
                }
            };
            let outcome = result.map_err(party_to_driver_error)?;
            if s == step {
                return Ok(outcome);
            }
            self.buffered[w].insert(s, outcome);
        }
    }
}

impl Drop for PartyMeshRuntime {
    fn drop(&mut self) {
        // On early teardown (driver error paths): ask every worker to flush
        // and exit, then wait for it. All workers received identical work
        // queues, so their remaining collective steps stay aligned and
        // terminate; transport timeouts bound the wait if a peer died.
        for w in &self.workers {
            let _ = w.work.send(WorkMsg::Finish);
        }
        for w in &mut self.workers {
            if let Some(j) = w.join.take() {
                let _ = j.join();
            }
        }
        // Dealer servers exit once their party's worker (link owner) is gone.
        for (_, j) in self.dealer_servers.drain(..) {
            let _ = j.join();
        }
    }
}

/// Re-keys one party's 2-endpoint dealer-link stats (party = endpoint 0,
/// dealer = endpoint 1) into mesh-wide ids: the party's real id and
/// [`DEALER_ID`]. `mesh_builds` is dropped — the dedicated links are part of
/// the offline phase, not extra online mesh constructions.
fn remap_dealer_stats(party: u32, stats: NetStats) -> NetStats {
    let mut out = NetStats {
        rounds: stats.rounds,
        bytes_by_kind: stats.bytes_by_kind,
        ..NetStats::default()
    };
    for ((from, to), link) in stats.links {
        let f = if from == 1 { DEALER_ID } else { party };
        let t = if to == 1 { DEALER_ID } else { party };
        out.links.insert((f, t), link);
    }
    out
}

/// A reveal whose broadcast went out when the step executed, still waiting
/// for peer shares. Held on the worker until the work queue drains.
struct DeferredOpen {
    outcome: StepOutcome,
    pending: PendingOpen,
}

/// The per-party worker: one [`PartySession`] for the whole query, resident
/// shares between steps, deferred opens flushed when the queue runs dry.
/// Returns the online mesh stats plus, in streamed-dealer mode, this
/// endpoint's request traffic on its dedicated dealer link.
fn worker_main(
    net: Box<dyn Transport>,
    seed: u64,
    dealer: WorkerDealer,
    work: Receiver<WorkMsg>,
    replies: Sender<WorkerReply>,
) -> (NetStats, Option<NetStats>) {
    let source = match dealer {
        WorkerDealer::Seeded => Ok(DealerSource::Seeded),
        WorkerDealer::File(path) => {
            load_party_file(&path).map(|b| DealerSource::Preloaded(Box::new(b)))
        }
        WorkerDealer::Link(link) => Ok(DealerSource::Streamed { link, dealer: 1 }),
        WorkerDealer::Preloaded(blocks) => Ok(DealerSource::Preloaded(blocks)),
    };
    let mut sess = match source.and_then(|s| PartySession::with_dealer(&*net, seed, s)) {
        Ok(sess) => sess,
        Err(e) => {
            // The offline phase failed (unreadable file, dead dealer): fail
            // every queued step so the driver surfaces it, then exit.
            let msg = format!("offline phase failed: {e}");
            while let Ok(m) = work.recv() {
                match m {
                    WorkMsg::Finish => break,
                    WorkMsg::Step(spec) => {
                        let _ = replies.send(WorkerReply::Step(
                            spec.step,
                            Err(PartyError::Proto(msg.clone())),
                        ));
                    }
                    WorkMsg::EndQuery => {
                        let _ = replies.send(WorkerReply::QueryEnd {
                            net: net.stats(),
                            dealer: None,
                        });
                    }
                    WorkMsg::Refill(_) => {}
                }
            }
            return (net.stats(), None);
        }
    };
    let mut resident: HashMap<u32, PartyRelation> = HashMap::new();
    let mut deferred: Vec<DeferredOpen> = Vec::new();
    // A failed refill (wrong mesh, foreign MAC key) poisons the worker: the
    // material in the session is still sound, but the driver's expectation
    // ("this query was topped up") is not, so every subsequent step fails
    // with the stored reason until the mesh is torn down.
    let mut refill_err: Option<String> = None;
    loop {
        // Pipelining: only collect in-flight opens once no further step is
        // queued — the next step's protocol rounds take priority.
        let msg = match work.try_recv() {
            Ok(m) => m,
            Err(TryRecvError::Empty) => {
                flush_opens(&mut sess, &mut deferred, &replies);
                match work.recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            }
            Err(TryRecvError::Disconnected) => break,
        };
        match msg {
            WorkMsg::Finish => break,
            WorkMsg::EndQuery => {
                flush_opens(&mut sess, &mut deferred, &replies);
                resident.clear();
                let _ = replies.send(WorkerReply::QueryEnd {
                    net: net.stats(),
                    dealer: sess.dealer_stats(),
                });
            }
            WorkMsg::Refill(blocks) => {
                if let Err(e) = sess.refill(*blocks) {
                    refill_err = Some(format!("dealer refill failed: {e}"));
                }
            }
            WorkMsg::Step(spec) => {
                let step = spec.step;
                if let Some(msg) = &refill_err {
                    let _ =
                        replies.send(WorkerReply::Step(step, Err(PartyError::Proto(msg.clone()))));
                    continue;
                }
                let before = sess.counts();
                match run_step(&mut sess, &resident, &spec) {
                    Ok((input_rows, result, pending)) => {
                        let outcome = StepOutcome {
                            step,
                            input_rows,
                            output_rows: result.num_rows() as u64,
                            counts: sess.counts().since(&before),
                            opened: None,
                        };
                        resident.insert(step, result);
                        match pending {
                            Some(pending) => deferred.push(DeferredOpen { outcome, pending }),
                            None => {
                                let _ = replies.send(WorkerReply::Step(step, Ok(outcome)));
                            }
                        }
                    }
                    Err(e) => {
                        // Step failures are deterministic (validation happens
                        // before any communication), so every party fails the
                        // same step identically and the mesh stays aligned.
                        let _ = replies.send(WorkerReply::Step(step, Err(e)));
                    }
                }
            }
        }
    }
    flush_opens(&mut sess, &mut deferred, &replies);
    let dealer_net = sess.dealer_stats();
    (net.stats(), dealer_net)
}

/// Shares fresh inputs, resolves resident ones, executes the operator, and —
/// for reveal boundaries — *begins* the open (broadcast sent, peer shares
/// left in flight) under the same step context.
fn run_step(
    sess: &mut PartySession,
    resident: &HashMap<u32, PartyRelation>,
    spec: &StepSpec,
) -> Result<(u64, PartyRelation, Option<PendingOpen>), PartyError> {
    let mut proto = sess.step(spec.step);
    let mut input_rows = 0u64;
    let mut fresh: Vec<Option<PartyRelation>> = Vec::with_capacity(spec.inputs.len());
    for input in &spec.inputs {
        match input {
            WorkerInput::Share {
                owner,
                schema,
                num_rows,
                data,
            } => {
                input_rows += *num_rows as u64;
                fresh.push(Some(share_relation(
                    &mut proto,
                    *owner,
                    data.as_ref(),
                    schema,
                    *num_rows,
                )?));
            }
            WorkerInput::Resident(s) => {
                let rel = resident.get(s).ok_or_else(|| {
                    PartyError::Proto(format!(
                        "step {} references step {s}, which is not resident",
                        spec.step
                    ))
                })?;
                input_rows += rel.num_rows() as u64;
                fresh.push(None);
            }
        }
    }
    let refs: Vec<&PartyRelation> = spec
        .inputs
        .iter()
        .zip(&fresh)
        .map(|(input, f)| match input {
            WorkerInput::Resident(s) => &resident[s],
            WorkerInput::Share { .. } => f.as_ref().expect("shared above"),
        })
        .collect();
    let result = execute_party_op(&mut proto, &spec.op, &refs, spec.presorted)?;
    let pending = spec
        .reveal
        .then(|| begin_open_relation(&mut proto, &result))
        .transpose()?;
    Ok((input_rows, result, pending))
}

/// Collects every deferred open (FIFO — all parties flush in enqueue order,
/// keeping receives aligned), runs the deferred SPDZ MAC check over
/// everything opened since the last check, and reports the completed
/// outcomes. Every reveal boundary passes through
/// [`PartySession::check_integrity`] — a tampered or mis-MAC'd open turns
/// into [`PartyError::Integrity`] here instead of leaking a wrong value.
fn flush_opens(
    sess: &mut PartySession,
    deferred: &mut Vec<DeferredOpen>,
    replies: &Sender<WorkerReply>,
) {
    for d in deferred.drain(..) {
        let step = d.outcome.step;
        let before = sess.counts();
        let reply = match finish_open_relation(sess, d.pending)
            .and_then(|rel| sess.check_integrity().map(|()| rel))
        {
            Ok(rel) => {
                let mut outcome = d.outcome;
                outcome.opened = Some(rel);
                // The collected open and its MAC check run outside the step
                // context; fold their counts into the revealing step so the
                // cross-party counts-equality check still covers them.
                outcome.counts.merge(&sess.counts().since(&before));
                Ok(outcome)
            }
            Err(e) => Err(e),
        };
        let _ = replies.send(WorkerReply::Step(step, reply));
    }
}

/// Outcome of one distributed MPC step: the opened result, the primitive
/// counts every party tallied, and the merged *measured* traffic.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The opened (revealed) result relation.
    pub relation: Relation,
    /// Primitive counts of the step (identical on every party).
    pub counts: PrimitiveCounts,
    /// Observed per-link bytes/messages and synchronous rounds.
    pub net: NetStats,
}

/// Executes one relational operator as a real multi-party protocol — a
/// single-step convenience wrapper over [`PartyMeshRuntime`] (the driver
/// feeds whole plans through one runtime instead).
///
/// `parties` is the computing-party count of the configured backend, `seed`
/// drives the mesh's common randomness, and `presorted_aggregate` mirrors
/// the driver's §5.4 sort-elimination shortcut.
pub fn execute_op_distributed(
    op: &Operator,
    inputs: &[&Table],
    parties: u32,
    seed: u64,
    runtime: PartyRuntime,
    presorted_aggregate: bool,
) -> Result<DistributedOutcome, DriverError> {
    let mut rt = PartyMeshRuntime::new(parties, seed, runtime)?;
    let step_inputs: Vec<StepInput> = inputs
        .iter()
        .map(|t| StepInput::Table(t.as_rows().clone()))
        .collect();
    let step = rt.enqueue(op, step_inputs, presorted_aggregate, true)?;
    let relation = rt.wait_opened(step)?;
    let summary = rt.finish()?;
    let counts = summary.steps[0].counts;
    Ok(DistributedOutcome {
        relation,
        counts,
        net: summary.net,
    })
}

fn party_to_driver_error(e: PartyError) -> DriverError {
    match e {
        PartyError::Net(t) => DriverError::Transport(t),
        PartyError::Proto(s) => DriverError::Mpc(MpcError::Exec(s)),
        PartyError::Unsupported(s) => DriverError::Mpc(MpcError::Unsupported(s)),
        PartyError::Integrity(s) => {
            DriverError::Mpc(MpcError::Exec(format!("integrity violation: {s}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::ops::AggFunc;
    use conclave_mpc::backend::{MpcBackendConfig, MpcEngine};

    fn sales_table() -> Table {
        Table::from_rows(Relation::from_ints(
            &["companyID", "price"],
            &[vec![1, 10], vec![2, 5], vec![1, 20], vec![3, 7], vec![2, 5]],
        ))
    }

    #[test]
    fn channel_step_matches_the_inprocess_oracle() {
        let table = sales_table();
        let op = Operator::Aggregate {
            group_by: vec!["companyID".into()],
            func: AggFunc::Sum,
            over: Some("price".into()),
            out: "rev".into(),
        };
        let mut oracle = MpcEngine::new(MpcBackendConfig::sharemind());
        let (expected, _) = oracle.execute_op(&op, &[table.as_rows()]).unwrap();
        let outcome =
            execute_op_distributed(&op, &[&table], 3, 42, PartyRuntime::Channel, false).unwrap();
        assert!(outcome.relation.same_rows_unordered(&expected));
        assert!(outcome.net.total_bytes() > 0, "bytes must be measured");
        assert!(outcome.net.rounds > 0, "rounds must be measured");
        assert_eq!(outcome.net.mesh_builds, 1);
        assert!(outcome.counts.nonlinear_ops() > 0);
    }

    #[test]
    fn tcp_step_matches_the_channel_step() {
        let table = sales_table();
        let op = Operator::SortBy {
            column: "price".into(),
            ascending: true,
        };
        let chan =
            execute_op_distributed(&op, &[&table], 3, 7, PartyRuntime::Channel, false).unwrap();
        let tcp = execute_op_distributed(&op, &[&table], 3, 7, PartyRuntime::Tcp, false).unwrap();
        assert_eq!(chan.relation.rows, tcp.relation.rows);
        // Equal payload flow, different framing is allowed; both measured.
        assert!(tcp.net.total_bytes() > 0);
        assert_eq!(chan.net.rounds, tcp.net.rounds);
    }

    #[test]
    fn comparison_steps_report_circuit_gate_counts() {
        let table = sales_table();
        let op = Operator::SortBy {
            column: "price".into(),
            ascending: true,
        };
        let outcome =
            execute_op_distributed(&op, &[&table], 3, 7, PartyRuntime::Channel, false).unwrap();
        // Sorting drives bit-decomposed less-than circuits: the step's counts
        // must carry the measured AND gates and gate-level rounds, not just
        // the flat comparison tally. (Cross-party equality of these counts is
        // enforced by `collect_step` for every run, this test included.)
        assert!(outcome.counts.comparisons > 0);
        assert!(
            outcome.counts.bit_ands > 0,
            "circuit comparisons must tally binary AND gates"
        );
        assert!(
            outcome.counts.circuit_rounds > 0,
            "circuit comparisons must tally gate-level rounds"
        );
    }

    #[test]
    fn simulated_mode_is_rejected_here() {
        let table = sales_table();
        let op = Operator::Shuffle;
        assert!(matches!(
            execute_op_distributed(&op, &[&table], 3, 1, PartyRuntime::Simulated, false),
            Err(DriverError::Mpc(MpcError::Exec(_)))
        ));
    }

    #[test]
    fn unsupported_operators_surface_as_mpc_unsupported() {
        let table = sales_table();
        let op = Operator::Divide {
            out: "x".into(),
            num: conclave_ir::ops::Operand::col("price"),
            den: conclave_ir::ops::Operand::lit(2),
        };
        assert!(matches!(
            execute_op_distributed(&op, &[&table], 3, 1, PartyRuntime::Channel, false),
            Err(DriverError::Mpc(MpcError::Unsupported(_)))
        ));
    }

    fn run_with_dealer(dealer: &DealerMode) -> (Relation, MeshSummary) {
        let table = sales_table();
        let op = Operator::Aggregate {
            group_by: vec!["companyID".into()],
            func: AggFunc::Sum,
            over: Some("price".into()),
            out: "rev".into(),
        };
        let mut rt = PartyMeshRuntime::with_dealer(3, 42, PartyRuntime::Channel, dealer).unwrap();
        let step = rt
            .enqueue(
                &op,
                vec![StepInput::Table(table.as_rows().clone())],
                false,
                true,
            )
            .unwrap();
        let opened = rt.wait_opened(step).unwrap();
        let summary = rt.finish().unwrap();
        (opened, summary)
    }

    #[test]
    fn dealer_file_mode_matches_the_seeded_runtime() {
        let dir = std::env::temp_dir().join(format!(
            "conclave-dealer-files-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        conclave_mpc::dealer::write_party_files(&dir, 42, 3, Default::default()).unwrap();
        let (seeded, seeded_summary) = run_with_dealer(&DealerMode::Seeded);
        let (filed, filed_summary) = run_with_dealer(&DealerMode::File(dir.clone()));
        std::fs::remove_dir_all(&dir).ok();
        // Same result set (row order may differ: the seeded mode's α draw
        // shifts the common stream, so shuffle permutations differ).
        assert!(seeded.same_rows_unordered(&filed), "got\n{filed}");
        // Pregenerated files involve no dedicated links and no extra mesh.
        assert!(filed_summary.dealer_net.is_none());
        assert_eq!(filed_summary.net.mesh_builds, 1);
        // Both modes check the reveal: the MAC check is part of the step.
        for s in [&seeded_summary, &filed_summary] {
            assert!(
                s.steps[0].counts.mac_checks >= 1,
                "reveal boundary must run the deferred MAC check"
            );
        }
    }

    #[test]
    fn streamed_dealer_attributes_offline_traffic_separately() {
        let (seeded, _) = run_with_dealer(&DealerMode::Seeded);
        let (streamed, summary) = run_with_dealer(&DealerMode::Streamed);
        assert!(seeded.same_rows_unordered(&streamed), "got\n{streamed}");
        assert_eq!(summary.net.mesh_builds, 1, "dealer links are not a mesh");
        let dealer = summary.dealer_net.expect("streamed mode measures links");
        assert!(dealer.total_bytes() > 0, "offline blocks crossed the links");
        assert!(
            dealer
                .links
                .keys()
                .any(|&(f, t)| f == DEALER_ID || t == DEALER_ID),
            "dealer traffic is keyed by the dealer sentinel: {:?}",
            dealer.links.keys().collect::<Vec<_>>()
        );
        // Offline traffic never leaks into the online accounting.
        assert!(summary
            .net
            .links
            .keys()
            .all(|&(f, t)| f != DEALER_ID && t != DEALER_ID));
    }

    #[test]
    fn missing_dealer_files_surface_as_errors() {
        let dir = std::env::temp_dir().join("conclave-no-such-dealer-dir");
        let table = sales_table();
        let op = Operator::Shuffle;
        let mut rt =
            PartyMeshRuntime::with_dealer(3, 42, PartyRuntime::Channel, &DealerMode::File(dir))
                .unwrap();
        let step = rt
            .enqueue(
                &op,
                vec![StepInput::Table(table.as_rows().clone())],
                false,
                true,
            )
            .unwrap();
        let err = rt.wait_opened(step).unwrap_err();
        assert!(
            format!("{err:?}").contains("offline phase failed"),
            "got {err:?}"
        );
    }

    #[test]
    fn pooled_mesh_runs_many_queries_on_one_build() {
        use conclave_mpc::dealer::MaterialSpec;
        let table = sales_table();
        let op = Operator::Aggregate {
            group_by: vec!["companyID".into()],
            func: AggFunc::Sum,
            over: Some("price".into()),
            out: "rev".into(),
        };
        let mut oracle = MpcEngine::new(MpcBackendConfig::sharemind());
        let (expected, _) = oracle.execute_op(&op, &[table.as_rows()]).unwrap();
        let spec = MaterialSpec {
            triples: 256,
            bit_triples: 512,
            shared_bits: 256,
            dabits: 64,
            input_masks: 64,
        };
        let pool = MaterialPool::start(42, 3, spec, 2);
        let mut rt = PartyMeshRuntime::with_dealer(
            3,
            42,
            PartyRuntime::Channel,
            &DealerMode::Pooled(pool.clone()),
        )
        .unwrap();
        let mut mesh_builds = 0;
        for q in 0..3 {
            if q > 0 {
                // Later queries top the long-lived sessions up with a fresh
                // bundle (same MAC key) instead of rebuilding anything.
                rt.begin_query().unwrap();
            }
            let step = rt
                .enqueue(
                    &op,
                    vec![StepInput::Table(table.as_rows().clone())],
                    false,
                    true,
                )
                .unwrap();
            let opened = rt.wait_opened(step).unwrap();
            assert!(
                opened.same_rows_unordered(&expected),
                "query {q}:\n{opened}"
            );
            let summary = rt.end_query().unwrap();
            assert_eq!(summary.steps.len(), 1, "per-query outcomes only");
            assert!(summary.net.total_bytes() > 0, "each query is attributed");
            mesh_builds += summary.net.mesh_builds;
        }
        assert_eq!(mesh_builds, 1, "one mesh for all queries, not one each");
        drop(rt);
        assert!(pool.stats().taken >= 3, "one bundle per query");
    }

    #[test]
    fn resident_relations_pipeline_across_steps_on_one_mesh() {
        let table = sales_table();
        let filter_op = Operator::SortBy {
            column: "price".into(),
            ascending: true,
        };
        let agg_op = Operator::Aggregate {
            group_by: vec!["companyID".into()],
            func: AggFunc::Sum,
            over: Some("price".into()),
            out: "rev".into(),
        };
        // Oracle: the same two steps through the in-process engine.
        let mut oracle = MpcEngine::new(MpcBackendConfig::sharemind());
        let (sorted, _) = oracle.execute_op(&filter_op, &[table.as_rows()]).unwrap();
        let (expected, _) = oracle.execute_op(&agg_op, &[&sorted]).unwrap();

        let mut rt = PartyMeshRuntime::new(3, 11, PartyRuntime::Channel).unwrap();
        let s0 = rt
            .enqueue(
                &filter_op,
                vec![StepInput::Table(table.as_rows().clone())],
                false,
                false,
            )
            .unwrap();
        let s1 = rt
            .enqueue(&agg_op, vec![StepInput::Resident(s0)], false, true)
            .unwrap();
        let opened = rt.wait_opened(s1).unwrap();
        assert!(opened.same_rows_unordered(&expected), "got\n{opened}");
        let summary = rt.finish().unwrap();
        assert_eq!(summary.net.mesh_builds, 1, "one mesh for the whole query");
        assert_eq!(summary.steps.len(), 2);
        assert!(summary.steps[0].opened.is_none(), "no open between steps");
        // The intermediate stayed resident: step 0's result was never opened
        // (sorting opens nothing), so every opened element belongs to the
        // reveal boundary.
        assert_eq!(summary.steps[0].counts.opened_elems, 0);
        assert!(summary.steps[1].opened.is_some());
    }
}
