//! The multi-party driver: executes a compiled [`PhysicalPlan`].
//!
//! The driver plays the role of the per-party Conclave agents (§4.1): it
//! walks the compiled DAG in topological order and dispatches every node to
//! the engine its execution site calls for — a cleartext [`Executor`]
//! (sequential or data-parallel, row or columnar) for local and STP steps,
//! the MPC engine for operators inside the MPC frontier, and the dedicated
//! hybrid-protocol implementations for the operators §5.3 introduces.
//!
//! All intermediate results move through the unified [`Table`] data plane:
//! the result store is a `HashMap<NodeId, Table>`, executors produce tables
//! in their native representation, and row↔columnar conversion happens only
//! where data genuinely changes domain (input binding, secret-share reveals,
//! result collection). The per-run conversion tally lands in
//! [`RunReport::conversions`]. Along the way the driver accumulates simulated
//! per-party runtimes, MPC statistics, network traffic, and a *leakage audit*
//! that checks every cleartext reveal against the authorization the trust
//! analysis derived.

use crate::analysis;
use crate::config::{ConclaveConfig, LocalBackend};
use crate::hybrid_exec;
use crate::party_exec;
use crate::plan::PhysicalPlan;
use crate::report::RunReport;
use conclave_engine::{
    execute, sequential_executor, ConversionCounts, EngineError, Executor, Relation, Table,
};
use conclave_ir::dag::NodeId;
use conclave_ir::error::IrError;
use conclave_ir::ops::{ExecSite, Operator};
use conclave_ir::party::PartyId;
use conclave_mpc::backend::{MpcEngine, MpcError};
use conclave_mpc::oblivious;
use conclave_parallel::ParallelEngine;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Errors raised during plan execution.
#[derive(Debug)]
pub enum DriverError {
    /// An input relation named by the query was not bound to data.
    MissingInput(String),
    /// The SQL text passed to [`Driver::run_sql`] failed to parse or lower.
    Sql(conclave_sql::SqlError),
    /// The query lowered from SQL failed to compile under the driver's
    /// configuration.
    Compile(crate::plan::CompileError),
    /// A cleartext engine error (typed; the source chain is preserved).
    Engine(EngineError),
    /// An MPC backend error (including garbled-circuit out-of-memory).
    Mpc(MpcError),
    /// An IR-level error.
    Ir(IrError),
    /// A transport failure in the distributed party runtime (timeout,
    /// disconnect, socket I/O).
    Transport(conclave_net::TransportError),
    /// The plan would reveal data to a party that the trust analysis does not
    /// authorize — the driver refuses to execute it.
    UnauthorizedReveal {
        /// Offending node.
        node: NodeId,
        /// Party that would receive the data.
        to_party: PartyId,
        /// Description of the data.
        what: String,
    },
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::MissingInput(n) => write!(f, "no data bound for input relation `{n}`"),
            DriverError::Sql(e) => write!(f, "SQL frontend error: {e}"),
            DriverError::Compile(e) => write!(f, "compilation error: {e}"),
            DriverError::Engine(e) => write!(f, "cleartext engine error: {e}"),
            DriverError::Mpc(e) => write!(f, "MPC error: {e}"),
            DriverError::Ir(e) => write!(f, "IR error: {e}"),
            DriverError::Transport(e) => write!(f, "party-runtime transport error: {e}"),
            DriverError::UnauthorizedReveal {
                node,
                to_party,
                what,
            } => write!(
                f,
                "refusing to reveal {what} of node #{node} to unauthorized party P{to_party}"
            ),
        }
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriverError::Engine(e) => Some(e),
            DriverError::Mpc(e) => Some(e),
            DriverError::Ir(e) => Some(e),
            DriverError::Transport(e) => Some(e),
            DriverError::Sql(e) => Some(e),
            DriverError::Compile(e) => Some(e),
            DriverError::MissingInput(_) | DriverError::UnauthorizedReveal { .. } => None,
        }
    }
}

impl From<EngineError> for DriverError {
    fn from(e: EngineError) -> Self {
        DriverError::Engine(e)
    }
}

impl From<MpcError> for DriverError {
    fn from(e: MpcError) -> Self {
        DriverError::Mpc(e)
    }
}

impl From<IrError> for DriverError {
    fn from(e: IrError) -> Self {
        DriverError::Ir(e)
    }
}

/// Executes compiled plans over bound input data.
pub struct Driver {
    config: ConclaveConfig,
    mpc: MpcEngine,
    /// Executor for local per-party cleartext steps (site-selected backend).
    local_exec: Box<dyn Executor + Send + Sync>,
    /// Executor for STP/helper steps of hybrid protocols (always sequential:
    /// the trusted party runs them single-site).
    stp_exec: Box<dyn Executor + Send + Sync>,
    /// When [`Driver::retain_mesh`] is on: the party mesh kept alive between
    /// [`Driver::run_tables`] calls, so repeated queries reuse one set of
    /// workers, sessions and MAC key (`mesh_builds` stays at 1). Errors drop
    /// it — the next run starts from a clean mesh.
    persistent_mesh: Option<party_exec::PartyMeshRuntime>,
    retain_mesh: bool,
}

impl Driver {
    /// Creates a driver for the given configuration.
    pub fn new(config: ConclaveConfig) -> Self {
        let mpc = MpcEngine::new(config.mpc);
        let local_exec: Box<dyn Executor + Send + Sync> = match config.local_backend {
            LocalBackend::Parallel => {
                Box::new(ParallelEngine::new(config.cluster).with_mode(config.engine_mode))
            }
            LocalBackend::Sequential => sequential_executor(config.engine_mode),
        };
        let stp_exec = sequential_executor(config.engine_mode);
        Driver {
            config,
            mpc,
            local_exec,
            stp_exec,
            persistent_mesh: None,
            retain_mesh: false,
        }
    }

    /// Keeps the distributed party mesh alive across [`Driver::run_tables`]
    /// calls (the serving-layer mode): the first MPC-bearing plan builds the
    /// mesh, later plans reuse its workers and sessions via
    /// [`party_exec::PartyMeshRuntime::begin_query`]/`end_query`, and each
    /// run's report carries only that query's traffic. Any run error discards
    /// the mesh, so a failed query can never leave stale shares or a
    /// desynchronized work queue behind.
    pub fn retain_mesh(&mut self, keep: bool) {
        self.retain_mesh = keep;
        if !keep {
            self.persistent_mesh = None;
        }
    }

    /// Drops the retained party mesh (if any), joining its workers. The next
    /// run builds a fresh one.
    pub fn reset_mesh(&mut self) {
        self.persistent_mesh = None;
    }

    /// Whether a retained party mesh is currently alive.
    pub fn has_live_mesh(&self) -> bool {
        self.persistent_mesh.is_some()
    }

    /// The executor used for local cleartext steps.
    pub fn local_executor(&self) -> &dyn Executor {
        &*self.local_exec
    }

    /// Executes a plan over row-major relations. This is a thin shim over
    /// [`Driver::run_tables`] kept for compatibility with the pre-`Table`
    /// API: each relation is wrapped into a [`Table`] once and shared from
    /// there.
    pub fn run(
        &mut self,
        plan: &PhysicalPlan,
        inputs: &HashMap<String, Relation>,
    ) -> Result<RunReport, DriverError> {
        let tables: HashMap<String, Table> = inputs
            .iter()
            .map(|(name, rel)| (name.clone(), Table::from_rows(rel.clone())))
            .collect();
        self.run_tables(plan, &tables)
    }

    /// Compiles and executes a self-contained SQL script (see `docs/SQL.md`)
    /// in one call: the script's `CREATE TABLE` declarations must cover every
    /// referenced relation, the SQL is lowered to an IR query, compiled under
    /// this driver's configuration, and executed over `inputs`.
    ///
    /// Most callers should prefer [`crate::session::Session::run_sql`], which
    /// additionally validates the declared schemas against the bound data;
    /// this entry point exists for code already driving compiled plans by
    /// hand.
    pub fn run_sql(
        &mut self,
        sql: &str,
        inputs: &HashMap<String, Table>,
    ) -> Result<RunReport, DriverError> {
        let query = conclave_sql::compile_sql(sql).map_err(|e| DriverError::Sql(e.located(sql)))?;
        let plan = crate::plan::compile(&query, &self.config).map_err(DriverError::Compile)?;
        self.run_tables(&plan, inputs)
    }

    /// Executes a plan. `inputs` binds every `input` relation name to a
    /// [`Table`]; binding column-backed tables lets a columnar-mode plan run
    /// with zero row↔columnar conversions before the reveal boundary.
    pub fn run_tables(
        &mut self,
        plan: &PhysicalPlan,
        inputs: &HashMap<String, Table>,
    ) -> Result<RunReport, DriverError> {
        // Re-verify the plan before executing a single node: even a plan
        // tampered with after compilation (or built by hand) must pass the
        // static leakage linter, and its certified report rides on the run
        // report for the differential wire checks.
        let static_leakage =
            crate::passes::leakage::run(&plan.dag, &plan.parties).map_err(|e| match e {
                crate::plan::CompileError::Leakage(v) => DriverError::UnauthorizedReveal {
                    node: v.node,
                    to_party: v.party,
                    what: format!("column `{}`", v.column),
                },
                other => DriverError::Compile(other),
            })?;
        let mut report = RunReport {
            static_leakage: Some(static_leakage),
            ..RunReport::default()
        };
        let mut results: HashMap<NodeId, Table> = HashMap::new();
        // Every table that enters the result store, with its conversion
        // counter at insertion time: the per-run conversion tally is the sum
        // of the deltas (tables bound by the caller may carry pre-run
        // conversions that must not be charged to this run).
        let mut tracked: Vec<(Table, ConversionCounts)> = Vec::new();
        let viewers = analysis::authorized_viewers(&plan.dag, &plan.parties)?;
        let order = plan.dag.topo_order()?;

        // Distributed party runtime: one mesh and one set of party workers
        // for the whole plan, created lazily at the first MPC step. Steps are
        // enqueued without waiting; their intermediate results stay resident
        // on the workers as shares and are opened only at reveal boundaries.
        let distributed = self.config.party_runtime.is_distributed()
            && self.mpc.config().kind.is_secret_sharing();
        // A retained mesh from an earlier run is taken (not borrowed): if
        // this run errors out anywhere below, the mesh is dropped with it and
        // the driver is back in a defined, mesh-less state.
        let mut mesh_rt: Option<party_exec::PartyMeshRuntime> = self.persistent_mesh.take();
        // Whether this plan actually opened a query on the mesh (built it
        // fresh, or called `begin_query` on a reused one).
        let mut query_started = false;
        // Node → enqueued step id, for wiring resident inputs and reveals.
        let mut mpc_steps: HashMap<NodeId, u32> = HashMap::new();
        // Step id → index into `report.per_node` whose duration is patched
        // once the step's primitive counts arrive at finish.
        let mut step_nodes: HashMap<u32, usize> = HashMap::new();
        let pipelined = |node: &conclave_ir::dag::DagNode| {
            distributed && node.site.is_mpc() && party_exec::op_is_party_capable(&node.op)
        };
        // Which nodes consume each node's output: a step must be revealed iff
        // some consumer runs outside the party pipeline (or nothing consumes
        // it, so the result would otherwise be lost).
        let mut consumers: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for node in plan.dag.iter() {
            for &i in &node.inputs {
                consumers.entry(i).or_default().push(node.id);
            }
        }

        for id in order {
            let node = plan.dag.node(id)?;
            if pipelined(node) {
                match mesh_rt.as_mut() {
                    None => {
                        mesh_rt = Some(party_exec::PartyMeshRuntime::with_dealer(
                            self.mpc.config().kind.parties(),
                            self.config.mpc.seed,
                            self.config.party_runtime,
                            &self.config.dealer,
                        )?);
                        query_started = true;
                    }
                    Some(rt) if !query_started => {
                        // Reusing a retained mesh: top up pooled material for
                        // this query before the first step lands on it.
                        rt.begin_query()?;
                        query_started = true;
                    }
                    Some(_) => {}
                }
                let rt = mesh_rt.as_mut().expect("just created");
                let reveal = consumers.get(&id).is_none_or(|cs| {
                    cs.iter()
                        .any(|&c| plan.dag.node(c).map(|cn| !pipelined(cn)).unwrap_or(true))
                });
                let step_inputs: Vec<party_exec::StepInput> = node
                    .inputs
                    .iter()
                    .map(|i| match mpc_steps.get(i) {
                        Some(&s) => party_exec::StepInput::Resident(s),
                        None => party_exec::StepInput::Table(
                            results.get(i).expect("topological order").as_rows().clone(),
                        ),
                    })
                    .collect();
                let presorted = self.aggregate_is_presorted(plan, id, &node.op)?;
                let step = rt.enqueue(&node.op, step_inputs, presorted, reveal)?;
                mpc_steps.insert(id, step);
                step_nodes.insert(step, report.per_node.len());
                report.per_node.push((id, node.site, Duration::ZERO));
                continue;
            }
            // This node runs outside the party pipeline: any MPC-resident
            // input it consumes crosses a reveal boundary here, so block
            // until the opened (and cross-party-checked) relation arrives.
            for &i in &node.inputs {
                if let Some(&s) = mpc_steps.get(&i) {
                    if let std::collections::hash_map::Entry::Vacant(e) = results.entry(i) {
                        let rt = mesh_rt.as_mut().expect("enqueued steps imply a runtime");
                        let table = Table::from_rows(rt.wait_opened(s)?);
                        tracked.push((table.clone(), table.conversion_counts()));
                        e.insert(table);
                    }
                }
            }
            let input_tables: Vec<&Table> = node
                .inputs
                .iter()
                .map(|i| results.get(i).expect("topological order"))
                .collect();
            let (result, elapsed) = match (&node.op, node.site) {
                (Operator::Input { name, .. }, _) => {
                    let table = inputs
                        .get(name)
                        .cloned()
                        .ok_or_else(|| DriverError::MissingInput(name.clone()))?;
                    (table, Duration::ZERO)
                }
                (Operator::Collect { recipients }, _) => {
                    let table = input_tables[0].clone();
                    for r in recipients.iter() {
                        report.record_leakage(id, r, "query result", "output recipient");
                        report.outputs.insert(r, table.as_rows().clone());
                    }
                    (table, Duration::ZERO)
                }
                (
                    Operator::HybridJoin {
                        left_keys,
                        right_keys,
                        stp,
                    },
                    _,
                ) => {
                    self.check_reveal_authorized(plan, node.inputs[0], left_keys, *stp, id)?;
                    self.check_reveal_authorized(plan, node.inputs[1], right_keys, *stp, id)?;
                    let outcome = hybrid_exec::hybrid_join(
                        &mut self.mpc,
                        &*self.stp_exec,
                        input_tables[0],
                        input_tables[1],
                        left_keys,
                        right_keys,
                        *stp,
                    )?;
                    self.absorb_hybrid(&mut report, id, &outcome);
                    (outcome.result, Duration::ZERO)
                }
                (
                    Operator::PublicJoin {
                        left_keys,
                        right_keys,
                        helper,
                    },
                    _,
                ) => {
                    let outcome = hybrid_exec::public_join(
                        &*self.stp_exec,
                        input_tables[0],
                        input_tables[1],
                        left_keys,
                        right_keys,
                        *helper,
                    )?;
                    self.absorb_hybrid(&mut report, id, &outcome);
                    (outcome.result, Duration::ZERO)
                }
                (
                    Operator::HybridAggregate {
                        group_by,
                        func,
                        over,
                        out,
                        stp,
                    },
                    _,
                ) => {
                    self.check_reveal_authorized(plan, node.inputs[0], group_by, *stp, id)?;
                    let outcome = hybrid_exec::hybrid_aggregate(
                        &mut self.mpc,
                        &*self.stp_exec,
                        input_tables[0],
                        group_by,
                        *func,
                        over.as_deref(),
                        out,
                        *stp,
                    )?;
                    self.absorb_hybrid(&mut report, id, &outcome);
                    (outcome.result, Duration::ZERO)
                }
                (op, ExecSite::Mpc) => {
                    // In distributed mode only the operators the party
                    // drivers cannot run (the simulated `Divide` path) reach
                    // here; everything else was enqueued on the mesh above.
                    let (table, stats) = self.run_mpc_op(plan, id, op, &input_tables)?;
                    report.mpc_time += stats.simulated_time;
                    report.mpc_stats.merge(&stats);
                    report.network_bytes += stats.counts.bytes();
                    (table, stats.simulated_time)
                }
                (op, ExecSite::Local(party)) | (op, ExecSite::Stp(party)) => {
                    // If this cleartext step consumes an MPC-produced
                    // relation, that relation is being revealed to `party`;
                    // audit it (push-up reveals are authorized because the
                    // operator is reversible from the query output).
                    for &input in &node.inputs {
                        let parent = plan.dag.node(input)?;
                        if parent.site.is_mpc() && !parent.op.is_output() {
                            let authorized = viewers
                                .get(&input)
                                .map(|v| v.contains(party))
                                .unwrap_or(false)
                                || node.op.is_reversible()
                                || matches!(node.op, Operator::Collect { .. });
                            if !authorized {
                                return Err(DriverError::UnauthorizedReveal {
                                    node: input,
                                    to_party: party,
                                    what: "intermediate relation".into(),
                                });
                            }
                            report.record_leakage(
                                input,
                                party,
                                "MPC output opened for local post-processing",
                                if node.op.is_reversible() {
                                    "reversible push-up (simulatable from the query output)"
                                } else {
                                    "authorized by trust annotations"
                                },
                            );
                        }
                    }
                    let (table, time) = self.run_local_op(op, &input_tables)?;
                    *report.local_time.entry(party).or_default() += time;
                    (table, time)
                }
                (op, ExecSite::Undecided) => {
                    // Uncompiled DAGs (unit tests, direct execution) run in
                    // the clear sequentially.
                    let (table, time) = self.run_local_op(op, &input_tables)?;
                    (table, time)
                }
            };
            report.per_node.push((id, node.site, elapsed));
            tracked.push((result.clone(), result.conversion_counts()));
            results.insert(id, result);
        }
        // Wind down the party mesh: flush in-flight opens, collect every
        // step's primitive counts (patching the per-node duration
        // placeholders), and account the observed wire traffic exactly once.
        if let Some(mut rt) = mesh_rt {
            if !query_started {
                // The plan never touched the mesh (no pipelined MPC steps):
                // stash the retained mesh back untouched.
                self.persistent_mesh = Some(rt);
            } else {
                let summary = if self.retain_mesh {
                    let summary = rt.end_query()?;
                    self.persistent_mesh = Some(rt);
                    summary
                } else {
                    rt.finish()?
                };
                for outcome in &summary.steps {
                    let stats = self.mpc.stats_from_counts(
                        outcome.counts,
                        outcome.input_rows,
                        outcome.output_rows,
                    );
                    report.mpc_time += stats.simulated_time;
                    report.mpc_stats.merge(&stats);
                    if let Some(&idx) = step_nodes.get(&outcome.step) {
                        report.per_node[idx].2 = stats.simulated_time;
                    }
                }
                report.net.merge(&summary.net);
                report.network_bytes += summary.net.total_bytes();
                report.net_measured = true;
                report.dealer_net = summary.dealer_net;
            }
        }
        // Tally per-run conversions. Clones share one counter, so count each
        // distinct cache once, from its earliest baseline.
        let mut seen: Vec<&Table> = Vec::new();
        for (table, baseline) in &tracked {
            if seen.iter().any(|s| s.shares_cache_with(table)) {
                continue;
            }
            seen.push(table);
            report
                .conversions
                .merge(&table.conversion_counts().since(baseline));
        }
        Ok(report)
    }

    fn absorb_hybrid(
        &self,
        report: &mut RunReport,
        id: NodeId,
        outcome: &hybrid_exec::HybridOutcome,
    ) {
        report.mpc_time += outcome.mpc_stats.simulated_time;
        report.stp_time += outcome.stp_time;
        report.network_bytes += outcome.mpc_stats.counts.bytes();
        report.mpc_stats.merge(&outcome.mpc_stats);
        // Conversions on the protocol's internal tables (revealed keys,
        // enumerations, index relations) never enter the result store, so
        // they are tallied here instead of by the end-of-run sweep.
        report.conversions.merge(&outcome.conversions);
        report.record_leakage(
            id,
            outcome.revealed_to,
            format!("columns {:?} (shuffled order)", outcome.revealed_columns),
            "trust annotation designates this party as the STP / helper",
        );
    }

    /// Checks that `stp` is authorized to learn the named columns of the
    /// relation produced by `input_node`.
    fn check_reveal_authorized(
        &self,
        plan: &PhysicalPlan,
        input_node: NodeId,
        columns: &[String],
        stp: PartyId,
        at_node: NodeId,
    ) -> Result<(), DriverError> {
        let trusted =
            analysis::trusted_parties_for_columns(&plan.dag, input_node, columns, &plan.parties)?;
        if trusted.contains(stp) {
            Ok(())
        } else {
            Err(DriverError::UnauthorizedReveal {
                node: at_node,
                to_party: stp,
                what: format!("columns {columns:?}"),
            })
        }
    }

    fn run_local_op(
        &self,
        op: &Operator,
        inputs: &[&Table],
    ) -> Result<(Table, Duration), DriverError> {
        let table = self
            .local_exec
            .execute(op, inputs)
            .map_err(DriverError::Engine)?;
        let time = self
            .local_exec
            .estimate_tables(op, inputs, table.num_rows() as u64);
        Ok((table, time))
    }

    /// Whether this MPC aggregation's input is already sorted by its group-by
    /// key, so the oblivious sort can be skipped (§5.4 sort elimination).
    fn aggregate_is_presorted(
        &self,
        plan: &PhysicalPlan,
        id: NodeId,
        op: &Operator,
    ) -> Result<bool, DriverError> {
        if let Operator::Aggregate { group_by, .. } = op {
            if self.config.use_sort_elimination && self.mpc.config().kind.is_secret_sharing() {
                if let Some(key) = group_by.first() {
                    let input_node = plan.dag.node(id)?.inputs[0];
                    return Ok(
                        plan.dag.node(input_node)?.sorted_by.as_deref() == Some(key.as_str())
                    );
                }
            }
        }
        Ok(false)
    }

    fn run_mpc_op(
        &mut self,
        plan: &PhysicalPlan,
        id: NodeId,
        op: &Operator,
        inputs: &[&Table],
    ) -> Result<(Table, conclave_mpc::backend::MpcStepStats), DriverError> {
        // Division under MPC: Sharemind supports fixed-point division, but our
        // secret-sharing layer stays integer-only. The result is computed by
        // the simulator while the cost of an oblivious division protocol
        // (roughly thirty comparison-equivalents per row) is charged, so the
        // "whole query under MPC" baselines of Figures 4 and 6 remain runnable.
        // This holds in every party-runtime mode.
        if matches!(op, Operator::Divide { .. }) && self.mpc.config().kind.is_secret_sharing() {
            let rows: Vec<&Relation> = inputs.iter().map(|t| t.as_rows()).collect();
            let rel = execute(op, &rows).map_err(DriverError::Engine)?;
            let n: u64 = inputs.iter().map(|t| t.num_rows() as u64).sum();
            let counts = conclave_mpc::cost::PrimitiveCounts {
                comparisons: 30 * n,
                input_elems: n,
                opened_elems: rel.num_rows() as u64,
                ..Default::default()
            };
            let config = self.mpc.config();
            let stats = conclave_mpc::backend::MpcStepStats {
                simulated_time: config.ss_cost.time_no_overhead(&counts, &config.network),
                counts,
                input_rows: n,
                output_rows: rel.num_rows() as u64,
                ..Default::default()
            };
            return Ok((Table::from_rows(rel), stats));
        }
        let presorted = self.aggregate_is_presorted(plan, id, op)?;
        // Sort-elimination pay-off: an MPC aggregation whose input is already
        // sorted by its group-by key skips the oblivious sort (§5.4).
        if presorted {
            if let Operator::Aggregate {
                group_by,
                func,
                over,
                out,
            } = op
            {
                self.mpc.protocol().reset_counts();
                let shared = self.mpc.share_table(inputs[0])?;
                let aggregated = oblivious::aggregate_sorted(
                    &shared,
                    group_by,
                    *func,
                    over.as_deref(),
                    out,
                    self.mpc.protocol(),
                )
                .map_err(MpcError::Exec)?;
                let rel = self.mpc.reconstruct(&aggregated);
                let stats = self
                    .mpc
                    .drain_stats(inputs[0].num_rows() as u64, rel.num_rows() as u64);
                return Ok((Table::from_rows(rel), stats));
            }
        }
        self.mpc
            .execute_op_tables(op, inputs)
            .map(|(rel, stats)| (Table::from_rows(rel), stats))
            .map_err(DriverError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::compile;
    use conclave_ir::builder::QueryBuilder;
    use conclave_ir::expr::Expr;
    use conclave_ir::ops::AggFunc;
    use conclave_ir::party::Party;
    use conclave_ir::schema::{ColumnDef, Schema};
    use conclave_ir::trust::TrustSet;
    use conclave_ir::types::{DataType, Value};

    fn market_inputs() -> HashMap<String, Relation> {
        let mut m = HashMap::new();
        m.insert(
            "inputA".to_string(),
            Relation::from_ints(
                &["companyID", "price"],
                &[vec![1, 10], vec![2, 0], vec![1, 5]],
            ),
        );
        m.insert(
            "inputB".to_string(),
            Relation::from_ints(&["companyID", "price"], &[vec![2, 7], vec![3, 9]]),
        );
        m.insert(
            "inputC".to_string(),
            Relation::from_ints(&["companyID", "price"], &[vec![1, 3], vec![3, 4]]),
        );
        m
    }

    fn market_query() -> conclave_ir::builder::Query {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let pc = Party::new(3, "c");
        let schema = Schema::ints(&["companyID", "price"]);
        let mut q = QueryBuilder::new();
        let a = q.input("inputA", schema.clone(), pa.clone());
        let b = q.input("inputB", schema.clone(), pb);
        let c = q.input("inputC", schema, pc);
        let taxi = q.concat(&[a, b, c]);
        let filtered = q.filter(taxi, Expr::col("price").gt(Expr::lit(0)));
        let rev = q.aggregate(filtered, "local_rev", AggFunc::Sum, &["companyID"], "price");
        q.collect(rev, &[pa]);
        q.build().unwrap()
    }

    /// Expected per-company revenue for `market_inputs` (zero fares removed).
    fn expected_market_result() -> Relation {
        Relation::from_ints(
            &["companyID", "local_rev"],
            &[vec![1, 18], vec![2, 7], vec![3, 13]],
        )
    }

    #[test]
    fn end_to_end_market_query_matches_cleartext_reference() {
        let query = market_query();
        for config in [
            ConclaveConfig::standard(),
            ConclaveConfig::standard().with_sequential_local(),
            ConclaveConfig::mpc_only(),
        ] {
            let plan = compile(&query, &config).unwrap();
            let mut driver = Driver::new(config);
            let report = driver.run(&plan, &market_inputs()).unwrap();
            let out = report.output_for(1).expect("party 1 receives the result");
            assert!(
                out.same_rows_unordered(&expected_market_result()),
                "wrong result:\n{out}"
            );
            assert!(report.total_time() > Duration::ZERO);
        }
    }

    #[test]
    fn optimized_plan_is_faster_than_mpc_only_plan() {
        let query = market_query();
        let optimized_plan = compile(&query, &ConclaveConfig::standard()).unwrap();
        let baseline_plan = compile(&query, &ConclaveConfig::mpc_only()).unwrap();
        let mut d1 = Driver::new(ConclaveConfig::standard().with_sequential_local());
        let mut d2 = Driver::new(ConclaveConfig::mpc_only().with_sequential_local());
        let optimized = d1.run(&optimized_plan, &market_inputs()).unwrap();
        let baseline = d2.run(&baseline_plan, &market_inputs()).unwrap();
        assert!(
            optimized.mpc_time < baseline.mpc_time,
            "optimized MPC time {:?} should be below baseline {:?}",
            optimized.mpc_time,
            baseline.mpc_time
        );
    }

    #[test]
    fn missing_input_is_reported() {
        let query = market_query();
        let plan = compile(&query, &ConclaveConfig::standard()).unwrap();
        let mut driver = Driver::new(ConclaveConfig::standard());
        let mut inputs = market_inputs();
        inputs.remove("inputB");
        match driver.run(&plan, &inputs) {
            Err(DriverError::MissingInput(name)) => assert_eq!(name, "inputB"),
            other => panic!("expected MissingInput, got {other:?}"),
        }
    }

    fn credit_query() -> conclave_ir::builder::Query {
        let regulator = Party::new(1, "gov");
        let bank_a = Party::new(2, "a");
        let bank_b = Party::new(3, "b");
        let demo = Schema::new(vec![
            ColumnDef::new("ssn", DataType::Int),
            ColumnDef::with_trust("zip", DataType::Int, TrustSet::of([1])),
        ]);
        let bank = Schema::new(vec![
            ColumnDef::with_trust("ssn", DataType::Int, TrustSet::of([1])),
            ColumnDef::new("score", DataType::Int),
        ]);
        let mut q = QueryBuilder::new();
        let demographics = q.input("demographics", demo, regulator.clone());
        let s1 = q.input("scores1", bank.clone(), bank_a);
        let s2 = q.input("scores2", bank, bank_b);
        let scores = q.concat(&[s1, s2]);
        let joined = q.join(demographics, scores, &["ssn"], &["ssn"]);
        let total = q.aggregate(joined, "total", AggFunc::Sum, &["zip"], "score");
        q.collect(total, &[regulator]);
        q.build().unwrap()
    }

    fn credit_inputs() -> HashMap<String, Relation> {
        let mut m = HashMap::new();
        m.insert(
            "demographics".to_string(),
            Relation::from_ints(
                &["ssn", "zip"],
                &[vec![1, 10], vec![2, 20], vec![3, 10], vec![4, 30]],
            ),
        );
        m.insert(
            "scores1".to_string(),
            Relation::from_ints(&["ssn", "score"], &[vec![1, 700], vec![3, 650]]),
        );
        m.insert(
            "scores2".to_string(),
            Relation::from_ints(&["ssn", "score"], &[vec![2, 600], vec![3, 640], vec![9, 1]]),
        );
        m
    }

    #[test]
    fn credit_query_with_hybrid_operators_is_correct_and_audited() {
        let query = credit_query();
        let plan = compile(&query, &ConclaveConfig::standard()).unwrap();
        assert_eq!(plan.hybrid_node_count(), 2);
        let mut driver = Driver::new(ConclaveConfig::standard().with_sequential_local());
        let report = driver.run(&plan, &credit_inputs()).unwrap();
        let out = report.output_for(1).unwrap();
        // zip 10: scores 700 + 650 + 640 = 1990; zip 20: 600.
        let expected = Relation::from_ints(&["zip", "total"], &[vec![10, 1990], vec![20, 600]]);
        assert!(out.same_rows_unordered(&expected), "got\n{out}");
        // The audit shows reveals to the STP (party 1) only.
        assert!(report.leakage.iter().all(|e| e.to_party == 1));
        assert!(report
            .leakage
            .iter()
            .any(|e| e.justification.contains("STP")));
        assert!(report.stp_time > Duration::ZERO);
    }

    #[test]
    fn hybrid_and_mpc_only_plans_agree_on_results() {
        let query = credit_query();
        // Use a somewhat larger input so the asymptotic advantage of the
        // hybrid operators is visible (at a handful of rows the oblivious
        // indexing overhead dominates).
        let mut inputs = HashMap::new();
        let demo: Vec<Vec<i64>> = (0..60).map(|i| vec![i, i % 7]).collect();
        let s1: Vec<Vec<i64>> = (0..30).map(|i| vec![i * 2, 500 + i]).collect();
        let s2: Vec<Vec<i64>> = (0..30).map(|i| vec![i * 2 + 1, 600 + i]).collect();
        inputs.insert(
            "demographics".to_string(),
            Relation::from_ints(&["ssn", "zip"], &demo),
        );
        inputs.insert(
            "scores1".to_string(),
            Relation::from_ints(&["ssn", "score"], &s1),
        );
        inputs.insert(
            "scores2".to_string(),
            Relation::from_ints(&["ssn", "score"], &s2),
        );
        let hybrid_plan = compile(&query, &ConclaveConfig::standard()).unwrap();
        let mpc_plan = compile(&query, &ConclaveConfig::mpc_only()).unwrap();
        let mut d1 = Driver::new(ConclaveConfig::standard().with_sequential_local());
        let mut d2 = Driver::new(ConclaveConfig::mpc_only().with_sequential_local());
        let a = d1.run(&hybrid_plan, &inputs).unwrap();
        let b = d2.run(&mpc_plan, &inputs).unwrap();
        assert!(a
            .output_for(1)
            .unwrap()
            .same_rows_unordered(b.output_for(1).unwrap()));
        // Hybrid execution needs fewer non-linear MPC operations.
        assert!(
            a.mpc_stats.counts.nonlinear_ops() < b.mpc_stats.counts.nonlinear_ops(),
            "{} vs {}",
            a.mpc_stats.counts.nonlinear_ops(),
            b.mpc_stats.counts.nonlinear_ops()
        );
    }

    #[test]
    fn driver_refuses_unauthorized_hybrid_reveals() {
        // Build a plan where the hybrid join's STP is NOT in the key columns'
        // trust sets by tampering with the compiled plan.
        let query = credit_query();
        let mut plan = compile(&query, &ConclaveConfig::standard()).unwrap();
        let join_id = plan
            .dag
            .iter()
            .find(|n| matches!(n.op, Operator::HybridJoin { .. }))
            .unwrap()
            .id;
        if let Operator::HybridJoin { ref mut stp, .. } = plan.dag.node_mut(join_id).unwrap().op {
            *stp = 2; // bank A is not trusted with the regulator's SSN column
        }
        let mut driver = Driver::new(ConclaveConfig::standard().with_sequential_local());
        match driver.run(&plan, &credit_inputs()) {
            Err(DriverError::UnauthorizedReveal { to_party, .. }) => assert_eq!(to_party, 2),
            other => panic!("expected UnauthorizedReveal, got {other:?}"),
        }
    }

    #[test]
    fn distributed_party_runtime_matches_the_simulated_oracle_end_to_end() {
        use crate::config::PartyRuntime;
        let query = market_query();
        let inputs = market_inputs();
        // Oracle: the default simulated in-process path.
        let plan = compile(&query, &ConclaveConfig::mpc_only()).unwrap();
        let mut oracle = Driver::new(ConclaveConfig::mpc_only().with_sequential_local());
        let expected = oracle.run(&plan, &inputs).unwrap();
        assert!(!expected.net_measured);
        assert_eq!(expected.net.total_bytes(), 0);
        for runtime in [PartyRuntime::Channel, PartyRuntime::Tcp] {
            let config = ConclaveConfig::mpc_only()
                .with_sequential_local()
                .with_party_runtime(runtime);
            let plan = compile(&query, &config).unwrap();
            let mut driver = Driver::new(config);
            let report = driver.run(&plan, &inputs).unwrap();
            let out = report.output_for(1).unwrap();
            assert!(
                out.same_rows_unordered(expected.output_for(1).unwrap()),
                "{runtime:?} runtime diverged from the oracle:\n{out}"
            );
            assert!(report.net_measured, "{runtime:?} must measure traffic");
            assert!(report.net.total_bytes() > 0);
            assert!(report.net.rounds > 0);
            assert_eq!(report.network_bytes, report.net.total_bytes());
            let shown = report.to_string();
            assert!(shown.contains("measured"));
            assert!(shown.contains("link P0 -> P1"));
        }
    }

    #[test]
    fn collect_outputs_are_recorded_per_recipient() {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let mut q = QueryBuilder::new();
        let a = q.input("a", Schema::ints(&["k", "v"]), pa.clone());
        let b = q.input("b", Schema::ints(&["k", "v"]), pb.clone());
        let cat = q.concat(&[a, b]);
        let agg = q.aggregate(cat, "s", AggFunc::Sum, &["k"], "v");
        q.collect(agg, &[pa, pb]);
        let query = q.build().unwrap();
        let plan = compile(&query, &ConclaveConfig::standard()).unwrap();
        let mut driver = Driver::new(ConclaveConfig::standard().with_sequential_local());
        let mut inputs = HashMap::new();
        inputs.insert(
            "a".to_string(),
            Relation::from_ints(&["k", "v"], &[vec![1, 2]]),
        );
        inputs.insert(
            "b".to_string(),
            Relation::from_ints(&["k", "v"], &[vec![1, 3]]),
        );
        let report = driver.run(&plan, &inputs).unwrap();
        assert!(report.output_for(1).is_some());
        assert!(report.output_for(2).is_some());
        assert_eq!(
            report.output_for(1).unwrap().rows[0],
            vec![Value::Int(1), Value::Int(5)]
        );
        let shown = report.to_string();
        assert!(shown.contains("total simulated time"));
    }
}
