//! Query compilation: running the analysis and rewrite passes, partitioning
//! the DAG into execution stages, and producing a [`PhysicalPlan`].

use crate::analysis;
use crate::config::ConclaveConfig;
use crate::passes;
use crate::passes::leakage::{LeakageReport, LeakageViolation};
use conclave_ir::builder::Query;
use conclave_ir::dag::{NodeId, OpDag};
use conclave_ir::error::IrError;
use conclave_ir::ops::ExecSite;
use conclave_ir::party::PartySet;
use std::fmt;

/// Errors raised during compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// An IR-level error (unknown column, malformed DAG).
    Ir(IrError),
    /// The query cannot be compiled under the given configuration.
    Unsupported(String),
    /// The leakage linter proved the plan would disclose a column to a party
    /// outside its trust set.
    Leakage(LeakageViolation),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Ir(e) => write!(f, "compilation failed: {e}"),
            CompileError::Unsupported(s) => write!(f, "unsupported query: {s}"),
            CompileError::Leakage(v) => write!(f, "leakage check failed: {v}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<IrError> for CompileError {
    fn from(e: IrError) -> Self {
        CompileError::Ir(e)
    }
}

/// Result alias for compilation.
pub type CompileResult<T> = Result<T, CompileError>;

/// One execution stage of the compiled plan: a maximal set of consecutive
/// (topologically ordered) nodes that run at the same site.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Where this stage executes.
    pub site: ExecSite,
    /// Node ids in topological order.
    pub nodes: Vec<NodeId>,
}

/// The compiled query plan.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// The rewritten operator DAG with all annotations filled in.
    pub dag: OpDag,
    /// All parties participating in the query.
    pub parties: PartySet,
    /// Human-readable log of the transformations the compiler applied.
    pub transformations: Vec<String>,
    /// The compiler configuration used.
    pub config: ConclaveConfig,
    /// The statically certified per-party leakage account of the plan,
    /// produced by the mandatory [`passes::leakage`] pass.
    pub leakage: LeakageReport,
}

impl PhysicalPlan {
    /// Partitions the DAG into stages by walking it in topological order and
    /// starting a new stage at every site transition.
    pub fn stages(&self) -> Vec<Stage> {
        let mut stages: Vec<Stage> = Vec::new();
        let Ok(order) = self.dag.topo_order() else {
            return stages;
        };
        for id in order {
            let Ok(node) = self.dag.node(id) else {
                continue;
            };
            match stages.last_mut() {
                Some(stage) if stage.site == node.site => stage.nodes.push(id),
                _ => stages.push(Stage {
                    site: node.site,
                    nodes: vec![id],
                }),
            }
        }
        stages
    }

    /// Number of nodes executing under MPC.
    pub fn mpc_node_count(&self) -> usize {
        passes::sites::mpc_node_count(&self.dag)
    }

    /// Number of hybrid operators in the plan.
    pub fn hybrid_node_count(&self) -> usize {
        self.dag.iter().filter(|n| n.op.is_hybrid()).count()
    }

    /// Renders the plan as text (one node per line, grouped implicitly by the
    /// site annotations), matching the format of Figure 2's discussion.
    pub fn render(&self) -> String {
        conclave_ir::display::render_text(&self.dag)
    }
}

/// Compiles a query under a configuration, running every enabled pass in the
/// order the paper describes (§5, stages 1–6).
pub fn compile(query: &Query, config: &ConclaveConfig) -> CompileResult<PhysicalPlan> {
    let mut dag = query.dag.clone();
    let universe = query.party_set();
    let mut transformations = Vec::new();

    // Stage 1: propagate input/output locations (ownership).
    analysis::propagate_ownership(&mut dag)?;

    // Stage 2: MPC frontier push-down.
    if config.use_pushdown {
        let log = passes::pushdown::run(&mut dag, config)?;
        transformations.extend(log);
        dag.recompute_schemas()?;
        analysis::propagate_ownership(&mut dag)?;
    }

    // Stage 3: propagate trust annotations through the (rewritten) DAG.
    analysis::propagate_trust(&mut dag)?;

    // Site assignment for the remaining operators.
    passes::sites::run(&mut dag)?;

    // Stage 4: hybrid operator insertion.
    if config.use_hybrid_operators || config.use_public_join {
        let log = passes::hybrid::run(&mut dag, &universe, config)?;
        transformations.extend(log);
    }

    // MPC frontier push-up (reversible leaf operators).
    if config.use_pushup {
        let log = passes::pushup::run(&mut dag)?;
        transformations.extend(log);
    }

    // Stage 5: oblivious sort tracking / elimination.
    if config.use_sort_elimination {
        let log = passes::sort_elim::run(&mut dag)?;
        transformations.extend(log);
    }

    dag.validate()?;

    // Stage 6 (mandatory): the leakage linter. Every plan the pipeline emits
    // carries a static proof that its cleartext placements and reveals honor
    // the trust annotations — or compilation fails here.
    let leakage = passes::leakage::run(&dag, &universe)?;

    Ok(PhysicalPlan {
        dag,
        parties: universe,
        transformations,
        config: config.clone(),
        leakage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::builder::QueryBuilder;
    use conclave_ir::ops::{AggFunc, Operator};
    use conclave_ir::party::Party;
    use conclave_ir::schema::{ColumnDef, Schema};
    use conclave_ir::trust::TrustSet;
    use conclave_ir::types::DataType;

    /// The market-concentration query (Listing 2), minus the final division
    /// chain which the IR-level test in `conclave-ir` already covers.
    fn market_query() -> Query {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let pc = Party::new(3, "c");
        let schema = Schema::ints(&["companyID", "price"]);
        let mut q = QueryBuilder::new();
        let a = q.input("inputA", schema.clone(), pa.clone());
        let b = q.input("inputB", schema.clone(), pb);
        let c = q.input("inputC", schema, pc);
        let taxi = q.concat(&[a, b, c]);
        let proj = q.project(taxi, &["companyID", "price"]);
        let rev = q.aggregate(proj, "local_rev", AggFunc::Sum, &["companyID"], "price");
        let total = q.aggregate_scalar(rev, "total_rev", AggFunc::Sum, "local_rev");
        q.collect(total, &[pa]);
        q.build().unwrap()
    }

    fn credit_query() -> Query {
        let regulator = Party::new(1, "gov");
        let bank_a = Party::new(2, "a");
        let bank_b = Party::new(3, "b");
        let demo = Schema::new(vec![
            ColumnDef::new("ssn", DataType::Int),
            ColumnDef::new("zip", DataType::Int),
        ]);
        let bank = Schema::new(vec![
            ColumnDef::with_trust("ssn", DataType::Int, TrustSet::of([1])),
            ColumnDef::new("score", DataType::Int),
        ]);
        let mut q = QueryBuilder::new();
        let demographics = q.input("demographics", demo, regulator.clone());
        let s1 = q.input("scores1", bank.clone(), bank_a);
        let s2 = q.input("scores2", bank, bank_b);
        let scores = q.concat(&[s1, s2]);
        let joined = q.join(demographics, scores, &["ssn"], &["ssn"]);
        let total = q.aggregate(joined, "total", AggFunc::Sum, &["zip"], "score");
        q.collect(total, &[regulator]);
        q.build().unwrap()
    }

    #[test]
    fn market_query_pushdown_shrinks_the_mpc() {
        let query = market_query();
        let optimized = compile(&query, &ConclaveConfig::standard()).unwrap();
        let baseline = compile(&query, &ConclaveConfig::mpc_only()).unwrap();
        assert!(
            optimized.mpc_node_count() < baseline.mpc_node_count(),
            "push-down must reduce MPC work: {} vs {}",
            optimized.mpc_node_count(),
            baseline.mpc_node_count()
        );
        assert!(!optimized.transformations.is_empty());
        assert!(optimized.render().contains("aggregate"));
        // The per-party pre-aggregations run locally.
        let local_aggs = optimized
            .dag
            .iter()
            .filter(|n| matches!(n.op, Operator::Aggregate { .. }) && n.site.is_cleartext())
            .count();
        assert_eq!(local_aggs, 3);
    }

    #[test]
    fn credit_query_uses_hybrid_operators_when_annotated() {
        let query = credit_query();
        let plan = compile(&query, &ConclaveConfig::standard()).unwrap();
        assert_eq!(plan.hybrid_node_count(), 2, "{}", plan.render());
        let without = compile(&query, &ConclaveConfig::without_hybrid()).unwrap();
        assert_eq!(without.hybrid_node_count(), 0);
    }

    #[test]
    fn stages_alternate_between_local_and_mpc() {
        let query = market_query();
        let plan = compile(&query, &ConclaveConfig::standard()).unwrap();
        let stages = plan.stages();
        assert!(stages.len() >= 2);
        let all_nodes: usize = stages.iter().map(|s| s.nodes.len()).sum();
        assert_eq!(all_nodes, plan.dag.node_count());
        // There is at least one local stage and at least one MPC stage.
        assert!(stages.iter().any(|s| s.site.is_mpc()));
        assert!(stages.iter().any(|s| s.site.is_cleartext()));
    }

    #[test]
    fn mpc_only_configuration_keeps_everything_under_mpc() {
        let query = market_query();
        let plan = compile(&query, &ConclaveConfig::mpc_only()).unwrap();
        // Only inputs and the final collect run in the clear.
        for node in plan.dag.iter() {
            if node.op.is_input() || matches!(node.op, Operator::Collect { .. }) {
                assert!(node.site.is_cleartext());
            } else {
                assert!(node.site.is_mpc(), "{} should be MPC", node.op);
            }
        }
    }

    #[test]
    fn compile_error_display() {
        let e = CompileError::Unsupported("window aggregates".into());
        assert!(e.to_string().contains("window"));
        let e: CompileError = IrError::NoOutput.into();
        assert!(e.to_string().contains("output"));
    }
}
