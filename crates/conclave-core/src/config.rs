//! Compiler and runtime configuration.

use conclave_engine::EngineMode;
use conclave_mpc::backend::MpcBackendConfig;
use conclave_mpc::dealer::MaterialPool;
use conclave_parallel::ClusterSpec;

/// Which cleartext backend each party uses for local processing (§4.1: Spark
/// if available, sequential Python otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalBackend {
    /// Sequential, interpreter-like processing.
    Sequential,
    /// Data-parallel cluster processing (the Spark stand-in).
    Parallel,
}

/// How the MPC steps of a plan are executed.
///
/// The default [`PartyRuntime::Simulated`] mode runs the single-process
/// protocol engine (all shares in one struct, modeled network costs) — fast,
/// and the differential-testing oracle. The distributed modes spawn one
/// protocol endpoint **per computing party**, each holding only its own
/// shares and exchanging real messages over a
/// [`conclave_net::Transport`]; [`crate::report::RunReport::net`] then
/// carries *measured* per-link bytes and rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartyRuntime {
    /// Single-process protocol engine with modeled network costs (default).
    #[default]
    Simulated,
    /// One thread per party over an in-process channel mesh.
    Channel,
    /// One thread per party over localhost TCP sockets.
    Tcp,
}

impl PartyRuntime {
    /// True for the modes that run real per-party protocol endpoints.
    pub fn is_distributed(self) -> bool {
        !matches!(self, PartyRuntime::Simulated)
    }
}

/// Where the distributed party runtime's offline material (SPDZ MAC key
/// shares, authenticated Beaver triples, binary triples, shared bits, daBits)
/// comes from. Only meaningful when [`ConclaveConfig::party_runtime`] is
/// distributed; the simulated engine models no offline phase.
#[derive(Debug, Clone, Default)]
pub enum DealerMode {
    /// Synthesize material in-process from the mesh seed (default). The
    /// offline phase is elided; shares still carry MACs and every reveal is
    /// still checked.
    #[default]
    Seeded,
    /// Load pregenerated per-party `party-{i}.dealer` files from this
    /// directory, as written by the `conclave-dealer` binary
    /// ([`conclave_mpc::dealer::write_party_files`]).
    File(std::path::PathBuf),
    /// Stream blocks on demand from a dealer endpoint over a dedicated
    /// per-party link ([`conclave_mpc::dealer::serve_party`]); the dealer's
    /// traffic is accounted separately in the run report.
    Streamed,
    /// Draw preloaded bundles from a shared, background-refilled
    /// [`MaterialPool`] — the serving-layer mode: the pool amortizes the
    /// offline phase across queries (and tenants), and a long-lived mesh is
    /// topped up with a fresh bundle per query.
    Pooled(MaterialPool),
}

// Manual impl because `MaterialPool` compares by pool identity (two handles
// are equal iff they share the same underlying pool), which `derive` can't
// express.
impl PartialEq for DealerMode {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (DealerMode::Seeded, DealerMode::Seeded) => true,
            (DealerMode::File(a), DealerMode::File(b)) => a == b,
            (DealerMode::Streamed, DealerMode::Streamed) => true,
            (DealerMode::Pooled(a), DealerMode::Pooled(b)) => a.same_pool(b),
            _ => false,
        }
    }
}

impl Eq for DealerMode {}

/// Configuration of a Conclave compilation and execution.
///
/// The boolean toggles correspond to the individual optimizations the paper
/// introduces, so ablation experiments can switch each off independently.
#[derive(Debug, Clone)]
pub struct ConclaveConfig {
    /// Apply the MPC-frontier push-down rewrites of §5.2.
    pub use_pushdown: bool,
    /// Apply the MPC-frontier push-up rewrites of §5.2.
    pub use_pushup: bool,
    /// Insert hybrid operators (§5.3) when trust annotations authorize an STP.
    pub use_hybrid_operators: bool,
    /// Use the public-join operator when join keys are public.
    pub use_public_join: bool,
    /// Apply the oblivious-sort tracking/elimination pass of §5.4.
    pub use_sort_elimination: bool,
    /// Parties consent to push-downs that change MPC input cardinalities
    /// (§5.2, "Security implications"): splitting an aggregation reveals the
    /// number of distinct keys each party contributes. Without consent,
    /// Conclave chooses the slower plan.
    pub allow_cardinality_leaking_pushdown: bool,
    /// Local cleartext backend.
    pub local_backend: LocalBackend,
    /// Cleartext execution strategy used by the local backends and STP steps:
    /// row-at-a-time or vectorized columnar.
    pub engine_mode: EngineMode,
    /// Per-party cluster used when `local_backend` is parallel.
    pub cluster: ClusterSpec,
    /// MPC backend configuration.
    pub mpc: MpcBackendConfig,
    /// How MPC plan steps execute: simulated in-process (default) or as a
    /// real per-party mesh over a transport.
    pub party_runtime: PartyRuntime,
    /// Where the distributed runtime's offline material comes from.
    pub dealer: DealerMode,
}

impl ConclaveConfig {
    /// The default configuration: every optimization on, Spark-like local
    /// processing, Sharemind-like MPC — the configuration the paper's main
    /// experiments use.
    pub fn standard() -> Self {
        ConclaveConfig {
            use_pushdown: true,
            use_pushup: true,
            use_hybrid_operators: true,
            use_public_join: true,
            use_sort_elimination: true,
            allow_cardinality_leaking_pushdown: true,
            local_backend: LocalBackend::Parallel,
            engine_mode: EngineMode::Row,
            cluster: ClusterSpec::paper_party_cluster(),
            mpc: MpcBackendConfig::sharemind(),
            party_runtime: PartyRuntime::Simulated,
            dealer: DealerMode::Seeded,
        }
    }

    /// A configuration with every Conclave optimization disabled: the whole
    /// query runs as a single monolithic MPC, which is the "Sharemind only" /
    /// "MPC framework alone" baseline in Figures 4 and 6.
    pub fn mpc_only() -> Self {
        ConclaveConfig {
            use_pushdown: false,
            use_pushup: false,
            use_hybrid_operators: false,
            use_public_join: false,
            use_sort_elimination: false,
            allow_cardinality_leaking_pushdown: false,
            ..Self::standard()
        }
    }

    /// Standard configuration but without hybrid operators (used to isolate
    /// the effect of trust annotations in §7.2/§7.3).
    pub fn without_hybrid() -> Self {
        ConclaveConfig {
            use_hybrid_operators: false,
            use_public_join: false,
            ..Self::standard()
        }
    }

    /// Returns a copy using the sequential local backend.
    pub fn with_sequential_local(mut self) -> Self {
        self.local_backend = LocalBackend::Sequential;
        self
    }

    /// Returns a copy using the given cleartext engine mode.
    pub fn with_engine_mode(mut self, mode: EngineMode) -> Self {
        self.engine_mode = mode;
        self
    }

    /// Returns a copy using the vectorized columnar cleartext engine.
    pub fn with_columnar(self) -> Self {
        self.with_engine_mode(EngineMode::Columnar)
    }

    /// Returns a copy using the given MPC backend configuration.
    pub fn with_mpc(mut self, mpc: MpcBackendConfig) -> Self {
        self.mpc = mpc;
        self
    }

    /// Returns a copy using the given party-runtime mode for MPC steps.
    pub fn with_party_runtime(mut self, runtime: PartyRuntime) -> Self {
        self.party_runtime = runtime;
        self
    }

    /// Returns a copy executing MPC steps over the in-process channel mesh
    /// (real per-party message rounds, one thread per party).
    pub fn with_channel_runtime(self) -> Self {
        self.with_party_runtime(PartyRuntime::Channel)
    }

    /// Returns a copy executing MPC steps over localhost TCP sockets.
    pub fn with_tcp_runtime(self) -> Self {
        self.with_party_runtime(PartyRuntime::Tcp)
    }

    /// Returns a copy drawing offline material from the given dealer source.
    pub fn with_dealer(mut self, dealer: DealerMode) -> Self {
        self.dealer = dealer;
        self
    }

    /// Returns a copy loading per-party dealer files from `dir`.
    pub fn with_dealer_files(self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.with_dealer(DealerMode::File(dir.into()))
    }

    /// Returns a copy streaming offline material from a dealer endpoint over
    /// dedicated per-party links.
    pub fn with_streamed_dealer(self) -> Self {
        self.with_dealer(DealerMode::Streamed)
    }

    /// Returns a copy drawing offline material from a shared
    /// background-refilled pool (the serving-layer mode).
    pub fn with_pooled_dealer(self, pool: MaterialPool) -> Self {
        self.with_dealer(DealerMode::Pooled(pool))
    }
}

impl Default for ConclaveConfig {
    fn default() -> Self {
        ConclaveConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_mpc::backend::BackendKind;

    #[test]
    fn standard_enables_all_optimizations() {
        let c = ConclaveConfig::standard();
        assert!(c.use_pushdown && c.use_pushup && c.use_hybrid_operators);
        assert!(c.use_sort_elimination && c.use_public_join);
        assert_eq!(c.local_backend, LocalBackend::Parallel);
        assert_eq!(c.mpc.kind, BackendKind::SharemindLike);
        assert!(ConclaveConfig::default().use_pushdown);
    }

    #[test]
    fn mpc_only_disables_all_optimizations() {
        let c = ConclaveConfig::mpc_only();
        assert!(!c.use_pushdown && !c.use_pushup && !c.use_hybrid_operators);
        assert!(!c.allow_cardinality_leaking_pushdown);
    }

    #[test]
    fn builders_modify_fields() {
        let c = ConclaveConfig::without_hybrid();
        assert!(c.use_pushdown && !c.use_hybrid_operators);
        let c = ConclaveConfig::standard().with_sequential_local();
        assert_eq!(c.local_backend, LocalBackend::Sequential);
        let c = ConclaveConfig::standard().with_mpc(MpcBackendConfig::obliv_c());
        assert_eq!(c.mpc.kind, BackendKind::OblivCLike);
        assert_eq!(ConclaveConfig::standard().engine_mode, EngineMode::Row);
        let c = ConclaveConfig::standard().with_columnar();
        assert_eq!(c.engine_mode, EngineMode::Columnar);
        let c = ConclaveConfig::standard().with_engine_mode(EngineMode::Row);
        assert_eq!(c.engine_mode, EngineMode::Row);
    }

    #[test]
    fn party_runtime_modes() {
        assert_eq!(
            ConclaveConfig::standard().party_runtime,
            PartyRuntime::Simulated
        );
        assert!(!PartyRuntime::Simulated.is_distributed());
        let c = ConclaveConfig::standard().with_channel_runtime();
        assert_eq!(c.party_runtime, PartyRuntime::Channel);
        assert!(c.party_runtime.is_distributed());
        let c = ConclaveConfig::standard().with_tcp_runtime();
        assert_eq!(c.party_runtime, PartyRuntime::Tcp);
        assert!(c.party_runtime.is_distributed());
        let c = ConclaveConfig::standard().with_party_runtime(PartyRuntime::default());
        assert_eq!(c.party_runtime, PartyRuntime::Simulated);
    }

    #[test]
    fn dealer_modes() {
        assert_eq!(ConclaveConfig::standard().dealer, DealerMode::Seeded);
        assert_eq!(DealerMode::default(), DealerMode::Seeded);
        let c = ConclaveConfig::standard().with_streamed_dealer();
        assert_eq!(c.dealer, DealerMode::Streamed);
        let c = ConclaveConfig::standard().with_dealer_files("/tmp/material");
        assert_eq!(
            c.dealer,
            DealerMode::File(std::path::PathBuf::from("/tmp/material"))
        );
        let c = c.with_dealer(DealerMode::Seeded);
        assert_eq!(c.dealer, DealerMode::Seeded);
        // Pooled mode compares by pool identity: clones of one pool are
        // equal, distinct pools (even with identical parameters) are not.
        let pool = MaterialPool::start(1, 2, Default::default(), 1);
        let c = ConclaveConfig::standard().with_pooled_dealer(pool.clone());
        assert_eq!(c.dealer, DealerMode::Pooled(pool));
        let other = MaterialPool::start(1, 2, Default::default(), 1);
        assert_ne!(c.dealer, DealerMode::Pooled(other));
    }
}
