//! Execution reports: results, simulated runtime breakdown and leakage audit.

use crate::passes::leakage::LeakageReport;
use conclave_engine::{ConversionCounts, Relation};
use conclave_ir::ops::ExecSite;
use conclave_ir::party::PartyId;
use conclave_mpc::backend::MpcStepStats;
use conclave_net::NetStats;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// One entry of the leakage audit: a place where data left the MPC boundary
/// in cleartext, with the justification the compiler derived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakageEvent {
    /// Node at whose execution the reveal happened.
    pub node: usize,
    /// Party that received cleartext data.
    pub to_party: PartyId,
    /// What was revealed (column names or "result").
    pub what: String,
    /// Why the reveal is authorized (trust annotation, output recipient,
    /// reversible push-up, or cardinality-only).
    pub justification: String,
}

/// Report of one end-to-end query execution.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// The query output, per recipient party.
    pub outputs: BTreeMap<PartyId, Relation>,
    /// Simulated local (cleartext) processing time per party; parties work in
    /// parallel, so the critical path takes the maximum.
    pub local_time: BTreeMap<PartyId, Duration>,
    /// Simulated time spent in MPC steps (sequential across all parties).
    pub mpc_time: Duration,
    /// Simulated time spent in STP cleartext steps of hybrid protocols.
    pub stp_time: Duration,
    /// Total data moved between parties, in bytes. Modeled from primitive
    /// counts in simulated mode. When the distributed party runtime executed
    /// the MPC steps, their contribution is the *observed* wire-byte total
    /// instead — but driver-orchestrated hybrid protocols and the simulated
    /// division path still contribute modeled bytes, so on plans containing
    /// those this total mixes both accountings (the purely-measured portion
    /// is always available as [`RunReport::net`]`.total_bytes()`).
    pub network_bytes: u64,
    /// Per-link traffic of the distributed MPC steps. Empty in simulated
    /// mode; when [`RunReport::net_measured`] is set, these are **measured**
    /// per-link byte/message counts and synchronous round totals observed on
    /// the party transports — not cost-model output.
    pub net: NetStats,
    /// True when [`RunReport::net`] holds measured transport statistics
    /// (i.e. MPC steps ran on the distributed party runtime).
    pub net_measured: bool,
    /// Traffic on the dedicated per-party dealer links (the offline phase),
    /// present only when the run streamed its material from a dealer. Link
    /// keys use [`crate::party_exec::DEALER_ID`] for the dealer endpoint;
    /// kept separate from [`RunReport::net`] so offline bytes never blur the
    /// online round/byte accounting the paper's cost model is about.
    pub dealer_net: Option<NetStats>,
    /// Aggregated MPC statistics (primitive counts, gates, memory).
    pub mpc_stats: MpcStepStats,
    /// Leakage audit log (dynamic: recorded as reveals actually happen).
    pub leakage: Vec<LeakageEvent>,
    /// The plan's statically certified leakage report, attached by the
    /// driver before execution. Every dynamic [`RunReport::leakage`] event
    /// must be covered by a disclosure in here — the differential tests
    /// assert exactly that.
    pub static_leakage: Option<LeakageReport>,
    /// Per-node simulated runtimes, for detailed breakdowns.
    pub per_node: Vec<(usize, ExecSite, Duration)>,
    /// Row↔columnar conversions the run's data plane performed. With the
    /// unified `Table` representation, a columnar-mode driven query should
    /// convert only at input binding and reveal/collect boundaries — never
    /// between plan operators — and tests assert exactly that on this field.
    pub conversions: ConversionCounts,
}

impl RunReport {
    /// End-to-end simulated runtime: the slowest party's local work plus the
    /// (sequential) MPC and STP phases.
    pub fn total_time(&self) -> Duration {
        let local_max = self.local_time.values().copied().max().unwrap_or_default();
        local_max + self.mpc_time + self.stp_time
    }

    /// The output delivered to a given party, if it is a recipient.
    pub fn output_for(&self, party: PartyId) -> Option<&Relation> {
        self.outputs.get(&party)
    }

    /// Synchronous protocol rounds the whole query paid on the wire —
    /// the paper's dominant MPC cost. Zero unless
    /// [`RunReport::net_measured`] is set.
    pub fn rounds_per_query(&self) -> u64 {
        self.net.rounds
    }

    /// How many transport meshes were built for the query. The plan-scoped
    /// party runtime builds exactly one; more indicates a regression to
    /// per-step meshes.
    pub fn mesh_builds(&self) -> u64 {
        self.net.mesh_builds
    }

    /// Records a leakage event.
    pub fn record_leakage(
        &mut self,
        node: usize,
        to_party: PartyId,
        what: impl Into<String>,
        justification: impl Into<String>,
    ) {
        self.leakage.push(LeakageEvent {
            node,
            to_party,
            what: what.into(),
            justification: justification.into(),
        });
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== Conclave run report ===")?;
        writeln!(
            f,
            "total simulated time: {:.2} s",
            self.total_time().as_secs_f64()
        )?;
        for (party, t) in &self.local_time {
            writeln!(f, "  local @ P{party}: {:.2} s", t.as_secs_f64())?;
        }
        writeln!(f, "  MPC: {:.2} s", self.mpc_time.as_secs_f64())?;
        writeln!(f, "  STP: {:.2} s", self.stp_time.as_secs_f64())?;
        writeln!(f, "network bytes: {}", self.network_bytes)?;
        if self.net_measured {
            writeln!(
                f,
                "measured MPC traffic: {} B over {} messages in {} rounds \
                 ({} mesh build(s))",
                self.net.total_bytes(),
                self.net.total_messages(),
                self.net.rounds,
                self.net.mesh_builds
            )?;
            for ((from, to), link) in &self.net.links {
                writeln!(
                    f,
                    "  link P{from} -> P{to}: {} B in {} messages",
                    link.bytes, link.messages
                )?;
            }
            writeln!(
                f,
                "integrity: {} deferred MAC check(s) at reveal boundaries",
                self.mpc_stats.counts.mac_checks
            )?;
        }
        if let Some(dealer) = &self.dealer_net {
            writeln!(
                f,
                "offline (dealer) traffic: {} B over {} messages",
                dealer.total_bytes(),
                dealer.total_messages()
            )?;
            for ((from, to), link) in &dealer.links {
                let name = |p: &u32| {
                    if *p == crate::party_exec::DEALER_ID {
                        "dealer".to_string()
                    } else {
                        format!("P{p}")
                    }
                };
                writeln!(
                    f,
                    "  link {} -> {}: {} B in {} messages",
                    name(from),
                    name(to),
                    link.bytes,
                    link.messages
                )?;
            }
        }
        writeln!(
            f,
            "data-plane conversions: {} row->columnar, {} columnar->row",
            self.conversions.row_to_columnar, self.conversions.columnar_to_row
        )?;
        writeln!(
            f,
            "MPC primitives: {} non-linear ops, {} AND gates",
            self.mpc_stats.counts.nonlinear_ops(),
            self.mpc_stats.circuit.and_gates
        )?;
        writeln!(f, "leakage events: {}", self.leakage.len())?;
        for e in &self.leakage {
            writeln!(
                f,
                "  node #{} -> P{}: {} ({})",
                e.node, e.to_party, e.what, e.justification
            )?;
        }
        for (party, rel) in &self.outputs {
            writeln!(f, "output for P{party}: {} rows", rel.num_rows())?;
        }
        if let Some(static_report) = &self.static_leakage {
            write!(f, "{static_report}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_is_critical_path() {
        let mut r = RunReport::default();
        r.local_time.insert(1, Duration::from_secs(5));
        r.local_time.insert(2, Duration::from_secs(9));
        r.mpc_time = Duration::from_secs(3);
        r.stp_time = Duration::from_secs(1);
        assert_eq!(r.total_time(), Duration::from_secs(13));
        // With no local work at all, only MPC+STP count.
        let r2 = RunReport {
            mpc_time: Duration::from_secs(2),
            ..Default::default()
        };
        assert_eq!(r2.total_time(), Duration::from_secs(2));
    }

    #[test]
    fn leakage_and_outputs_render() {
        let mut r = RunReport::default();
        r.record_leakage(3, 1, "ssn column", "trust annotation names P1 as STP");
        r.outputs.insert(1, Relation::from_ints(&["x"], &[vec![1]]));
        assert!(r.output_for(1).is_some());
        assert!(r.output_for(2).is_none());
        let text = r.to_string();
        assert!(text.contains("leakage events: 1"));
        assert!(text.contains("ssn column"));
        assert!(text.contains("output for P1: 1 rows"));
    }
}
