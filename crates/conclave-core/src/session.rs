//! The [`Session`] facade: the one-stop entry point for compiling and
//! driving a Conclave query.
//!
//! A session owns a [`ConclaveConfig`] and a set of named input bindings
//! ([`Table`]s), and `run` compiles the query and executes it in one call:
//!
//! ```text
//! Session::new(config).bind("inputA", table).run(&query)
//! ```
//!
//! Bindings accept anything convertible into a [`Table`] — a row-major
//! [`conclave_engine::Relation`], a [`conclave_engine::ColumnarRelation`], or
//! a `Table` built elsewhere. Binding column-backed tables to a columnar-mode
//! session means the whole driven query runs without row↔columnar conversion
//! until the reveal/collect boundary.

use crate::config::ConclaveConfig;
use crate::driver::{Driver, DriverError};
use crate::passes::leakage::LeakageReport;
use crate::plan::{compile, CompileError, PhysicalPlan};
use crate::report::RunReport;
use conclave_engine::Table;
use conclave_ir::builder::Query;
use conclave_sql::SqlError;
use std::collections::HashMap;
use std::fmt;

/// Errors raised by [`Session::run`] and [`Session::run_sql`]: SQL frontend,
/// compilation or execution failures, with the underlying cause preserved in
/// [`std::error::Error::source`].
#[derive(Debug)]
pub enum SessionError {
    /// The SQL text failed to parse, bind or type-check (the error's
    /// `Display` includes a caret diagnostic into the query text).
    Sql(SqlError),
    /// The query failed to compile under the session's configuration.
    Compile(CompileError),
    /// The compiled plan failed to execute.
    Driver(DriverError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Sql(e) => write!(f, "SQL frontend failed: {e}"),
            SessionError::Compile(e) => write!(f, "compilation failed: {e}"),
            SessionError::Driver(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Sql(e) => Some(e),
            SessionError::Compile(e) => Some(e),
            SessionError::Driver(e) => Some(e),
        }
    }
}

impl From<SqlError> for SessionError {
    fn from(e: SqlError) -> Self {
        SessionError::Sql(e)
    }
}

impl From<CompileError> for SessionError {
    fn from(e: CompileError) -> Self {
        SessionError::Compile(e)
    }
}

impl From<DriverError> for SessionError {
    fn from(e: DriverError) -> Self {
        SessionError::Driver(e)
    }
}

/// Compiles and drives queries over bound input tables.
///
/// # Example
///
/// The credit-scoring query of the paper's running example (Listing 1 shape):
/// a regulator holds demographics, two credit agencies hold score tables, and
/// only the per-zip totals ever leave the MPC boundary.
///
/// ```
/// use conclave_core::session::Session;
/// use conclave_core::config::ConclaveConfig;
/// use conclave_engine::Relation;
/// use conclave_ir::builder::QueryBuilder;
/// use conclave_ir::ops::AggFunc;
/// use conclave_ir::party::Party;
/// use conclave_ir::schema::{ColumnDef, Schema};
/// use conclave_ir::trust::TrustSet;
/// use conclave_ir::types::DataType;
///
/// let regulator = Party::new(1, "gov");
/// let bank_a = Party::new(2, "a");
/// let bank_b = Party::new(3, "b");
/// let demo = Schema::new(vec![
///     ColumnDef::new("ssn", DataType::Int),
///     ColumnDef::with_trust("zip", DataType::Int, TrustSet::of([1])),
/// ]);
/// let bank = Schema::new(vec![
///     ColumnDef::with_trust("ssn", DataType::Int, TrustSet::of([1])),
///     ColumnDef::new("score", DataType::Int),
/// ]);
/// let mut q = QueryBuilder::new();
/// let demographics = q.input("demographics", demo, regulator.clone());
/// let s1 = q.input("scores1", bank.clone(), bank_a);
/// let s2 = q.input("scores2", bank, bank_b);
/// let scores = q.concat(&[s1, s2]);
/// let joined = q.join(demographics, scores, &["ssn"], &["ssn"]);
/// let total = q.aggregate(joined, "total", AggFunc::Sum, &["zip"], "score");
/// q.collect(total, &[regulator]);
/// let query = q.build().unwrap();
///
/// let report = Session::new(ConclaveConfig::standard().with_sequential_local())
///     .bind(
///         "demographics",
///         Relation::from_ints(&["ssn", "zip"], &[vec![1, 10], vec![2, 20], vec![3, 10]]),
///     )
///     .bind(
///         "scores1",
///         Relation::from_ints(&["ssn", "score"], &[vec![1, 700], vec![3, 650]]),
///     )
///     .bind(
///         "scores2",
///         Relation::from_ints(&["ssn", "score"], &[vec![2, 600]]),
///     )
///     .run(&query)
///     .unwrap();
/// let out = report.output_for(1).expect("the regulator receives the result");
/// // zip 10: 700 + 650; zip 20: 600.
/// let expected = Relation::from_ints(&["zip", "total"], &[vec![10, 1350], vec![20, 600]]);
/// assert!(out.same_rows_unordered(&expected));
/// ```
#[derive(Debug, Default)]
pub struct Session {
    config: ConclaveConfig,
    bindings: HashMap<String, Table>,
}

impl Session {
    /// Creates a session with the given configuration and no bindings.
    pub fn new(config: ConclaveConfig) -> Self {
        Session {
            config,
            bindings: HashMap::new(),
        }
    }

    /// Binds a named input relation to data. Accepts a [`Table`] or anything
    /// convertible into one ([`conclave_engine::Relation`],
    /// [`conclave_engine::ColumnarRelation`]).
    ///
    /// Binding a name that is already bound **replaces** the previous data
    /// (last bind wins) — rebinding is the supported way to refresh an input
    /// between runs, never an error or a silent no-op.
    pub fn bind(mut self, name: impl Into<String>, table: impl Into<Table>) -> Self {
        self.bindings.insert(name.into(), table.into());
        self
    }

    /// The session's configuration.
    pub fn config(&self) -> &ConclaveConfig {
        &self.config
    }

    /// The current input bindings.
    pub fn bindings(&self) -> &HashMap<String, Table> {
        &self.bindings
    }

    /// Compiles the query under the session's configuration.
    pub fn compile(&self, query: &Query) -> Result<PhysicalPlan, SessionError> {
        compile(query, &self.config).map_err(SessionError::from)
    }

    /// Compiles and executes the query over the bound inputs.
    pub fn run(&self, query: &Query) -> Result<RunReport, SessionError> {
        let plan = self.compile(query)?;
        self.run_plan(&plan)
    }

    /// Compiles the query and returns its statically certified per-party
    /// leakage report without executing anything — the programmatic form of
    /// SQL `EXPLAIN LEAKAGE`.
    ///
    /// Fails with [`SessionError::Compile`] (carrying
    /// [`CompileError::Leakage`]) if the linter proves the plan would
    /// disclose a column to a party outside its trust set.
    pub fn explain_leakage(&self, query: &Query) -> Result<LeakageReport, SessionError> {
        Ok(self.compile(query)?.leakage)
    }

    /// Parses and compiles a SQL script and returns the plan's statically
    /// certified leakage report without executing it (the script does not
    /// need an `EXPLAIN LEAKAGE` prefix; `run_sql` handles scripts that
    /// carry one).
    pub fn explain_leakage_sql(&self, sql: &str) -> Result<LeakageReport, SessionError> {
        let query = self.sql_query(sql)?;
        self.explain_leakage(&query)
    }

    /// Compiles and executes a SQL script over the bound inputs.
    ///
    /// The script's `CREATE TABLE … WITH OWNER` declarations name the input
    /// relations (the same names passed to [`Session::bind`]), carry the
    /// per-column `PUBLIC` / `TRUSTED BY` annotations, and the query's
    /// `REVEAL TO` clause names the output recipients. The SQL lowers to the
    /// same operator DAG the [`conclave_ir::builder::QueryBuilder`] would
    /// build, then flows through the full pass pipeline and whichever runtime
    /// the session is configured for. Declared schemas are checked against
    /// the bound tables (column names and types must match).
    ///
    /// # Example
    ///
    /// The credit-scoring query of the paper's running example, in SQL:
    ///
    /// ```
    /// use conclave_core::config::ConclaveConfig;
    /// use conclave_core::session::Session;
    /// use conclave_engine::Relation;
    ///
    /// let report = Session::new(ConclaveConfig::standard().with_sequential_local())
    ///     .bind(
    ///         "demographics",
    ///         Relation::from_ints(&["ssn", "zip"], &[vec![1, 10], vec![2, 20], vec![3, 10]]),
    ///     )
    ///     .bind(
    ///         "scores1",
    ///         Relation::from_ints(&["ssn", "score"], &[vec![1, 700], vec![3, 650]]),
    ///     )
    ///     .bind(
    ///         "scores2",
    ///         Relation::from_ints(&["ssn", "score"], &[vec![2, 600]]),
    ///     )
    ///     .run_sql(
    ///         "CREATE TABLE demographics (ssn INT, zip INT TRUSTED BY (p1)) WITH OWNER p1;
    ///          CREATE TABLE scores1 (ssn INT TRUSTED BY (p1), score INT) WITH OWNER p2;
    ///          CREATE TABLE scores2 (ssn INT TRUSTED BY (p1), score INT) WITH OWNER p3;
    ///          SELECT zip, SUM(score) AS total
    ///          FROM demographics JOIN (scores1 UNION ALL scores2) ON ssn = ssn
    ///          GROUP BY zip
    ///          REVEAL TO p1;",
    ///     )
    ///     .unwrap();
    /// let out = report.output_for(1).expect("the regulator receives the result");
    /// // zip 10: 700 + 650; zip 20: 600.
    /// let expected = Relation::from_ints(&["zip", "total"], &[vec![10, 1350], vec![20, 600]]);
    /// assert!(out.same_rows_unordered(&expected));
    /// ```
    pub fn run_sql(&self, sql: &str) -> Result<RunReport, SessionError> {
        let script = self.parse_and_check(sql)?;
        let query = conclave_sql::lower_script(&script).map_err(|e| located(e, sql))?;
        if script.explain_leakage {
            // `EXPLAIN LEAKAGE`: compile (which runs the leakage linter) and
            // return the statically certified report without executing.
            let report = self.explain_leakage(&query)?;
            return Ok(RunReport {
                static_leakage: Some(report),
                ..RunReport::default()
            });
        }
        self.run(&query)
    }

    /// Parses, binds and lowers a SQL script to an IR [`Query`] without
    /// executing it, checking each declared table against the session's
    /// bound data (names and types) along the way.
    pub fn sql_query(&self, sql: &str) -> Result<Query, SessionError> {
        let script = self.parse_and_check(sql)?;
        conclave_sql::lower_script(&script).map_err(|e| located(e, sql))
    }

    /// Parses a SQL script and cross-checks each declared table against the
    /// session's bound data (column names and types must match).
    fn parse_and_check(&self, sql: &str) -> Result<conclave_sql::Script, SessionError> {
        let script = conclave_sql::parse_script(sql).map_err(|e| located(e, sql))?;
        for decl in &script.tables {
            let Some(bound) = self.bindings.get(&decl.name) else {
                continue;
            };
            let declared = conclave_sql::declared_schema(decl).map_err(|e| located(e, sql))?;
            let actual = bound.schema();
            if declared.names() != actual.names() {
                return Err(located(
                    SqlError::at(
                        decl.span,
                        format!(
                            "declared columns {:?} of table `{}` do not match the bound data's columns {:?}",
                            declared.names(),
                            decl.name,
                            actual.names()
                        ),
                    ),
                    sql,
                ));
            }
            for (d, a) in declared.columns.iter().zip(&actual.columns) {
                if d.dtype != a.dtype {
                    return Err(located(
                        SqlError::at(
                            decl.span,
                            format!(
                                "column `{}` of table `{}` is declared {} but the bound data is {}",
                                d.name, decl.name, d.dtype, a.dtype
                            ),
                        ),
                        sql,
                    ));
                }
            }
        }
        Ok(script)
    }

    /// Executes an already-compiled plan over the bound inputs.
    pub fn run_plan(&self, plan: &PhysicalPlan) -> Result<RunReport, SessionError> {
        let mut driver = Driver::new(self.config.clone());
        driver
            .run_tables(plan, &self.bindings)
            .map_err(SessionError::from)
    }
}

/// Locates a SQL error against its source so `Display` renders the caret
/// diagnostic, and wraps it for the session.
fn located(e: SqlError, sql: &str) -> SessionError {
    SessionError::Sql(e.located(sql))
}

/// A long-lived session for serving many queries: a [`Session`] plus one
/// [`Driver`] with [`Driver::retain_mesh`] enabled, so consecutive runs reuse
/// a single party mesh (workers, MAC key, resident dealer sessions —
/// `mesh_builds` stays at 1 across queries).
///
/// Unlike [`Session`]'s consuming builder, bindings here are updated in
/// place, because a serving tenant rebinds inputs between queries. The
/// reuse contract is explicit:
///
/// * **Rebinding** a name replaces the previous table (last bind wins).
/// * **A failed run leaves the session in a defined state**: the retained
///   mesh is discarded on any error, so the next run starts from a fresh
///   mesh instead of a desynchronized work queue, and bindings are
///   untouched.
pub struct PersistentSession {
    session: Session,
    driver: Driver,
}

impl fmt::Debug for PersistentSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PersistentSession")
            .field("session", &self.session)
            .field("live_mesh", &self.driver.has_live_mesh())
            .finish()
    }
}

impl PersistentSession {
    /// Creates a persistent session with the given configuration and no
    /// bindings. The mesh-retaining driver is created eagerly; the mesh
    /// itself is built lazily by the first run that needs MPC.
    pub fn new(config: ConclaveConfig) -> Self {
        let mut driver = Driver::new(config.clone());
        driver.retain_mesh(true);
        PersistentSession {
            session: Session::new(config),
            driver,
        }
    }

    /// Binds (or rebinds — last bind wins) a named input relation in place.
    pub fn bind(&mut self, name: impl Into<String>, table: impl Into<Table>) -> &mut Self {
        self.session.bindings.insert(name.into(), table.into());
        self
    }

    /// Removes a binding, returning the previously bound table if any.
    pub fn unbind(&mut self, name: &str) -> Option<Table> {
        self.session.bindings.remove(name)
    }

    /// The underlying [`Session`] (configuration, bindings, compile/explain
    /// helpers).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Whether a retained party mesh is currently alive from a prior run.
    pub fn has_live_mesh(&self) -> bool {
        self.driver.has_live_mesh()
    }

    /// Drops the retained party mesh (if any); the next run builds a fresh
    /// one. Runs call this automatically on error.
    pub fn reset_mesh(&mut self) {
        self.driver.reset_mesh();
    }

    /// Executes an already-compiled plan over the bound inputs, reusing the
    /// retained mesh. On error the mesh is discarded so the next run starts
    /// clean.
    pub fn run_plan(&mut self, plan: &PhysicalPlan) -> Result<RunReport, SessionError> {
        let result = self
            .driver
            .run_tables(plan, &self.session.bindings)
            .map_err(SessionError::from);
        if result.is_err() {
            // `run_tables` already drops the in-flight mesh on its own
            // errors; this also covers future error paths so a failed run
            // can never leave a stale mesh behind.
            self.driver.reset_mesh();
        }
        result
    }

    /// Compiles and executes the query over the bound inputs, reusing the
    /// retained mesh.
    pub fn run(&mut self, query: &Query) -> Result<RunReport, SessionError> {
        let plan = self.session.compile(query)?;
        self.run_plan(&plan)
    }

    /// Compiles and executes a SQL script over the bound inputs, reusing the
    /// retained mesh. Semantics match [`Session::run_sql`], including
    /// `EXPLAIN LEAKAGE` scripts (which compile but do not execute).
    pub fn run_sql(&mut self, sql: &str) -> Result<RunReport, SessionError> {
        let script = self.session.parse_and_check(sql)?;
        let query = conclave_sql::lower_script(&script).map_err(|e| located(e, sql))?;
        if script.explain_leakage {
            let report = self.session.explain_leakage(&query)?;
            return Ok(RunReport {
                static_leakage: Some(report),
                ..RunReport::default()
            });
        }
        self.run(&query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_engine::{ColumnarRelation, EngineMode, Relation};
    use conclave_ir::builder::QueryBuilder;
    use conclave_ir::ops::AggFunc;
    use conclave_ir::party::Party;
    use conclave_ir::schema::Schema;

    fn two_party_sum_query() -> Query {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let schema = Schema::ints(&["k", "v"]);
        let mut q = QueryBuilder::new();
        let a = q.input("ta", schema.clone(), pa.clone());
        let b = q.input("tb", schema, pb);
        let both = q.concat(&[a, b]);
        let sums = q.aggregate(both, "total", AggFunc::Sum, &["k"], "v");
        q.collect(sums, &[pa]);
        q.build().unwrap()
    }

    #[test]
    fn session_compiles_binds_and_runs() {
        let query = two_party_sum_query();
        let report = Session::new(ConclaveConfig::standard().with_sequential_local())
            .bind("ta", Relation::from_ints(&["k", "v"], &[vec![1, 2]]))
            .bind("tb", Relation::from_ints(&["k", "v"], &[vec![1, 3]]))
            .run(&query)
            .unwrap();
        let out = report.output_for(1).unwrap();
        let expected = Relation::from_ints(&["k", "total"], &[vec![1, 5]]);
        assert!(out.same_rows_unordered(&expected));
    }

    #[test]
    fn session_accepts_columnar_bindings_and_exposes_state() {
        let query = two_party_sum_query();
        let session = Session::new(
            ConclaveConfig::standard()
                .with_sequential_local()
                .with_columnar(),
        )
        .bind(
            "ta",
            ColumnarRelation::from_rows(&Relation::from_ints(&["k", "v"], &[vec![1, 2]])),
        )
        .bind("tb", Relation::from_ints(&["k", "v"], &[vec![2, 3]]));
        assert_eq!(session.config().engine_mode, EngineMode::Columnar);
        assert_eq!(session.bindings().len(), 2);
        assert!(session.bindings()["ta"].has_columns());
        let plan = session.compile(&query).unwrap();
        let report = session.run_plan(&plan).unwrap();
        assert_eq!(report.output_for(1).unwrap().num_rows(), 2);
    }

    const SUM_SQL: &str = "
        CREATE TABLE ta (k INT, v INT) WITH OWNER p1;
        CREATE TABLE tb (k INT, v INT) WITH OWNER p2;
        SELECT k, SUM(v) AS total FROM (ta UNION ALL tb) GROUP BY k REVEAL TO p1;
    ";

    #[test]
    fn run_sql_matches_builder_query() {
        let session = Session::new(ConclaveConfig::standard().with_sequential_local())
            .bind("ta", Relation::from_ints(&["k", "v"], &[vec![1, 2]]))
            .bind("tb", Relation::from_ints(&["k", "v"], &[vec![1, 3]]));
        let sql_report = session.run_sql(SUM_SQL).unwrap();
        let builder_report = session.run(&two_party_sum_query()).unwrap();
        let sql_out = sql_report.output_for(1).unwrap();
        let builder_out = builder_report.output_for(1).unwrap();
        assert!(sql_out.same_rows_unordered(builder_out));
    }

    #[test]
    fn run_sql_rejects_mismatched_bindings() {
        // Wrong column names.
        let err = Session::new(ConclaveConfig::standard().with_sequential_local())
            .bind("ta", Relation::from_ints(&["k", "w"], &[vec![1, 2]]))
            .bind("tb", Relation::from_ints(&["k", "v"], &[vec![1, 3]]))
            .run_sql(SUM_SQL)
            .unwrap_err();
        assert!(matches!(err, SessionError::Sql(_)));
        assert!(err.to_string().contains("do not match"));
        // Wrong column type.
        let sql = "CREATE TABLE ta (k INT, v TEXT) WITH OWNER p1;
                   SELECT k FROM ta REVEAL TO p1;";
        let err = Session::new(ConclaveConfig::standard().with_sequential_local())
            .bind("ta", Relation::from_ints(&["k", "v"], &[vec![1, 2]]))
            .run_sql(sql)
            .unwrap_err();
        assert!(err.to_string().contains("declared STR"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn explain_leakage_sql_reports_without_executing() {
        // No bindings at all: EXPLAIN LEAKAGE must not touch input data.
        let session = Session::new(ConclaveConfig::standard().with_sequential_local());
        let sql = "
            CREATE TABLE ta (k INT, v INT) WITH OWNER p1;
            CREATE TABLE tb (k INT, v INT) WITH OWNER p2;
            EXPLAIN LEAKAGE
            SELECT k, SUM(v) AS total FROM (ta UNION ALL tb) GROUP BY k REVEAL TO p1;
        ";
        let report = session.run_sql(sql).unwrap();
        assert!(report.outputs.is_empty());
        assert!(report.leakage.is_empty());
        let static_report = report.static_leakage.expect("explain attaches the report");
        assert!(!static_report.for_party(1).is_empty());
        assert!(static_report.render().contains("query-output"));
        // The programmatic form returns the same report.
        let direct = session.explain_leakage_sql(sql).unwrap();
        assert_eq!(direct, static_report);
    }

    #[test]
    fn run_sql_parse_errors_carry_caret_diagnostics() {
        let err = Session::new(ConclaveConfig::standard().with_sequential_local())
            .run_sql("SELECT FROM t REVEAL TO p1")
            .unwrap_err();
        let shown = err.to_string();
        assert!(shown.contains("line 1"));
        assert!(shown.contains('^'));
    }

    #[test]
    fn rebinding_a_name_replaces_the_previous_table() {
        let query = two_party_sum_query();
        // The stale `ta` (v = 100) is replaced wholesale by the rebind.
        let report = Session::new(ConclaveConfig::standard().with_sequential_local())
            .bind("ta", Relation::from_ints(&["k", "v"], &[vec![1, 100]]))
            .bind("tb", Relation::from_ints(&["k", "v"], &[vec![1, 3]]))
            .bind("ta", Relation::from_ints(&["k", "v"], &[vec![1, 2]]))
            .run(&query)
            .unwrap();
        let expected = Relation::from_ints(&["k", "total"], &[vec![1, 5]]);
        assert!(report.output_for(1).unwrap().same_rows_unordered(&expected));
    }

    #[test]
    fn persistent_session_recovers_after_a_failed_run() {
        let query = two_party_sum_query();
        let mut sess = PersistentSession::new(ConclaveConfig::standard().with_sequential_local());
        sess.bind("ta", Relation::from_ints(&["k", "v"], &[vec![1, 2]]));
        // `tb` is unbound: the run fails but leaves a defined state.
        let err = sess.run(&query).unwrap_err();
        assert!(matches!(err, SessionError::Driver(_)));
        assert!(!sess.has_live_mesh());
        assert_eq!(sess.session().bindings().len(), 1, "bindings survive");
        // Bind the missing input (and rebind `ta`) and the same session runs.
        sess.bind("ta", Relation::from_ints(&["k", "v"], &[vec![1, 7]]));
        sess.bind("tb", Relation::from_ints(&["k", "v"], &[vec![1, 3]]));
        let report = sess.run(&query).unwrap();
        let expected = Relation::from_ints(&["k", "total"], &[vec![1, 10]]);
        assert!(report.output_for(1).unwrap().same_rows_unordered(&expected));
        assert!(sess.unbind("tb").is_some());
        assert!(sess.unbind("tb").is_none());
    }

    #[test]
    fn persistent_session_reuses_one_mesh_across_queries() {
        use conclave_mpc::dealer::{MaterialPool, MaterialSpec};
        let spec = MaterialSpec {
            triples: 512,
            bit_triples: 1024,
            shared_bits: 512,
            dabits: 128,
            input_masks: 256,
        };
        // The mesh size follows the backend protocol (3 parties), not the
        // query's owner count.
        let pool = MaterialPool::start(7, 3, spec, 2);
        let mut sess = PersistentSession::new(
            ConclaveConfig::standard()
                .with_sequential_local()
                .with_channel_runtime()
                .with_pooled_dealer(pool),
        );
        sess.bind("ta", Relation::from_ints(&["k", "v"], &[vec![1, 2]]));
        sess.bind("tb", Relation::from_ints(&["k", "v"], &[vec![1, 3]]));
        let mut total_builds = 0;
        for run in 0..3 {
            let report = sess.run_sql(SUM_SQL).unwrap();
            let expected = Relation::from_ints(&["k", "total"], &[vec![1, 5]]);
            assert!(
                report.output_for(1).unwrap().same_rows_unordered(&expected),
                "run {run}"
            );
            assert!(report.net_measured, "run {run} went over the channel mesh");
            total_builds += report.mesh_builds();
        }
        assert_eq!(total_builds, 1, "one mesh serves all three queries");
        assert!(sess.has_live_mesh());
        // An error drops the mesh; the next run rebuilds exactly one.
        sess.unbind("tb");
        sess.run_sql(SUM_SQL).unwrap_err();
        assert!(!sess.has_live_mesh());
        sess.bind("tb", Relation::from_ints(&["k", "v"], &[vec![1, 3]]));
        let report = sess.run_sql(SUM_SQL).unwrap();
        assert_eq!(report.mesh_builds(), 1, "fresh mesh after the failure");
        assert!(sess.has_live_mesh());
    }

    #[test]
    fn missing_binding_surfaces_as_driver_error_with_source() {
        let query = two_party_sum_query();
        let err = Session::new(ConclaveConfig::standard().with_sequential_local())
            .bind("ta", Relation::from_ints(&["k", "v"], &[vec![1, 2]]))
            .run(&query)
            .unwrap_err();
        assert!(matches!(err, SessionError::Driver(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("tb"));
    }
}
