//! Per-backend job descriptions.
//!
//! The paper's prototype emits Python/Spark programs for the cleartext steps
//! and SecreC/Obliv-C programs for the MPC steps. In this reproduction the
//! engines are libraries rather than external systems, so code generation
//! produces *job descriptions*: human-readable scripts per execution stage
//! that document exactly which operators each backend runs and in what order.
//! These are useful for inspecting compiled plans, for the documentation, and
//! as a stand-in for the prototype's generated artifacts.

use crate::plan::PhysicalPlan;
use conclave_ir::ops::ExecSite;
use std::fmt::Write as _;

/// A generated job for one execution stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Target backend ("spark", "python", "sharemind", "obliv-c", "stp").
    pub backend: String,
    /// Where the job runs.
    pub site: String,
    /// The generated script (pseudo-code).
    pub script: String,
}

/// Generates one job description per stage of the plan.
pub fn generate_jobs(plan: &PhysicalPlan) -> Vec<JobSpec> {
    let mpc_backend = plan.config.mpc.kind.to_string();
    let local_backend = match plan.config.local_backend {
        crate::config::LocalBackend::Parallel => "spark-like parallel engine",
        crate::config::LocalBackend::Sequential => "sequential engine",
    };
    plan.stages()
        .iter()
        .map(|stage| {
            let (backend, site) = match stage.site {
                ExecSite::Mpc => (mpc_backend.clone(), "all parties (MPC)".to_string()),
                ExecSite::Local(p) => (local_backend.to_string(), format!("party P{p}")),
                ExecSite::Stp(p) => ("stp cleartext".to_string(), format!("STP P{p}")),
                ExecSite::Undecided => ("unassigned".to_string(), "unassigned".to_string()),
            };
            let mut script = String::new();
            let _ = writeln!(script, "# stage at {site} using {backend}");
            for &id in &stage.nodes {
                if let Ok(node) = plan.dag.node(id) {
                    let inputs: Vec<String> =
                        node.inputs.iter().map(|i| format!("rel_{i}")).collect();
                    let _ = writeln!(
                        script,
                        "rel_{id} = {}({})  # schema {}",
                        node.op.name(),
                        inputs.join(", "),
                        node.schema
                    );
                }
            }
            JobSpec {
                backend,
                site,
                script,
            }
        })
        .collect()
}

/// Renders all generated jobs as one annotated document.
pub fn render_all(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Generated Conclave jobs ({} stages)",
        plan.stages().len()
    );
    for (i, job) in generate_jobs(plan).iter().enumerate() {
        let _ = writeln!(out, "\n## Job {i}: {} @ {}", job.backend, job.site);
        out.push_str(&job.script);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConclaveConfig;
    use crate::plan::compile;
    use conclave_ir::builder::QueryBuilder;
    use conclave_ir::ops::AggFunc;
    use conclave_ir::party::Party;
    use conclave_ir::schema::Schema;

    fn plan() -> PhysicalPlan {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let mut q = QueryBuilder::new();
        let a = q.input("a", Schema::ints(&["k", "v"]), pa.clone());
        let b = q.input("b", Schema::ints(&["k", "v"]), pb);
        let cat = q.concat(&[a, b]);
        let agg = q.aggregate(cat, "s", AggFunc::Sum, &["k"], "v");
        q.collect(agg, &[pa]);
        compile(&q.build().unwrap(), &ConclaveConfig::standard()).unwrap()
    }

    #[test]
    fn one_job_per_stage_and_every_node_appears() {
        let plan = plan();
        let jobs = generate_jobs(&plan);
        assert_eq!(jobs.len(), plan.stages().len());
        let all_scripts: String = jobs.iter().map(|j| j.script.clone()).collect();
        for node in plan.dag.iter() {
            assert!(
                all_scripts.contains(&format!("rel_{} =", node.id)),
                "node {} missing from generated jobs",
                node.id
            );
        }
        // MPC stages name the MPC backend.
        assert!(jobs.iter().any(|j| j.backend.contains("sharemind")));
    }

    #[test]
    fn render_all_is_one_document() {
        let plan = plan();
        let doc = render_all(&plan);
        assert!(doc.starts_with("# Generated Conclave jobs"));
        assert!(doc.contains("## Job 0"));
        assert!(doc.contains("aggregate"));
    }
}
