//! Annotation propagation (§5.1): relation ownership and column trust sets.

use conclave_ir::dag::{NodeId, OpDag};
use conclave_ir::error::IrResult;
use conclave_ir::ops::Operator;
use conclave_ir::party::{PartyId, PartySet};
use conclave_ir::schema::Schema;
use conclave_ir::trust::TrustSet;
use std::collections::HashMap;

/// Propagates relation ownership down the DAG.
///
/// A party *owns* an intermediate relation if it can derive it locally from
/// its own data alone. Input relations are owned by their storing party; a
/// unary operator's output inherits its input's owner; a multi-input
/// operator's output is owned only if every input has the same owner,
/// otherwise it has no owner and must be computed under MPC (§5.1).
pub fn propagate_ownership(dag: &mut OpDag) -> IrResult<()> {
    let order = dag.topo_order()?;
    for id in order {
        let node = dag.node(id)?;
        let owner: Option<PartyId> = match &node.op {
            Operator::Input { party, .. } => Some(*party),
            _ => {
                let mut owners = Vec::new();
                for &input in &node.inputs {
                    owners.push(dag.node(input)?.owner);
                }
                if owners.is_empty() {
                    None
                } else if owners.iter().all(|o| *o == owners[0]) {
                    owners[0]
                } else {
                    None
                }
            }
        };
        dag.node_mut(id)?.owner = owner;
    }
    Ok(())
}

/// Propagates per-column trust sets down the DAG.
///
/// The trust set of each result column is the intersection of the trust sets
/// of every operand column it depends on, where the dependency relation is
/// the one defined by [`Operator::column_dependencies`]: columns contributing
/// rows, plus columns that determine how rows are combined, filtered or
/// reordered (join keys, group-by keys, filter predicates).
pub fn propagate_trust(dag: &mut OpDag) -> IrResult<()> {
    let order = dag.topo_order()?;
    for id in order {
        let node = dag.node(id)?;
        if node.op.is_input() {
            continue;
        }
        let input_schemas: Vec<Schema> = node
            .inputs
            .iter()
            .map(|&i| dag.node(i).map(|n| n.schema.clone()))
            .collect::<IrResult<_>>()?;
        let op = node.op.clone();
        let output = node.schema.clone();
        let deps = op.column_dependencies(&input_schemas, &output)?;
        let dep_map: HashMap<&str, &Vec<(usize, String)>> =
            deps.iter().map(|(name, d)| (name.as_str(), d)).collect();

        let mut new_schema = output.clone();
        for col in &mut new_schema.columns {
            let Some(dependencies) = dep_map.get(col.name.as_str()) else {
                continue;
            };
            let mut trust = TrustSet::Public;
            for (input_idx, input_col) in dependencies.iter() {
                if let Some(c) = input_schemas[*input_idx].column(input_col) {
                    trust = trust.intersect(&c.trust);
                }
            }
            // A column with no dependencies (e.g. a constant enumeration
            // index) stays public; otherwise use the intersection.
            if !dependencies.is_empty() {
                col.trust = trust;
            }
        }
        dag.node_mut(id)?.schema = new_schema;
    }
    Ok(())
}

/// Returns the parties trusted with *all* of the named columns of a node's
/// output relation, restricted to the given party universe.
pub fn trusted_parties_for_columns(
    dag: &OpDag,
    node: NodeId,
    columns: &[String],
    universe: &PartySet,
) -> IrResult<PartySet> {
    let schema = &dag.node(node)?.schema;
    let mut trusted = universe.clone();
    for c in columns {
        let idx = schema.require(c, "trust lookup")?;
        trusted = schema.columns[idx]
            .trust
            .trusted_within(universe)
            .intersection(&trusted);
    }
    Ok(trusted)
}

/// Collects, for every node, the set of parties that the trust analysis
/// authorizes to see the node's full output in cleartext. Used by the
/// driver's leakage audit.
pub fn authorized_viewers(dag: &OpDag, universe: &PartySet) -> IrResult<HashMap<NodeId, PartySet>> {
    let mut out = HashMap::new();
    for node in dag.iter() {
        let mut trusted = universe.clone();
        for col in &node.schema.columns {
            trusted = trusted.intersection(&col.trust.trusted_within(universe));
        }
        // The owner can always see its own relation.
        if let Some(owner) = node.owner {
            trusted.insert(owner);
        }
        out.insert(node.id, trusted);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::builder::QueryBuilder;
    use conclave_ir::ops::AggFunc;
    use conclave_ir::party::Party;
    use conclave_ir::schema::{ColumnDef, Schema};
    use conclave_ir::types::DataType;

    /// Builds the credit-card regulation query of Listing 1.
    fn credit_query() -> conclave_ir::builder::Query {
        let regulator = Party::new(1, "mpc.ftc.gov");
        let bank_a = Party::new(2, "mpc.a.com");
        let bank_b = Party::new(3, "mpc.b.cash");
        let demo = Schema::new(vec![
            ColumnDef::new("ssn", DataType::Int),
            ColumnDef::new("zip", DataType::Int),
        ]);
        let bank = Schema::new(vec![
            ColumnDef::with_trust("ssn", DataType::Int, TrustSet::of([1])),
            ColumnDef::new("score", DataType::Int),
        ]);
        let mut q = QueryBuilder::new();
        let demographics = q.input("demographics", demo, regulator.clone());
        let s1 = q.input("scores1", bank.clone(), bank_a);
        let s2 = q.input("scores2", bank, bank_b);
        let scores = q.concat(&[s1, s2]);
        let joined = q.join(demographics, scores, &["ssn"], &["ssn"]);
        let total = q.aggregate(joined, "total", AggFunc::Sum, &["zip"], "score");
        let count = q.count(joined, "count", &["zip"]);
        let both = q.join(total, count, &["zip"], &["zip"]);
        let avg = q.divide(
            both,
            "avg_score",
            conclave_ir::ops::Operand::col("total"),
            conclave_ir::ops::Operand::col("count"),
        );
        q.collect(avg, &[regulator]);
        q.build().unwrap()
    }

    #[test]
    fn ownership_distinguishes_singleton_and_partitioned_relations() {
        let query = credit_query();
        let mut dag = query.dag.clone();
        propagate_ownership(&mut dag).unwrap();
        // Inputs keep their owners.
        for root in dag.roots() {
            assert!(dag.node(root).unwrap().owner.is_some());
        }
        // The concat of the two banks' relations has no owner.
        let concat = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Concat))
            .unwrap();
        assert_eq!(concat.owner, None);
        // And so does everything downstream of it.
        let leaf = dag.leaves()[0];
        assert_eq!(dag.node(leaf).unwrap().owner, None);
    }

    #[test]
    fn unary_chains_inherit_ownership() {
        let pa = Party::new(1, "a");
        let mut q = QueryBuilder::new();
        let t = q.input("t", Schema::ints(&["k", "v"]), pa.clone());
        let f = q.filter(
            t,
            conclave_ir::expr::Expr::col("v").gt(conclave_ir::expr::Expr::lit(0)),
        );
        let p = q.project(f, &["k"]);
        q.collect(p, &[pa]);
        let mut dag = q.build().unwrap().dag;
        propagate_ownership(&mut dag).unwrap();
        for node in dag.iter() {
            assert_eq!(node.owner, Some(1), "single-party query is fully owned");
        }
    }

    #[test]
    fn trust_propagation_follows_intersection_rule() {
        let query = credit_query();
        let mut dag = query.dag.clone();
        propagate_ownership(&mut dag).unwrap();
        propagate_trust(&mut dag).unwrap();

        // The concat of the banks' scores: ssn column trusted by the
        // regulator (party 1) via both banks' annotations (plus each bank
        // trusts itself, but the intersection across banks removes that).
        let concat = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Concat))
            .unwrap();
        let ssn_trust = &concat.schema.column("ssn").unwrap().trust;
        assert!(ssn_trust.trusts(1), "regulator is trusted with bank SSNs");
        assert!(
            !ssn_trust.trusts(2),
            "bank A not trusted with bank B's SSNs"
        );

        // The score column is private: nobody (beyond implicit owners, which
        // differ across banks) is in its intersection.
        let score_trust = &concat.schema.column("score").unwrap().trust;
        assert!(!score_trust.trusts(1) && !score_trust.trusts(2) && !score_trust.trusts(3));

        // After the join on ssn, the aggregate output depends on zip (owned
        // by the regulator only) and score: trusted by no one jointly.
        let agg = dag
            .iter()
            .find(|n| matches!(&n.op, Operator::Aggregate { out, .. } if out == "total"))
            .unwrap();
        let total_trust = &agg.schema.column("total").unwrap().trust;
        assert!(!total_trust.trusts(2));
    }

    #[test]
    fn trusted_parties_helper_and_authorized_viewers() {
        let query = credit_query();
        let mut dag = query.dag.clone();
        propagate_ownership(&mut dag).unwrap();
        propagate_trust(&mut dag).unwrap();
        let universe = query.party_set();
        let concat = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Concat))
            .unwrap()
            .id;
        let trusted =
            trusted_parties_for_columns(&dag, concat, &["ssn".to_string()], &universe).unwrap();
        assert_eq!(trusted.iter().collect::<Vec<_>>(), vec![1]);
        assert!(
            trusted_parties_for_columns(&dag, concat, &["zzz".to_string()], &universe).is_err()
        );

        let viewers = authorized_viewers(&dag, &universe).unwrap();
        // Every input node's owner may view it.
        for root in dag.roots() {
            let owner = dag.node(root).unwrap().owner.unwrap();
            assert!(viewers[&root].contains(owner));
        }
        // Nobody is authorized to view the joined relation in full.
        let join = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Join { .. }))
            .unwrap()
            .id;
        assert!(viewers[&join].is_empty());
    }

    #[test]
    fn public_columns_stay_public_through_projections() {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let schema = Schema::new(vec![
            ColumnDef::public("patientID", DataType::Int),
            ColumnDef::new("diagnosis", DataType::Int),
        ]);
        let mut q = QueryBuilder::new();
        let a = q.input("a", schema.clone(), pa.clone());
        let b = q.input("b", schema, pb);
        let cat = q.concat(&[a, b]);
        let proj = q.project(cat, &["patientID"]);
        q.collect(proj, &[pa]);
        let mut dag = q.build().unwrap().dag;
        propagate_ownership(&mut dag).unwrap();
        propagate_trust(&mut dag).unwrap();
        let leaf_proj = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Project { .. }))
            .unwrap();
        assert!(leaf_proj
            .schema
            .column("patientID")
            .unwrap()
            .trust
            .is_public());
    }
}
