//! The Conclave query compiler and multi-party driver.
//!
//! This crate implements the paper's primary contribution (§5): given a
//! relational query over relations distributed across mutually-distrusting
//! parties, it
//!
//! 1. propagates *ownership* and *trust* annotations through the operator DAG
//!    ([`analysis`]),
//! 2. pushes the MPC frontier down into local, per-party pre-processing and
//!    up into cleartext post-processing at the output recipient
//!    ([`passes::pushdown`], [`passes::pushup`]),
//! 3. replaces expensive MPC joins and aggregations with hybrid MPC–cleartext
//!    operators when the trust annotations authorize a selectively-trusted
//!    party ([`passes::hybrid`]),
//! 4. eliminates redundant oblivious sorts ([`passes::sort_elim`]),
//! 5. statically certifies the final plan with the leakage linter
//!    ([`passes::leakage`]): every cleartext placement and reveal is proven
//!    to honor the trust annotations, or compilation fails,
//! 6. partitions the DAG into local, STP and MPC stages and produces a
//!    [`plan::PhysicalPlan`] plus per-backend job descriptions ([`codegen`]),
//!    and
//! 7. executes the plan with the [`driver::Driver`], which combines the
//!    cleartext engines (`conclave-engine`, `conclave-parallel`) with the MPC
//!    substrates (`conclave-mpc`) and reports results, simulated runtime and
//!    a leakage audit ([`report`]).
//!
//! MPC plan steps run in one of two modes, selected by
//! [`config::ConclaveConfig::party_runtime`]: the default *simulated* mode
//! (single-process protocol engine, modeled network costs) or the
//! *distributed party runtime* ([`party_exec`]), which spawns one protocol
//! endpoint per computing party over a real
//! [`Transport`](conclave_net::Transport) and records measured per-link
//! traffic in [`report::RunReport::net`].
//!
//! For paper-scale inputs that cannot be materialized, [`cardinality`]
//! propagates row counts through the compiled plan and converts them into
//! simulated runtimes using the same cost models the driver charges.

// Also enforced workspace-wide via [workspace.lints]; stated here so the
// guarantee is visible at the crate root.
#![forbid(unsafe_code)]

pub mod analysis;
pub mod cardinality;
pub mod codegen;
pub mod config;
pub mod driver;
pub mod hybrid_exec;
pub mod party_exec;
pub mod passes;
pub mod plan;
pub mod report;
pub mod session;

pub use analysis::{propagate_ownership, propagate_trust};
pub use cardinality::{CardinalityEstimator, RuntimeEstimate, WorkloadStats};
pub use config::{ConclaveConfig, DealerMode, PartyRuntime};
pub use driver::Driver;
pub use passes::leakage::{Disclosure, DisclosureKind, LeakageReport, LeakageViolation};
pub use plan::{compile, CompileError, CompileResult, PhysicalPlan};
pub use report::RunReport;
pub use session::{PersistentSession, Session, SessionError};
