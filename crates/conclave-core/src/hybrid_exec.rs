//! Execution of the hybrid MPC–cleartext protocols (§5.3).
//!
//! These functions implement the three hybrid operators end to end, using the
//! real secret-sharing protocol of `conclave-mpc` for the MPC steps and a
//! cleartext [`Executor`] for the selectively-trusted party's local steps.
//! All cleartext data moves as [`Table`]s: the STP-side intermediates stay in
//! the executor's native representation (columnar executors keep them
//! columnar), and secret-sharing picks the column-at-a-time path whenever a
//! table's columns are already materialized. The returned statistics separate
//! MPC time from STP cleartext time so the driver can account them like the
//! paper's deployment would (the STP works while the other parties wait).

use conclave_engine::{ConversionCounts, Executor, Table};
use conclave_ir::ops::{join_schema, AggFunc, Operator};
use conclave_ir::party::PartyId;
use conclave_mpc::backend::{MpcEngine, MpcError, MpcResult, MpcStepStats};
use conclave_mpc::oblivious;
use conclave_mpc::relation::SharedRelation;
use std::time::Duration;

/// Result of one hybrid-protocol execution.
#[derive(Debug, Clone)]
pub struct HybridOutcome {
    /// The (cleartext) result table.
    pub result: Table,
    /// MPC-side statistics (sharing, shuffles, oblivious indexing, opens).
    pub mpc_stats: MpcStepStats,
    /// Simulated cleartext time spent at the STP / helper party.
    pub stp_time: Duration,
    /// Cleartext values revealed to the STP, for the leakage audit
    /// (column names per input).
    pub revealed_columns: Vec<String>,
    /// The party that received the revealed columns.
    pub revealed_to: PartyId,
    /// Row↔columnar conversion work performed by the protocol's internal
    /// intermediate tables (revealed keys, enumerations, index relations) —
    /// the driver folds this into `RunReport::conversions` so the per-run
    /// counter also covers the hybrid paths.
    pub conversions: ConversionCounts,
}

/// Runs one cleartext (STP-side) step with the given executor.
fn run_clear(op: &Operator, inputs: &[&Table], exec: &dyn Executor) -> MpcResult<Table> {
    exec.execute(op, inputs)
        .map_err(|e| MpcError::Exec(e.to_string()))
}

/// Sums the conversion work performed by tables created inside a hybrid
/// protocol (their counters start at zero, so the absolute counts are the
/// per-protocol tally).
fn intermediate_conversions(tables: &[&Table]) -> ConversionCounts {
    let mut total = ConversionCounts::default();
    for t in tables {
        total.merge(&t.conversion_counts());
    }
    total
}

/// Executes the hybrid join of Figure 3.
///
/// MPC steps: oblivious shuffles of both inputs, revealing the key columns to
/// the STP, secret-sharing the matching row-index relations back in, two
/// oblivious-index selections and a final shuffle. STP steps: enumerating
/// both key relations and joining them in the clear.
pub fn hybrid_join(
    engine: &mut MpcEngine,
    stp_exec: &dyn Executor,
    left: &Table,
    right: &Table,
    left_keys: &[String],
    right_keys: &[String],
    stp: PartyId,
) -> MpcResult<HybridOutcome> {
    engine.protocol().reset_counts();
    // 1. Share and obliviously shuffle both inputs (column-at-a-time when the
    // tables are column-backed).
    let left_shared = engine.share_table(left)?;
    let right_shared = engine.share_table(right)?;
    let left_shuffled = oblivious::shuffle(&left_shared, engine.protocol());
    let right_shuffled = oblivious::shuffle(&right_shared, engine.protocol());

    // 2. Project the key columns and reveal them to the STP.
    let left_keys_shared = left_shuffled.project(left_keys).map_err(MpcError::Exec)?;
    let right_keys_shared = right_shuffled.project(right_keys).map_err(MpcError::Exec)?;
    let left_keys_clear = Table::from_rows(engine.reconstruct(&left_keys_shared));
    let right_keys_clear = Table::from_rows(engine.reconstruct(&right_keys_shared));

    // 3–5. STP: enumerate both key relations, join in the clear, and project
    // the row-index columns into two index relations.
    let enum_left = run_clear(
        &Operator::Enumerate {
            out: "__lidx".into(),
        },
        &[&left_keys_clear],
        stp_exec,
    )?;
    let enum_right = run_clear(
        &Operator::Enumerate {
            out: "__ridx".into(),
        },
        &[&right_keys_clear],
        stp_exec,
    )?;
    let join_op = Operator::Join {
        left_keys: left_keys.to_vec(),
        right_keys: right_keys.to_vec(),
        kind: conclave_ir::ops::JoinKind::Inner,
    };
    let joined_keys = run_clear(&join_op, &[&enum_left, &enum_right], stp_exec)?;
    let left_indexes = run_clear(
        &Operator::Project {
            columns: vec!["__lidx".into()],
        },
        &[&joined_keys],
        stp_exec,
    )?;
    let right_indexes = run_clear(
        &Operator::Project {
            columns: vec!["__ridx".into()],
        },
        &[&joined_keys],
        stp_exec,
    )?;
    let stp_time = stp_exec.estimate_tables(
        &join_op,
        &[&enum_left, &enum_right],
        joined_keys.num_rows() as u64,
    );

    // 5–6. The STP secret-shares the index relations; the parties obliviously
    // select the matching rows from the shuffled inputs.
    let left_indexes_shared = engine.share_table(&left_indexes)?;
    let right_indexes_shared = engine.share_table(&right_indexes)?;
    let left_rows = oblivious::oblivious_select(
        &left_shuffled,
        &left_indexes_shared,
        "__lidx",
        engine.protocol(),
    )
    .map_err(MpcError::Exec)?;
    let right_rows = oblivious::oblivious_select(
        &right_shuffled,
        &right_indexes_shared,
        "__ridx",
        engine.protocol(),
    )
    .map_err(MpcError::Exec)?;

    // 7. Concatenate column-wise (dropping the right key columns) and shuffle.
    let schema = join_schema(left.schema(), right.schema(), left_keys, right_keys)
        .map_err(|e| MpcError::Exec(e.to_string()))?;
    let right_key_idx: Vec<usize> = right_keys
        .iter()
        .filter_map(|k| right_rows.col_index(k))
        .collect();
    let mut rows = Vec::with_capacity(left_rows.num_rows());
    for (lrow, rrow) in left_rows.rows.iter().zip(&right_rows.rows) {
        let mut row = lrow.clone();
        for (c, v) in rrow.iter().enumerate() {
            if !right_key_idx.contains(&c) {
                row.push(v.clone());
            }
        }
        rows.push(row);
    }
    let combined = SharedRelation { schema, rows };
    let shuffled_result = oblivious::shuffle(&combined, engine.protocol());
    let result = Table::from_rows(engine.reconstruct(&shuffled_result));
    let input_rows = (left.num_rows() + right.num_rows()) as u64;
    let mpc_stats = engine.drain_stats(input_rows, result.num_rows() as u64);
    let conversions = intermediate_conversions(&[
        &left_keys_clear,
        &right_keys_clear,
        &enum_left,
        &enum_right,
        &joined_keys,
        &left_indexes,
        &right_indexes,
    ]);

    Ok(HybridOutcome {
        result,
        mpc_stats,
        stp_time,
        revealed_columns: left_keys.iter().chain(right_keys.iter()).cloned().collect(),
        revealed_to: stp,
        conversions,
    })
}

/// Executes the public join of §5.3: both sides' key columns are public, so a
/// helper party joins the enumerated keys entirely in the clear and the
/// result is assembled without any MPC step.
pub fn public_join(
    helper_exec: &dyn Executor,
    left: &Table,
    right: &Table,
    left_keys: &[String],
    right_keys: &[String],
    helper: PartyId,
) -> MpcResult<HybridOutcome> {
    let op = Operator::Join {
        left_keys: left_keys.to_vec(),
        right_keys: right_keys.to_vec(),
        kind: conclave_ir::ops::JoinKind::Inner,
    };
    let result = run_clear(&op, &[left, right], helper_exec)?;
    let stp_time = helper_exec.estimate_tables(&op, &[left, right], result.num_rows() as u64);
    // The only cross-party traffic is the key columns and the joined index
    // relation; account it as opened/shared elements so the cost model can
    // convert it to time and bytes.
    let mpc_stats = MpcStepStats {
        input_rows: (left.num_rows() + right.num_rows()) as u64,
        output_rows: result.num_rows() as u64,
        ..Default::default()
    };
    Ok(HybridOutcome {
        result,
        mpc_stats,
        stp_time,
        revealed_columns: left_keys.iter().chain(right_keys.iter()).cloned().collect(),
        revealed_to: helper,
        // The helper consumes the driver-tracked inputs directly; no
        // protocol-internal tables exist.
        conversions: ConversionCounts::default(),
    })
}

/// Executes the hybrid aggregation of §5.3: the input is obliviously
/// shuffled, the group-by column is revealed to the STP, the STP sorts it in
/// the clear and returns the ordering, and the parties finish with a linear
/// oblivious accumulation scan instead of an oblivious sort.
// The signature mirrors the aggregate operator's fields one-to-one; bundling
// them into a struct would just duplicate `Operator::Aggregate`.
#[allow(clippy::too_many_arguments)]
pub fn hybrid_aggregate(
    engine: &mut MpcEngine,
    stp_exec: &dyn Executor,
    input: &Table,
    group_by: &[String],
    func: AggFunc,
    over: Option<&str>,
    out: &str,
    stp: PartyId,
) -> MpcResult<HybridOutcome> {
    engine.protocol().reset_counts();
    let key = group_by
        .first()
        .ok_or_else(|| MpcError::Exec("hybrid aggregation needs a group-by column".into()))?;

    // 1. Share and obliviously shuffle the input.
    let shared = engine.share_table(input)?;
    let shuffled = oblivious::shuffle(&shared, engine.protocol());

    // 2. Reveal the (shuffled) group-by column to the STP.
    let keys_shared = shuffled
        .project(std::slice::from_ref(key))
        .map_err(MpcError::Exec)?;
    let keys_clear = Table::from_rows(engine.reconstruct(&keys_shared));

    // 3–4. STP: enumerate and sort by key in the clear; the resulting index
    // order is sent back to the parties (it refers to shuffled positions, so
    // it reveals nothing about the original order).
    let enumerated = run_clear(
        &Operator::Enumerate {
            out: "__idx".into(),
        },
        &[&keys_clear],
        stp_exec,
    )?;
    let sort_op = Operator::SortBy {
        column: key.clone(),
        ascending: true,
    };
    let sorted = run_clear(&sort_op, &[&enumerated], stp_exec)?;
    let stp_time = stp_exec.estimate_tables(&sort_op, &[input], input.num_rows() as u64);
    let order: Vec<usize> = sorted
        .column_values("__idx")
        .ok_or_else(|| MpcError::Exec("enumeration column missing".into()))?
        .iter()
        .map(|v| v.as_int().unwrap_or(0) as usize)
        .collect();

    // 5–6. The parties reorder the shuffled shared relation by the public
    // ordering, grouping equal keys together.
    let reordered = shuffled.permute(&order);

    // 7–8. Linear oblivious accumulation over the key-grouped relation,
    // followed by a shuffle-and-reveal of the group-end flags (performed
    // inside `aggregate_sorted`). The oblivious equality tests stand in for
    // the STP-provided equality flags; their cost is a small constant factor
    // of the linear scan either way.
    let aggregated =
        oblivious::aggregate_sorted(&reordered, group_by, func, over, out, engine.protocol())
            .map_err(MpcError::Exec)?;
    let result = Table::from_rows(engine.reconstruct(&aggregated));
    let mpc_stats = engine.drain_stats(input.num_rows() as u64, result.num_rows() as u64);
    let conversions = intermediate_conversions(&[&keys_clear, &enumerated, &sorted]);

    Ok(HybridOutcome {
        result,
        mpc_stats,
        stp_time,
        revealed_columns: vec![key.clone()],
        revealed_to: stp,
        conversions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_engine::{
        execute, sequential_executor, ColumnarRelation, EngineMode, Relation, RowExecutor,
    };
    use conclave_mpc::backend::MpcBackendConfig;

    fn engine() -> MpcEngine {
        MpcEngine::new(MpcBackendConfig::sharemind())
    }

    fn demo_relations() -> (Relation, Relation) {
        let demographics = Relation::from_ints(
            &["ssn", "zip"],
            &[
                vec![1, 10],
                vec![2, 20],
                vec![3, 10],
                vec![4, 30],
                vec![5, 20],
            ],
        );
        let scores = Relation::from_ints(
            &["ssn", "score"],
            &[
                vec![2, 700],
                vec![3, 650],
                vec![3, 640],
                vec![5, 720],
                vec![9, 500],
            ],
        );
        (demographics, scores)
    }

    fn demo_tables() -> (Table, Table) {
        let (l, r) = demo_relations();
        (Table::from_rows(l), Table::from_rows(r))
    }

    #[test]
    fn hybrid_join_matches_cleartext_join() {
        let mut eng = engine();
        let (left_rel, right_rel) = demo_relations();
        let (left, right) = demo_tables();
        let outcome = hybrid_join(
            &mut eng,
            &RowExecutor::new(),
            &left,
            &right,
            &["ssn".to_string()],
            &["ssn".to_string()],
            1,
        )
        .unwrap();
        let expected = execute(
            &Operator::Join {
                left_keys: vec!["ssn".into()],
                right_keys: vec!["ssn".into()],
                kind: conclave_ir::ops::JoinKind::Inner,
            },
            &[&left_rel, &right_rel],
        )
        .unwrap();
        assert!(outcome.result.as_rows().same_rows_unordered(&expected));
        assert_eq!(outcome.result.column_names(), vec!["ssn", "zip", "score"]);
        assert_eq!(outcome.revealed_to, 1);
        assert_eq!(outcome.revealed_columns, vec!["ssn", "ssn"]);
        assert!(outcome.stp_time > Duration::ZERO);
        // The MPC side performed shuffles and oblivious selects but NO
        // quadratic equality scan.
        assert!(outcome.mpc_stats.counts.shuffled_elems > 0);
        assert!(outcome.mpc_stats.counts.mults > 0);
        assert_eq!(outcome.mpc_stats.counts.equalities, 0);
    }

    #[test]
    fn hybrid_join_is_cheaper_than_full_mpc_join_in_nonlinear_ops() {
        let mut eng = engine();
        let n = 60;
        let rows: Vec<Vec<i64>> = (0..n).map(|i| vec![i, i * 10]).collect();
        let left = Relation::from_ints(&["k", "a"], &rows);
        let right = Relation::from_ints(&["k", "b"], &rows);
        let hybrid = hybrid_join(
            &mut eng,
            &RowExecutor::new(),
            &Table::from_rows(left.clone()),
            &Table::from_rows(right.clone()),
            &["k".to_string()],
            &["k".to_string()],
            1,
        )
        .unwrap();
        let mut eng2 = engine();
        let (_, full) = eng2
            .execute_op(
                &Operator::Join {
                    left_keys: vec!["k".into()],
                    right_keys: vec!["k".into()],
                    kind: conclave_ir::ops::JoinKind::Inner,
                },
                &[&left, &right],
            )
            .unwrap();
        assert!(
            hybrid.mpc_stats.counts.nonlinear_ops() < full.counts.nonlinear_ops(),
            "hybrid {} vs full {}",
            hybrid.mpc_stats.counts.nonlinear_ops(),
            full.counts.nonlinear_ops()
        );
    }

    #[test]
    fn public_join_matches_cleartext_and_uses_no_mpc() {
        let (left_rel, right_rel) = demo_relations();
        let (left, right) = demo_tables();
        let outcome = public_join(
            &RowExecutor::new(),
            &left,
            &right,
            &["ssn".to_string()],
            &["ssn".to_string()],
            2,
        )
        .unwrap();
        let expected = execute(
            &Operator::Join {
                left_keys: vec!["ssn".into()],
                right_keys: vec!["ssn".into()],
                kind: conclave_ir::ops::JoinKind::Inner,
            },
            &[&left_rel, &right_rel],
        )
        .unwrap();
        assert!(outcome.result.as_rows().same_rows_unordered(&expected));
        assert_eq!(outcome.mpc_stats.counts.nonlinear_ops(), 0);
        assert_eq!(outcome.revealed_to, 2);
    }

    #[test]
    fn hybrid_aggregate_matches_cleartext_aggregation() {
        let mut eng = engine();
        let input_rel = Relation::from_ints(
            &["zip", "score"],
            &[
                vec![10, 700],
                vec![20, 650],
                vec![10, 640],
                vec![30, 720],
                vec![20, 500],
                vec![10, 100],
            ],
        );
        let input = Table::from_rows(input_rel.clone());
        for (func, over, out) in [
            (AggFunc::Sum, Some("score"), "total"),
            (AggFunc::Count, None, "n"),
            (AggFunc::Max, Some("score"), "hi"),
        ] {
            let outcome = hybrid_aggregate(
                &mut eng,
                &RowExecutor::new(),
                &input,
                &["zip".to_string()],
                func,
                over,
                out,
                1,
            )
            .unwrap();
            let expected = execute(
                &Operator::Aggregate {
                    group_by: vec!["zip".into()],
                    func,
                    over: over.map(|s| s.to_string()),
                    out: out.to_string(),
                },
                &[&input_rel],
            )
            .unwrap();
            assert!(
                outcome.result.as_rows().same_rows_unordered(&expected),
                "{func} hybrid aggregation mismatch"
            );
            assert_eq!(outcome.revealed_columns, vec!["zip"]);
            // No oblivious sort: comparisons stay linear in n (no n·log²n blowup).
            assert!(outcome.mpc_stats.counts.comparisons <= input.num_rows() as u64);
        }
    }

    #[test]
    fn hybrid_protocols_agree_across_executors_and_stay_columnar() {
        let (left, right) = demo_tables();
        let keys = ["ssn".to_string()];
        let mut row_eng = engine();
        let row = hybrid_join(
            &mut row_eng,
            &*sequential_executor(EngineMode::Row),
            &left,
            &right,
            &keys,
            &keys,
            1,
        )
        .unwrap();
        // Column-backed inputs with a columnar STP executor: the share path
        // goes column-at-a-time and charges the same number of inputs.
        let (left_rel, right_rel) = demo_relations();
        let left_cols = Table::from_columns(ColumnarRelation::from_rows(&left_rel));
        let right_cols = Table::from_columns(ColumnarRelation::from_rows(&right_rel));
        let mut col_eng = engine();
        let col = hybrid_join(
            &mut col_eng,
            &*sequential_executor(EngineMode::Columnar),
            &left_cols,
            &right_cols,
            &keys,
            &keys,
            1,
        )
        .unwrap();
        assert!(row
            .result
            .as_rows()
            .same_rows_unordered(col.result.as_rows()));
        // Sharing the column-backed inputs forced no conversion on them.
        assert_eq!(left_cols.conversion_counts().total(), 0);
        assert_eq!(right_cols.conversion_counts().total(), 0);
        // Row-mode intermediates stay row-native; columnar mode converts the
        // two revealed key relations once each at the reveal boundary, and
        // nothing else (reported so the driver can fold it into RunReport).
        assert_eq!(row.conversions.total(), 0);
        assert_eq!(col.conversions.row_to_columnar, 2);
        assert_eq!(col.conversions.columnar_to_row, 0);
        // Column-at-a-time sharing charges the same number of input elements.
        assert_eq!(
            row.mpc_stats.counts.input_elems,
            col.mpc_stats.counts.input_elems
        );

        let pub_row = public_join(
            &*sequential_executor(EngineMode::Row),
            &left,
            &right,
            &keys,
            &keys,
            2,
        )
        .unwrap();
        let pub_col = public_join(
            &*sequential_executor(EngineMode::Columnar),
            &left_cols,
            &right_cols,
            &keys,
            &keys,
            2,
        )
        .unwrap();
        // The columnar helper's result is column-backed end to end (checked
        // before the comparison below forces row materialization).
        assert!(pub_col.result.has_columns() && !pub_col.result.has_rows());
        assert!(pub_row
            .result
            .as_rows()
            .same_rows_unordered(pub_col.result.as_rows()));

        let input = Relation::from_ints(
            &["zip", "score"],
            &[vec![10, 700], vec![20, 650], vec![10, 640]],
        );
        let mut agg_row_eng = engine();
        let agg_row = hybrid_aggregate(
            &mut agg_row_eng,
            &*sequential_executor(EngineMode::Row),
            &Table::from_rows(input.clone()),
            &["zip".to_string()],
            AggFunc::Sum,
            Some("score"),
            "total",
            1,
        )
        .unwrap();
        let mut agg_col_eng = engine();
        let agg_col = hybrid_aggregate(
            &mut agg_col_eng,
            &*sequential_executor(EngineMode::Columnar),
            &Table::from_columns(ColumnarRelation::from_rows(&input)),
            &["zip".to_string()],
            AggFunc::Sum,
            Some("score"),
            "total",
            1,
        )
        .unwrap();
        assert!(agg_row
            .result
            .as_rows()
            .same_rows_unordered(agg_col.result.as_rows()));
    }

    #[test]
    fn hybrid_aggregate_requires_a_group_by_column() {
        let mut eng = engine();
        let input = Table::from_rows(Relation::from_ints(&["v"], &[vec![1]]));
        assert!(hybrid_aggregate(
            &mut eng,
            &RowExecutor::new(),
            &input,
            &[],
            AggFunc::Sum,
            Some("v"),
            "t",
            1,
        )
        .is_err());
    }
}
