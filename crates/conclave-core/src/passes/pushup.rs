//! MPC-frontier push-up (§5.2): move work *above* the frontier.
//!
//! The mirror image of push-down: instead of moving operators below the
//! frontier into per-party pre-processing, this pass moves them above it,
//! into cleartext post-processing at the party that receives the output.
//! Reversible operators adjacent to the query output need not run under MPC:
//! revealing their *input* to the output recipients leaks nothing beyond what
//! the output itself already reveals (the input is simulatable from the
//! output, Theorem A.2). The pass therefore walks up from every `collect`
//! leaf and re-assigns chains of reversible operators to run in the clear at
//! the receiving party.

use conclave_ir::dag::OpDag;
use conclave_ir::error::IrResult;
use conclave_ir::ops::{ExecSite, Operator};

/// Applies the push-up rewrite. Returns a log of re-assigned operators.
pub fn run(dag: &mut OpDag) -> IrResult<Vec<String>> {
    let mut log = Vec::new();
    let leaves = dag.leaves();
    for leaf in leaves {
        let node = dag.node(leaf)?;
        let Operator::Collect { recipients } = &node.op else {
            continue;
        };
        let Some(recipient) = recipients.any_member() else {
            continue;
        };
        // Walk up through single-input reversible operators currently under
        // MPC and move them to the recipient.
        let mut current = node.inputs.first().copied();
        while let Some(id) = current {
            let n = dag.node(id)?;
            let movable = n.site.is_mpc()
                && n.op.is_reversible()
                && n.inputs.len() == 1
                // Only safe if this relation feeds nothing but the output
                // chain being revealed.
                && dag.children_of(id).len() == 1;
            if !movable {
                break;
            }
            let op_name = n.op.name();
            let next = n.inputs.first().copied();
            dag.node_mut(id)?.site = ExecSite::Local(recipient);
            log.push(format!(
                "push-up: {op_name} #{id} now runs in the clear at recipient P{recipient}"
            ));
            current = next;
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::propagate_ownership;
    use crate::passes::sites;
    use conclave_ir::builder::QueryBuilder;
    use conclave_ir::ops::{AggFunc, Operand};
    use conclave_ir::party::Party;
    use conclave_ir::schema::Schema;

    #[test]
    fn reversible_tail_operators_move_to_the_recipient() {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let mut q = QueryBuilder::new();
        let a = q.input("a", Schema::ints(&["k", "v"]), pa.clone());
        let b = q.input("b", Schema::ints(&["k", "v"]), pb);
        let cat = q.concat(&[a, b]);
        let agg = q.aggregate(cat, "total", AggFunc::Sum, &["k"], "v");
        let count = q.count(cat, "n", &["k"]);
        let joined = q.join(agg, count, &["k"], &["k"]);
        // The division producing the average is reversible: it can run at the
        // regulator after the MPC reveals (total, n).
        let avg = q.divide(joined, "avg", Operand::col("total"), Operand::col("n"));
        let scaled = q.multiply(
            avg,
            "scaled",
            vec![Operand::col("total"), Operand::lit(100)],
        );
        q.collect(scaled, &[pa]);
        let mut dag = q.build().unwrap().dag;
        propagate_ownership(&mut dag).unwrap();
        sites::run(&mut dag).unwrap();
        let mpc_before = sites::mpc_node_count(&dag);
        let log = run(&mut dag).unwrap();
        let mpc_after = sites::mpc_node_count(&dag);
        assert_eq!(log.len(), 2, "divide and multiply both move: {log:?}");
        assert_eq!(mpc_before - mpc_after, 2);
        // The join stays under MPC: it is not reversible.
        let join = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Join { .. }))
            .unwrap();
        assert!(join.site.is_mpc());
    }

    #[test]
    fn non_reversible_leaves_are_untouched() {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let mut q = QueryBuilder::new();
        let a = q.input("a", Schema::ints(&["k", "v"]), pa.clone());
        let b = q.input("b", Schema::ints(&["k", "v"]), pb);
        let cat = q.concat(&[a, b]);
        let agg = q.aggregate(cat, "total", AggFunc::Sum, &["k"], "v");
        q.collect(agg, &[pa]);
        let mut dag = q.build().unwrap().dag;
        propagate_ownership(&mut dag).unwrap();
        sites::run(&mut dag).unwrap();
        let log = run(&mut dag).unwrap();
        assert!(log.is_empty());
    }
}
