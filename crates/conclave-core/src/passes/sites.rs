//! Execution-site assignment: draw the MPC frontier.
//!
//! After ownership propagation and the push-down rewrites, every node is
//! assigned where it runs: locally at its owning party, or under MPC when its
//! output combines data from several parties. `collect` nodes run at their
//! recipient (they only re-label data that the MPC boundary already revealed).
//!
//! The *MPC frontier* the other passes talk about is precisely the boundary
//! this pass draws between `Local(p)`/`Stp(p)` sites and `Mpc` sites: every
//! `Local → Mpc` edge is a secret-sharing step, every `Mpc → Local` edge a
//! reveal. Push-up and the hybrid rewrites run after this pass and re-label
//! nodes to move or split that boundary; the driver later dispatches each
//! node to the engine its final site calls for.

use conclave_ir::dag::OpDag;
use conclave_ir::error::IrResult;
use conclave_ir::ops::{ExecSite, Operator};

/// Assigns an [`ExecSite`] to every live node.
pub fn run(dag: &mut OpDag) -> IrResult<()> {
    let order = dag.topo_order()?;
    for id in order {
        let node = dag.node(id)?;
        let site = match (&node.op, node.owner) {
            (Operator::Input { party, .. }, _) => ExecSite::Local(*party),
            (Operator::Collect { recipients }, _) => recipients
                .any_member()
                .map(ExecSite::Local)
                .unwrap_or(ExecSite::Mpc),
            (_, Some(owner)) => ExecSite::Local(owner),
            (_, None) => ExecSite::Mpc,
        };
        dag.node_mut(id)?.site = site;
    }
    Ok(())
}

/// The number of nodes on the MPC side of the frontier (a proxy for how much
/// work remains under MPC; used by tests and the compilation report).
pub fn mpc_node_count(dag: &OpDag) -> usize {
    dag.iter().filter(|n| n.site.is_mpc()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::propagate_ownership;
    use conclave_ir::builder::QueryBuilder;
    use conclave_ir::ops::AggFunc;
    use conclave_ir::party::Party;
    use conclave_ir::schema::Schema;

    #[test]
    fn owned_nodes_run_locally_and_partitioned_nodes_under_mpc() {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let mut q = QueryBuilder::new();
        let a = q.input("a", Schema::ints(&["k", "v"]), pa.clone());
        let b = q.input("b", Schema::ints(&["k", "v"]), pb);
        let fa = q.project(a, &["k", "v"]);
        let cat = q.concat(&[fa, b]);
        let agg = q.aggregate(cat, "s", AggFunc::Sum, &["k"], "v");
        q.collect(agg, &[pa]);
        let mut dag = q.build().unwrap().dag;
        propagate_ownership(&mut dag).unwrap();
        run(&mut dag).unwrap();

        let project = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Project { .. }))
            .unwrap();
        assert_eq!(project.site, ExecSite::Local(1));
        let concat = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Concat))
            .unwrap();
        assert_eq!(concat.site, ExecSite::Mpc);
        let agg_node = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Aggregate { .. }))
            .unwrap();
        assert_eq!(agg_node.site, ExecSite::Mpc);
        let collect = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Collect { .. }))
            .unwrap();
        assert_eq!(collect.site, ExecSite::Local(1));
        assert_eq!(mpc_node_count(&dag), 2);
    }

    #[test]
    fn single_party_query_has_no_mpc_nodes() {
        let pa = Party::new(1, "a");
        let mut q = QueryBuilder::new();
        let t = q.input("t", Schema::ints(&["k", "v"]), pa.clone());
        let agg = q.aggregate(t, "s", AggFunc::Sum, &["k"], "v");
        q.collect(agg, &[pa]);
        let mut dag = q.build().unwrap().dag;
        propagate_ownership(&mut dag).unwrap();
        run(&mut dag).unwrap();
        assert_eq!(mpc_node_count(&dag), 0);
    }
}
