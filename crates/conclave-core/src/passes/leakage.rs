//! The leakage linter (pass 6): statically certifies a compiled plan against
//! its trust annotations.
//!
//! Every other pass *chooses* where data may run in the clear; this pass
//! *proves* the choices honor the annotations. It computes the column-level
//! information-flow lattice of [`conclave_ir::flow`] over the final DAG and
//! verifies every disclosure point:
//!
//! * `RevealTo` / mid-plan `Open` — every recipient must be within the trust
//!   set of every revealed column;
//! * hybrid operators (`HybridJoin`, `HybridAggregate`, `PublicJoin`) — the
//!   STP/helper must be trusted with the join/group key columns it learns
//!   (the static twin of the driver's `check_reveal_authorized`);
//! * cleartext placements (`ExecSite::Local` / `ExecSite::Stp`) consuming an
//!   MPC-produced relation — the executing party must be an authorized
//!   viewer of that relation, unless the consuming operator is reversible
//!   (push-up, simulatable from the output) or the declared `Collect`.
//!
//! `Collect` itself is declassification by declaration: its recipients are
//! the query's stated output policy, so it contributes a *disclosure* to the
//! report rather than a violation (the paper's credit query reveals per-zip
//! aggregates of columns nobody is jointly trusted with — that is the
//! query's purpose).
//!
//! On success the pass returns a [`LeakageReport`]: the machine-readable
//! per-party account of what each party learns, surfaced by
//! `Session::explain_leakage`, SQL `EXPLAIN LEAKAGE`, and `RunReport`. On
//! failure compilation aborts with [`crate::plan::CompileError::Leakage`]
//! carrying the offending node, column, party and derivation chain.

use crate::plan::{CompileError, CompileResult};
use conclave_ir::dag::{NodeId, OpDag};
use conclave_ir::flow::{compute_flow, Flow};
use conclave_ir::ops::{ExecSite, Operator};
use conclave_ir::party::{PartyId, PartySet};
use std::collections::BTreeSet;
use std::fmt;

/// Why a disclosure is part of the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DisclosureKind {
    /// The query's declared output (`Collect` / `REVEAL TO`).
    QueryOutput,
    /// Join/group keys revealed (shuffled) to the STP or helper of a hybrid
    /// operator.
    StpKeys,
    /// An MPC-produced relation opened for cleartext post-processing at a
    /// party.
    CleartextOpen,
    /// An explicit `RevealTo`/`Open` operator in the plan.
    Reveal,
}

impl fmt::Display for DisclosureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DisclosureKind::QueryOutput => "query-output",
            DisclosureKind::StpKeys => "stp-keys",
            DisclosureKind::CleartextOpen => "cleartext-open",
            DisclosureKind::Reveal => "reveal",
        };
        f.write_str(s)
    }
}

/// One place the plan discloses cleartext data to a party, as proven by the
/// static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disclosure {
    /// Node whose output relation is (partly) disclosed — the same id the
    /// driver's dynamic leakage audit records, so runtime events can be
    /// checked against this report.
    pub node: NodeId,
    /// Node at which the disclosure happens (the consumer / reveal point).
    pub at_node: NodeId,
    /// Party that learns the data.
    pub to_party: PartyId,
    /// Columns disclosed, in schema order.
    pub columns: Vec<String>,
    /// Disclosure class.
    pub kind: DisclosureKind,
    /// Why the disclosure is authorized.
    pub justification: String,
}

/// The per-party leakage account of one compiled plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LeakageReport {
    /// Every proven disclosure, sorted by `(to_party, node, at_node)`.
    pub disclosures: Vec<Disclosure>,
    /// Metadata every party learns by construction (sizes, rounds — see
    /// `docs/SECURITY.md`).
    pub notes: Vec<String>,
    /// The party universe of the plan.
    pub parties: PartySet,
}

impl LeakageReport {
    /// Disclosures visible to one party.
    pub fn for_party(&self, party: PartyId) -> Vec<&Disclosure> {
        self.disclosures
            .iter()
            .filter(|d| d.to_party == party)
            .collect()
    }

    /// Returns `true` if the report claims `party` learns (part of) the
    /// output of `node` — the containment check the differential tests run
    /// against the driver's dynamic leakage events.
    pub fn covers(&self, node: NodeId, party: PartyId) -> bool {
        self.disclosures
            .iter()
            .any(|d| d.node == node && d.to_party == party)
    }

    /// Renders the report as stable, diffable text (used by the golden-file
    /// corpus in `tests/golden/`).
    pub fn render(&self) -> String {
        let mut out = String::from("static leakage report\n");
        for party in self.parties.iter() {
            let mine = self.for_party(party);
            if mine.is_empty() {
                out.push_str(&format!("P{party} learns nothing beyond public metadata\n"));
                continue;
            }
            out.push_str(&format!("P{party} learns:\n"));
            for d in mine {
                out.push_str(&format!(
                    "  node #{} [{}] columns [{}] — {}\n",
                    d.node,
                    d.kind,
                    d.columns.join(", "),
                    d.justification
                ));
            }
        }
        if !self.notes.is_empty() {
            out.push_str("public by construction:\n");
            for n in &self.notes {
                out.push_str(&format!("  - {n}\n"));
            }
        }
        out
    }
}

impl fmt::Display for LeakageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A statically proven policy violation: the plan would disclose a column to
/// a party outside its trust set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakageViolation {
    /// Node at which the unauthorized disclosure would happen.
    pub node: NodeId,
    /// Operator name of that node.
    pub op: String,
    /// The column that would leak.
    pub column: String,
    /// The party that would learn it without authorization.
    pub party: PartyId,
    /// Derivation chain of the column, from its originating input down to
    /// the disclosure point (`"#id op.column"` steps).
    pub chain: Vec<String>,
    /// What kind of disclosure was attempted.
    pub reason: String,
}

impl fmt::Display for LeakageViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node #{} ({}) would reveal column `{}` to untrusted party P{}: {}; derivation: {}",
            self.node,
            self.op,
            self.column,
            self.party,
            self.reason,
            self.chain.join(" -> ")
        )
    }
}

/// Runs the linter over a compiled (or hand-built) DAG and either certifies
/// it with a [`LeakageReport`] or rejects it with
/// [`CompileError::Leakage`].
pub fn run(dag: &OpDag, universe: &PartySet) -> CompileResult<LeakageReport> {
    let flow = compute_flow(dag)?;
    let mut disclosures = Vec::new();

    for node in dag.iter() {
        match &node.op {
            Operator::Collect { recipients } => {
                // Declassification by declaration: the analyst stated these
                // recipients receive the query output.
                for r in recipients.iter() {
                    disclosures.push(Disclosure {
                        node: node.id,
                        at_node: node.id,
                        to_party: r,
                        columns: node.schema.names().iter().map(|s| s.to_string()).collect(),
                        kind: DisclosureKind::QueryOutput,
                        justification: "declared output recipient".into(),
                    });
                }
            }
            Operator::RevealTo { party, columns } => {
                let parent = input_of(dag, node.id, 0)?;
                let revealed: Vec<String> = match columns {
                    Some(cols) => cols.clone(),
                    None => column_names(dag, parent)?,
                };
                check_columns(
                    dag,
                    &flow,
                    parent,
                    &revealed,
                    *party,
                    node.id,
                    "explicit mid-plan reveal",
                )?;
                disclosures.push(Disclosure {
                    node: parent,
                    at_node: node.id,
                    to_party: *party,
                    columns: revealed,
                    kind: DisclosureKind::Reveal,
                    justification: "trust annotations authorize this reveal".into(),
                });
            }
            Operator::Open { recipients } => {
                let parent = input_of(dag, node.id, 0)?;
                let revealed = column_names(dag, parent)?;
                for r in recipients.iter() {
                    check_columns(
                        dag,
                        &flow,
                        parent,
                        &revealed,
                        r,
                        node.id,
                        "mid-plan open of an MPC-resident relation",
                    )?;
                    disclosures.push(Disclosure {
                        node: parent,
                        at_node: node.id,
                        to_party: r,
                        columns: revealed.clone(),
                        kind: DisclosureKind::Reveal,
                        justification: "trust annotations authorize this open".into(),
                    });
                }
            }
            Operator::HybridJoin {
                left_keys,
                right_keys,
                stp,
            } => {
                let left = input_of(dag, node.id, 0)?;
                let right = input_of(dag, node.id, 1)?;
                check_columns(
                    dag,
                    &flow,
                    left,
                    left_keys,
                    *stp,
                    node.id,
                    "hybrid join reveals (shuffled) keys to the STP",
                )?;
                check_columns(
                    dag,
                    &flow,
                    right,
                    right_keys,
                    *stp,
                    node.id,
                    "hybrid join reveals (shuffled) keys to the STP",
                )?;
                disclosures.push(stp_disclosure(node.id, *stp, left_keys, right_keys));
            }
            Operator::PublicJoin {
                left_keys,
                right_keys,
                helper,
            } => {
                let left = input_of(dag, node.id, 0)?;
                let right = input_of(dag, node.id, 1)?;
                check_columns(
                    dag,
                    &flow,
                    left,
                    left_keys,
                    *helper,
                    node.id,
                    "public join reveals keys to the helper",
                )?;
                check_columns(
                    dag,
                    &flow,
                    right,
                    right_keys,
                    *helper,
                    node.id,
                    "public join reveals keys to the helper",
                )?;
                disclosures.push(stp_disclosure(node.id, *helper, left_keys, right_keys));
            }
            Operator::HybridAggregate { group_by, stp, .. } => {
                let parent = input_of(dag, node.id, 0)?;
                check_columns(
                    dag,
                    &flow,
                    parent,
                    group_by,
                    *stp,
                    node.id,
                    "hybrid aggregation reveals (shuffled) group keys to the STP",
                )?;
                disclosures.push(stp_disclosure(node.id, *stp, group_by, &[]));
            }
            _ => {}
        }

        // Cleartext placements: a Local/Stp node consuming an MPC-produced
        // relation opens that relation to its executing party. Mirrors the
        // driver's dynamic audit exactly (including the reversible push-up
        // and Collect exemptions).
        if let ExecSite::Local(party) | ExecSite::Stp(party) = node.site {
            let mut seen: BTreeSet<NodeId> = BTreeSet::new();
            for &input in &node.inputs {
                if !seen.insert(input) {
                    continue;
                }
                let parent = dag.node(input)?;
                if !parent.site.is_mpc() || parent.op.is_output() {
                    continue;
                }
                let exempt = node.op.is_reversible() || matches!(node.op, Operator::Collect { .. });
                let columns = column_names(dag, input)?;
                if !exempt {
                    check_columns(
                        dag,
                        &flow,
                        input,
                        &columns,
                        party,
                        node.id,
                        "cleartext execution opens an MPC-produced relation",
                    )?;
                }
                disclosures.push(Disclosure {
                    node: input,
                    at_node: node.id,
                    to_party: party,
                    columns,
                    kind: DisclosureKind::CleartextOpen,
                    justification: if exempt {
                        "reversible push-up (simulatable from the query output)".into()
                    } else {
                        "authorized by trust annotations".into()
                    },
                });
            }
        }
    }

    disclosures.sort_by(|a, b| {
        (a.to_party, a.node, a.at_node, &a.columns)
            .cmp(&(b.to_party, b.node, b.at_node, &b.columns))
    });
    disclosures.dedup();

    let mut notes = vec![
        "plan structure, row counts, message sizes/directions and the schedule of rounds \
         (docs/SECURITY.md: sizes and shapes)"
            .to_string(),
    ];
    if dag.iter().any(|n| n.site.is_mpc()) {
        notes.push(
            "MPC openings are uniformly masked (MaskedOpen c = z - r, binary Beaver d/e); \
             comparison circuits run 9 (lt) / 8 (eq) rounds regardless of batch size"
                .to_string(),
        );
    }

    Ok(LeakageReport {
        disclosures,
        notes,
        parties: universe.clone(),
    })
}

fn stp_disclosure(
    node: NodeId,
    stp: PartyId,
    left_keys: &[String],
    right_keys: &[String],
) -> Disclosure {
    let mut columns: Vec<String> = left_keys.to_vec();
    columns.extend(right_keys.iter().cloned());
    columns.dedup();
    Disclosure {
        node,
        at_node: node,
        to_party: stp,
        columns,
        kind: DisclosureKind::StpKeys,
        justification: "trust annotation designates this party as the STP / helper".into(),
    }
}

fn input_of(dag: &OpDag, node: NodeId, idx: usize) -> CompileResult<NodeId> {
    let n = dag.node(node)?;
    n.inputs.get(idx).copied().ok_or_else(|| {
        CompileError::Unsupported(format!(
            "node #{node} ({}) is missing input {idx}",
            n.op.name()
        ))
    })
}

fn column_names(dag: &OpDag, node: NodeId) -> CompileResult<Vec<String>> {
    Ok(dag
        .node(node)?
        .schema
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect())
}

/// Verifies that `party` is trusted with every listed column of `parent`'s
/// output (the relation's owner is always trusted with its own data).
fn check_columns(
    dag: &OpDag,
    flow: &Flow,
    parent: NodeId,
    columns: &[String],
    party: PartyId,
    at_node: NodeId,
    reason: &str,
) -> CompileResult<()> {
    if dag.node(parent)?.owner == Some(party) {
        return Ok(());
    }
    for col in columns {
        let trusted = flow
            .value(parent, col)
            .map(|v| v.trust.trusts(party))
            .unwrap_or(true);
        if !trusted {
            let at = dag.node(at_node)?;
            return Err(CompileError::Leakage(LeakageViolation {
                node: at_node,
                op: at.op.name().to_string(),
                column: col.clone(),
                party,
                chain: flow.derivation_chain(dag, parent, col, party),
                reason: reason.to_string(),
            }));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::ops::{AggFunc, JoinKind};
    use conclave_ir::schema::{ColumnDef, Schema};
    use conclave_ir::trust::TrustSet;
    use conclave_ir::types::DataType;

    /// inputA(P1: k public, v private) + inputB(P2: k public, v trusted by 1)
    /// -> concat. Universe {1, 2}.
    fn base_dag() -> (OpDag, NodeId, PartySet) {
        let mut dag = OpDag::new();
        let sa = Schema::new(vec![
            ColumnDef::with_trust("k", DataType::Int, TrustSet::Public),
            ColumnDef::with_trust("v", DataType::Int, TrustSet::of([1])),
        ]);
        let mut sb = sa.clone();
        sb.column_mut("v").unwrap().trust = TrustSet::of([1]);
        let a = dag.add_node(
            Operator::Input {
                name: "ta".into(),
                party: 1,
            },
            vec![],
            sa.clone(),
        );
        let b = dag.add_node(
            Operator::Input {
                name: "tb".into(),
                party: 2,
            },
            vec![],
            sb.clone(),
        );
        let cat_schema = Operator::Concat.output_schema(&[sa, sb]).unwrap();
        let cat = dag.add_node(Operator::Concat, vec![a, b], cat_schema);
        (dag, cat, PartySet::from_ids([1, 2]))
    }

    #[test]
    fn collect_is_declassification_by_declaration() {
        let (mut dag, cat, universe) = base_dag();
        // Nobody is jointly trusted with v, yet collecting it to P2 is the
        // declared output policy — certified, not rejected.
        dag.insert_after(
            cat,
            Operator::Collect {
                recipients: PartySet::singleton(2),
            },
        )
        .unwrap();
        let report = run(&dag, &universe).unwrap();
        assert!(report
            .disclosures
            .iter()
            .any(|d| d.kind == DisclosureKind::QueryOutput && d.to_party == 2));
    }

    #[test]
    fn mid_plan_reveal_to_untrusted_party_is_rejected() {
        let (mut dag, cat, universe) = base_dag();
        let reveal = dag
            .insert_after(
                cat,
                Operator::RevealTo {
                    party: 2,
                    columns: None,
                },
            )
            .unwrap();
        dag.insert_after(
            reveal,
            Operator::Collect {
                recipients: PartySet::singleton(1),
            },
        )
        .unwrap();
        let err = run(&dag, &universe).unwrap_err();
        let CompileError::Leakage(v) = err else {
            panic!("expected a leakage violation, got {err}");
        };
        assert_eq!(v.party, 2);
        assert_eq!(v.column, "v");
        assert_eq!(v.node, reveal);
        assert!(!v.chain.is_empty(), "diagnostic carries a derivation chain");
        assert!(v.chain[0].contains("input"), "chain starts at the source");
    }

    #[test]
    fn mid_plan_reveal_to_trusted_party_passes() {
        let (mut dag, cat, universe) = base_dag();
        let reveal = dag
            .insert_after(
                cat,
                Operator::RevealTo {
                    party: 1,
                    columns: None,
                },
            )
            .unwrap();
        dag.insert_after(
            reveal,
            Operator::Collect {
                recipients: PartySet::singleton(1),
            },
        )
        .unwrap();
        let report = run(&dag, &universe).unwrap();
        assert!(report.covers(cat, 1));
    }

    #[test]
    fn open_of_private_operands_is_rejected() {
        // The PR 7 bug shape, statically: a mid-plan Open of a relation with
        // a private column to every party.
        let (mut dag, cat, universe) = base_dag();
        let open = dag
            .insert_after(
                cat,
                Operator::Open {
                    recipients: PartySet::from_ids([1, 2]),
                },
            )
            .unwrap();
        dag.insert_after(
            open,
            Operator::Collect {
                recipients: PartySet::singleton(1),
            },
        )
        .unwrap();
        let err = run(&dag, &universe).unwrap_err();
        let CompileError::Leakage(v) = err else {
            panic!("expected a leakage violation, got {err}");
        };
        assert_eq!(v.column, "v");
        assert_eq!(v.party, 2, "P1 is trusted with v, P2 is not");
    }

    #[test]
    fn cleartext_site_over_untrusted_column_is_rejected() {
        let (mut dag, cat, universe) = base_dag();
        // A cleartext join at P2 over the concat (which holds v trusted only
        // by P1). Join keys on k (public) — but the relation itself opens.
        let proj_op = Operator::Project {
            columns: vec!["k".into()],
        };
        let proj_schema = proj_op
            .output_schema(&[dag.node(cat).unwrap().schema.clone()])
            .unwrap();
        let proj = dag.add_node(proj_op, vec![cat], proj_schema.clone());
        let join_schema = Operator::Join {
            left_keys: vec!["k".into()],
            right_keys: vec!["k".into()],
            kind: JoinKind::Inner,
        }
        .output_schema(&[dag.node(cat).unwrap().schema.clone(), proj_schema])
        .unwrap();
        let join = dag.add_node(
            Operator::Join {
                left_keys: vec!["k".into()],
                right_keys: vec!["k".into()],
                kind: JoinKind::Inner,
            },
            vec![cat, proj],
            join_schema.clone(),
        );
        let collect = dag.add_node(
            Operator::Collect {
                recipients: PartySet::singleton(1),
            },
            vec![join],
            join_schema,
        );
        dag.node_mut(cat).unwrap().site = ExecSite::Mpc;
        dag.node_mut(proj).unwrap().site = ExecSite::Mpc;
        dag.node_mut(join).unwrap().site = ExecSite::Local(2);
        dag.node_mut(collect).unwrap().site = ExecSite::Local(1);
        let err = run(&dag, &universe).unwrap_err();
        let CompileError::Leakage(v) = err else {
            panic!("expected a leakage violation, got {err}");
        };
        assert_eq!(v.party, 2);
        assert_eq!(v.column, "v");
        assert_eq!(v.node, join);
        assert!(v.to_string().contains("derivation"));
    }

    #[test]
    fn hybrid_stp_outside_key_trust_is_rejected() {
        let (mut dag, cat, universe) = base_dag();
        // Tamper a hybrid aggregate grouped by the private column v with an
        // untrusted STP.
        let agg = Operator::HybridAggregate {
            group_by: vec!["v".into()],
            func: AggFunc::Sum,
            over: Some("k".into()),
            out: "total".into(),
            stp: 2,
        };
        let schema = agg
            .output_schema(&[dag.node(cat).unwrap().schema.clone()])
            .unwrap();
        let h = dag.add_node(agg, vec![cat], schema.clone());
        dag.add_node(
            Operator::Collect {
                recipients: PartySet::singleton(1),
            },
            vec![h],
            schema,
        );
        let err = run(&dag, &universe).unwrap_err();
        let CompileError::Leakage(v) = err else {
            panic!("expected a leakage violation, got {err}");
        };
        assert_eq!((v.party, v.column.as_str(), v.node), (2, "v", h));
        // With a trusted STP the same plan certifies.
        match &mut dag.node_mut(h).unwrap().op {
            Operator::HybridAggregate { stp, .. } => *stp = 1,
            _ => unreachable!(),
        }
        let report = run(&dag, &universe).unwrap();
        assert!(report.covers(h, 1));
    }

    #[test]
    fn report_renders_stably() {
        let (mut dag, cat, universe) = base_dag();
        dag.insert_after(
            cat,
            Operator::Collect {
                recipients: PartySet::singleton(1),
            },
        )
        .unwrap();
        let report = run(&dag, &universe).unwrap();
        let text = report.render();
        assert!(text.contains("P1 learns:"));
        assert!(text.contains("P2 learns nothing beyond public metadata"));
        assert!(text.contains("query-output"));
        assert_eq!(text, report.to_string());
    }
}
