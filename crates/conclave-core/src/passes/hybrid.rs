//! Hybrid operator insertion (§5.3): shrink what remains *inside* the
//! frontier.
//!
//! Push-down and push-up move whole operators across the MPC frontier; this
//! pass instead splits the expensive operators that must stay inside it into
//! an MPC half and a cleartext half executed by a *selectively-trusted
//! party* (STP), turning O(n·m) oblivious work into an oblivious shuffle, a
//! narrow key reveal, and a cleartext join or sort at the STP.
//! MPC joins and grouped aggregations dominate query cost. When the
//! propagated trust annotations show that some party is authorized to learn
//! the key columns involved, Conclave rewrites:
//!
//! * an MPC join whose key columns are **public** into a [`Operator::PublicJoin`]
//!   performed in the clear by an arbitrarily chosen helper party;
//! * an MPC join whose key columns share a **selectively-trusted party** into
//!   a [`Operator::HybridJoin`] (Figure 3);
//! * an MPC grouped aggregation whose group-by column has an STP into a
//!   [`Operator::HybridAggregate`].
//!
//! The rewrite never widens leakage beyond the input annotations: the STP
//! must already be in the intersection of the relevant columns' trust sets,
//! which the analysis derives only from the parties' own annotations
//! (Corollary A.5).

use crate::config::ConclaveConfig;
use conclave_ir::dag::{NodeId, OpDag};
use conclave_ir::error::IrResult;
use conclave_ir::ops::Operator;
use conclave_ir::party::{PartyId, PartySet};
use conclave_ir::trust::TrustSet;

/// Applies hybrid-operator rewrites to all eligible MPC nodes. Returns a log
/// of the transformations applied.
pub fn run(dag: &mut OpDag, universe: &PartySet, config: &ConclaveConfig) -> IrResult<Vec<String>> {
    let mut log = Vec::new();
    if !config.use_hybrid_operators && !config.use_public_join {
        return Ok(log);
    }
    let mpc_nodes: Vec<NodeId> = dag
        .iter()
        .filter(|n| n.site.is_mpc())
        .map(|n| n.id)
        .collect();
    for id in mpc_nodes {
        let node = dag.node(id)?;
        match node.op.clone() {
            Operator::Join {
                left_keys,
                right_keys,
                ..
            } => {
                let left_schema = dag.node(node.inputs[0])?.schema.clone();
                let right_schema = dag.node(node.inputs[1])?.schema.clone();
                let mut trust = TrustSet::Public;
                for k in &left_keys {
                    trust = trust.intersect(
                        &left_schema
                            .require(k, "hybrid join")
                            .map(|i| left_schema.columns[i].trust.clone())?,
                    );
                }
                for k in &right_keys {
                    trust = trust.intersect(
                        &right_schema
                            .require(k, "hybrid join")
                            .map(|i| right_schema.columns[i].trust.clone())?,
                    );
                }
                let trusted = trust.trusted_within(universe);
                if config.use_public_join && trusted.len() == universe.len() && !universe.is_empty()
                {
                    let helper = pick_helper(&trusted);
                    dag.node_mut(id)?.op = Operator::PublicJoin {
                        left_keys,
                        right_keys,
                        helper,
                    };
                    log.push(format!(
                        "hybrid: join #{id} has public keys; rewritten to public join at P{helper}"
                    ));
                } else if config.use_hybrid_operators && !trusted.is_empty() {
                    let stp = pick_helper(&trusted);
                    dag.node_mut(id)?.op = Operator::HybridJoin {
                        left_keys,
                        right_keys,
                        stp,
                    };
                    log.push(format!(
                        "hybrid: join #{id} keys trusted by P{stp}; rewritten to hybrid join"
                    ));
                }
            }
            Operator::Aggregate {
                group_by,
                func,
                over,
                out,
            } if !group_by.is_empty() && config.use_hybrid_operators => {
                let input_schema = dag.node(node.inputs[0])?.schema.clone();
                let mut trust = TrustSet::Public;
                for g in &group_by {
                    let idx = input_schema.require(g, "hybrid aggregate")?;
                    trust = trust.intersect(&input_schema.columns[idx].trust);
                }
                let trusted = trust.trusted_within(universe);
                if !trusted.is_empty() {
                    let stp = pick_helper(&trusted);
                    dag.node_mut(id)?.op = Operator::HybridAggregate {
                        group_by,
                        func,
                        over,
                        out,
                        stp,
                    };
                    log.push(format!(
                        "hybrid: aggregation #{id} group-by trusted by P{stp}; rewritten to hybrid aggregation"
                    ));
                }
            }
            _ => {}
        }
    }
    Ok(log)
}

/// Deterministically picks the helper/STP from a set of authorized parties
/// (the smallest id; in a deployment this choice is part of the out-of-band
/// agreement between the parties).
fn pick_helper(trusted: &PartySet) -> PartyId {
    trusted.any_member().expect("non-empty trusted set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{propagate_ownership, propagate_trust};
    use crate::passes::sites;
    use conclave_ir::builder::QueryBuilder;
    use conclave_ir::ops::AggFunc;
    use conclave_ir::party::Party;
    use conclave_ir::schema::{ColumnDef, Schema};
    use conclave_ir::types::DataType;

    fn prepare(query: &conclave_ir::builder::Query) -> OpDag {
        let mut dag = query.dag.clone();
        propagate_ownership(&mut dag).unwrap();
        propagate_trust(&mut dag).unwrap();
        sites::run(&mut dag).unwrap();
        dag
    }

    /// Credit-card query: the regulator (P1) is trusted with the banks' SSN
    /// columns, and the group-by column (zip) belongs to the regulator.
    fn credit_query() -> conclave_ir::builder::Query {
        let regulator = Party::new(1, "mpc.ftc.gov");
        let bank_a = Party::new(2, "mpc.a.com");
        let bank_b = Party::new(3, "mpc.b.cash");
        let demo = Schema::new(vec![
            ColumnDef::new("ssn", DataType::Int),
            ColumnDef::with_trust("zip", DataType::Int, TrustSet::of([1])),
        ]);
        let bank = Schema::new(vec![
            ColumnDef::with_trust("ssn", DataType::Int, TrustSet::of([1])),
            ColumnDef::new("score", DataType::Int),
        ]);
        let mut q = QueryBuilder::new();
        let demographics = q.input("demographics", demo, regulator.clone());
        let s1 = q.input("scores1", bank.clone(), bank_a);
        let s2 = q.input("scores2", bank, bank_b);
        let scores = q.concat(&[s1, s2]);
        let joined = q.join(demographics, scores, &["ssn"], &["ssn"]);
        let total = q.aggregate(joined, "total", AggFunc::Sum, &["zip"], "score");
        q.collect(total, &[regulator]);
        q.build().unwrap()
    }

    #[test]
    fn ssn_trust_annotation_enables_hybrid_join_and_aggregation() {
        let query = credit_query();
        let mut dag = prepare(&query);
        let log = run(&mut dag, &query.party_set(), &ConclaveConfig::standard()).unwrap();
        assert_eq!(log.len(), 2, "{log:?}");
        let join = dag
            .iter()
            .find(|n| matches!(n.op, Operator::HybridJoin { .. }))
            .expect("join rewritten");
        if let Operator::HybridJoin { stp, .. } = join.op {
            assert_eq!(stp, 1, "the regulator is the STP");
        }
        let agg = dag
            .iter()
            .find(|n| matches!(n.op, Operator::HybridAggregate { .. }))
            .expect("aggregation rewritten");
        if let Operator::HybridAggregate { stp, .. } = &agg.op {
            assert_eq!(*stp, 1);
        }
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn no_trust_annotations_means_no_hybrid_operators() {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let mut q = QueryBuilder::new();
        let a = q.input("a", Schema::ints(&["k", "v"]), pa.clone());
        let b = q.input("b", Schema::ints(&["k", "w"]), pb);
        let j = q.join(a, b, &["k"], &["k"]);
        let agg = q.aggregate(j, "s", AggFunc::Sum, &["k"], "v");
        q.collect(agg, &[pa]);
        let query = q.build().unwrap();
        let mut dag = prepare(&query);
        let log = run(&mut dag, &query.party_set(), &ConclaveConfig::standard()).unwrap();
        assert!(log.is_empty(), "{log:?}");
        assert!(dag.iter().all(|n| !n.op.is_hybrid()));
    }

    #[test]
    fn public_keys_enable_public_join() {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let schema = Schema::new(vec![
            ColumnDef::public("patientID", DataType::Int),
            ColumnDef::new("diagnosis", DataType::Int),
        ]);
        let med_schema = Schema::new(vec![
            ColumnDef::public("patientID", DataType::Int),
            ColumnDef::new("medication", DataType::Int),
        ]);
        let mut q = QueryBuilder::new();
        let d1 = q.input("d1", schema.clone(), pa.clone());
        let d2 = q.input("d2", schema, pb.clone());
        let m1 = q.input("m1", med_schema.clone(), pa.clone());
        let m2 = q.input("m2", med_schema, pb);
        let diag = q.concat(&[d1, d2]);
        let meds = q.concat(&[m1, m2]);
        let j = q.join(diag, meds, &["patientID"], &["patientID"]);
        let c = q.distinct_count(j, "patientID", "n");
        q.collect(c, &[pa]);
        let query = q.build().unwrap();
        let mut dag = prepare(&query);
        let log = run(&mut dag, &query.party_set(), &ConclaveConfig::standard()).unwrap();
        assert!(log.iter().any(|l| l.contains("public join")), "{log:?}");
        assert!(dag
            .iter()
            .any(|n| matches!(n.op, Operator::PublicJoin { .. })));
    }

    #[test]
    fn disabling_hybrid_operators_leaves_the_plan_unchanged() {
        let query = credit_query();
        let mut dag = prepare(&query);
        let log = run(&mut dag, &query.party_set(), &ConclaveConfig::mpc_only()).unwrap();
        assert!(log.is_empty());
        assert!(dag.iter().all(|n| !n.op.is_hybrid()));
        // without_hybrid also disables both hybrid and public rewrites.
        let mut dag2 = prepare(&query);
        let log2 = run(
            &mut dag2,
            &query.party_set(),
            &ConclaveConfig::without_hybrid(),
        )
        .unwrap();
        assert!(log2.is_empty());
    }
}
