//! Query rewrite passes (§5.2–§5.4): the pipeline that decides what runs
//! under MPC.
//!
//! After `analysis` propagates ownership and trust annotations through the
//! operator DAG, [`crate::plan::compile`] runs the passes in this order:
//!
//! | # | Pass | Direction across the MPC frontier |
//! |---|------|-----------------------------------|
//! | 1 | [`pushdown`] | moves distributive operators and aggregation splits *below* the frontier, into per-party local cleartext |
//! | 2 | [`sites`] | draws the frontier: assigns every node `Local(p)`, `Stp(p)` or `Mpc` |
//! | 3 | [`pushup`] | moves reversible operators *above* the frontier, into cleartext at the output recipient |
//! | 4 | [`hybrid`] | splits expensive MPC joins/aggregations into MPC + selectively-trusted-party cleartext halves |
//! | 5 | [`sort_elim`] | deletes oblivious sorts whose input is already sorted and annotates order for MPC aggregations |
//! | 6 | [`leakage`] | *verifies* (never rewrites): proves every cleartext placement and reveal honors the trust annotations, or rejects the plan |
//!
//! Each pass returns a human-readable log of the rewrites it applied; the
//! logs surface in [`crate::plan::PhysicalPlan::transformations`] and in the
//! examples' output. The narrative version of this pipeline — from SQL text
//! to `Table` execution — is the "Life of a query" section of
//! `ARCHITECTURE.md`; each pass's module documentation below tells the same
//! story next to its code.
//!
//! Queries enter the pipeline identically whether they were written in the
//! Conclave SQL dialect (`conclave-sql`, `Session::run_sql`) or assembled
//! with the programmatic `QueryBuilder`: the SQL frontend lowers to the same
//! DAG, so the passes neither know nor care which surface produced it.

pub mod hybrid;
pub mod leakage;
pub mod pushdown;
pub mod pushup;
pub mod sites;
pub mod sort_elim;
