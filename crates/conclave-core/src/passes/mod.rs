//! Query rewrite passes (§5.2–§5.4).

pub mod hybrid;
pub mod pushdown;
pub mod pushup;
pub mod sites;
pub mod sort_elim;
