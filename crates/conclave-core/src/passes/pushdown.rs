//! MPC-frontier push-down (§5.2): move work *below* the frontier.
//!
//! This is the first rewrite pass and the workhorse of the pipeline: every
//! operator it relocates runs as cheap per-party cleartext instead of under
//! MPC, and — just as important — shrinks the relations that later get
//! secret-shared. Two rewrites move work out of the monolithic MPC and into
//! local, per-party cleartext processing:
//!
//! 1. **Concat push-down**: an operator that distributes over partitions
//!    (`project`, `filter`, column arithmetic) and consumes a `concat` of
//!    per-party relations is replicated onto each branch, so each party
//!    applies it locally before its data ever enters MPC.
//! 2. **Aggregation splitting**: a grouped (or scalar) aggregation over a
//!    `concat` becomes per-party local pre-aggregations followed by a much
//!    smaller *secondary* aggregation under MPC. Because the pre-aggregation
//!    reveals how many distinct keys each party contributes, this rewrite is
//!    only applied when the configuration records the parties' consent
//!    (`allow_cardinality_leaking_pushdown`), mirroring the paper's security
//!    discussion.

use crate::config::ConclaveConfig;
use conclave_ir::dag::{NodeId, OpDag};
use conclave_ir::error::IrResult;
use conclave_ir::ops::{AggFunc, Operator};

/// Applies push-down rewrites until a fixpoint. Returns a log of the
/// transformations applied (for the compilation report).
pub fn run(dag: &mut OpDag, config: &ConclaveConfig) -> IrResult<Vec<String>> {
    let mut log = Vec::new();
    loop {
        let mut changed = false;
        if push_distributive_past_concat(dag, &mut log)? {
            changed = true;
        }
        if config.allow_cardinality_leaking_pushdown && split_aggregations(dag, &mut log)? {
            changed = true;
        }
        if !changed {
            break;
        }
    }
    Ok(log)
}

/// Finds a distributive unary operator whose input is a `concat` and pushes
/// it below the concat. Returns `true` if a rewrite was applied.
fn push_distributive_past_concat(dag: &mut OpDag, log: &mut Vec<String>) -> IrResult<bool> {
    let candidates: Vec<(NodeId, NodeId)> = dag
        .iter()
        .filter(|n| n.op.is_distributive() && n.inputs.len() == 1)
        .filter_map(|n| {
            let input = n.inputs[0];
            let parent = dag.node(input).ok()?;
            if matches!(parent.op, Operator::Concat) {
                Some((n.id, input))
            } else {
                None
            }
        })
        .collect();

    let Some(&(op_id, concat_id)) = candidates.first() else {
        return Ok(false);
    };

    let op = dag.node(op_id)?.op.clone();
    let branches = dag.node(concat_id)?.inputs.clone();

    // Per-branch copies of the distributive operator.
    let mut new_branches = Vec::with_capacity(branches.len());
    for &b in &branches {
        let schema = op.output_schema(&[dag.node(b)?.schema.clone()])?;
        new_branches.push(dag.add_node(op.clone(), vec![b], schema));
    }
    // New concat over the transformed branches.
    let schemas: Vec<_> = new_branches
        .iter()
        .map(|&id| dag.node(id).map(|n| n.schema.clone()))
        .collect::<IrResult<Vec<_>>>()?;
    let concat_schema = Operator::Concat.output_schema(&schemas)?;
    let new_concat = dag.add_node(Operator::Concat, new_branches, concat_schema);

    // Rewire consumers of the old operator to the new concat, then delete the
    // old operator (and the old concat if it became dead).
    dag.replace_input_everywhere(op_id, new_concat);
    dag.delete_node(op_id)?;
    if dag.children_of(concat_id).is_empty() {
        dag.delete_node(concat_id)?;
    }
    log.push(format!(
        "push-down: moved {} below concat #{concat_id} onto {} branches",
        op.name(),
        branches.len()
    ));
    Ok(true)
}

/// Splits an aggregation over a `concat` into local pre-aggregations plus a
/// secondary aggregation. Returns `true` if a rewrite was applied.
fn split_aggregations(dag: &mut OpDag, log: &mut Vec<String>) -> IrResult<bool> {
    let candidates: Vec<(NodeId, NodeId)> = dag
        .iter()
        .filter_map(|n| {
            if let Operator::Aggregate { out, .. } = &n.op {
                let input = *n.inputs.first()?;
                let parent = dag.node(input).ok()?;
                if !matches!(parent.op, Operator::Concat) || parent.inputs.len() < 2 {
                    return None;
                }
                // Skip aggregations whose concat branches are already the
                // per-party pre-aggregations this rewrite introduces —
                // otherwise the secondary aggregation would be split again,
                // forever.
                let already_split = parent.inputs.iter().all(|&b| {
                    dag.node(b)
                        .map(|branch| {
                            matches!(&branch.op, Operator::Aggregate { out: branch_out, .. }
                                if branch_out == out)
                        })
                        .unwrap_or(false)
                });
                if already_split {
                    return None;
                }
                return Some((n.id, input));
            }
            None
        })
        .collect();

    let Some(&(agg_id, concat_id)) = candidates.first() else {
        return Ok(false);
    };

    let Operator::Aggregate {
        group_by,
        func,
        over,
        out,
    } = dag.node(agg_id)?.op.clone()
    else {
        unreachable!("candidate filter guarantees an aggregate");
    };
    let branches = dag.node(concat_id)?.inputs.clone();

    // Local pre-aggregation on every branch.
    let local_op = Operator::Aggregate {
        group_by: group_by.clone(),
        func,
        over: over.clone(),
        out: out.clone(),
    };
    let mut locals = Vec::with_capacity(branches.len());
    for &b in &branches {
        let schema = local_op.output_schema(&[dag.node(b)?.schema.clone()])?;
        locals.push(dag.add_node(local_op.clone(), vec![b], schema));
    }
    let schemas: Vec<_> = locals
        .iter()
        .map(|&id| dag.node(id).map(|n| n.schema.clone()))
        .collect::<IrResult<Vec<_>>>()?;
    let concat_schema = Operator::Concat.output_schema(&schemas)?;
    let new_concat = dag.add_node(Operator::Concat, locals, concat_schema.clone());

    // Secondary aggregation over the pre-aggregated column.
    let secondary_func = match func {
        AggFunc::Count | AggFunc::Sum => AggFunc::Sum,
        AggFunc::Min => AggFunc::Min,
        AggFunc::Max => AggFunc::Max,
    };
    let secondary_op = Operator::Aggregate {
        group_by: group_by.clone(),
        func: secondary_func,
        over: Some(out.clone()),
        out: out.clone(),
    };
    let secondary_schema = secondary_op.output_schema(&[concat_schema])?;
    let secondary = dag.add_node(secondary_op, vec![new_concat], secondary_schema);

    dag.replace_input_everywhere(agg_id, secondary);
    dag.delete_node(agg_id)?;
    if dag.children_of(concat_id).is_empty() {
        dag.delete_node(concat_id)?;
    }
    log.push(format!(
        "push-down: split {func} aggregation #{agg_id} into {} local pre-aggregations and a secondary aggregation",
        branches.len()
    ));
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::propagate_ownership;
    use conclave_ir::builder::QueryBuilder;
    use conclave_ir::expr::Expr;
    use conclave_ir::ops::AggFunc;
    use conclave_ir::party::Party;
    use conclave_ir::schema::Schema;

    fn three_party_query() -> conclave_ir::builder::Query {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let pc = Party::new(3, "c");
        let schema = Schema::ints(&["companyID", "price"]);
        let mut q = QueryBuilder::new();
        let a = q.input("a", schema.clone(), pa.clone());
        let b = q.input("b", schema.clone(), pb);
        let c = q.input("c", schema, pc);
        let cat = q.concat(&[a, b, c]);
        let filtered = q.filter(cat, Expr::col("price").gt(Expr::lit(0)));
        let proj = q.project(filtered, &["companyID", "price"]);
        let agg = q.aggregate(proj, "rev", AggFunc::Sum, &["companyID"], "price");
        q.collect(agg, &[pa]);
        q.build().unwrap()
    }

    #[test]
    fn distributive_ops_and_aggregation_are_pushed_below_concat() {
        let query = three_party_query();
        let mut dag = query.dag.clone();
        let config = ConclaveConfig::standard();
        let log = run(&mut dag, &config).unwrap();
        dag.recompute_schemas().unwrap();
        assert!(dag.validate().is_ok());
        assert!(log.iter().any(|l| l.contains("filter")));
        assert!(log.iter().any(|l| l.contains("project")));
        assert!(log.iter().any(|l| l.contains("secondary aggregation")));

        // After the rewrite, each party has its own filter, project and local
        // pre-aggregation (three of each), and exactly one secondary
        // aggregation consumes the concat.
        propagate_ownership(&mut dag).unwrap();
        let local_aggs: Vec<_> = dag
            .iter()
            .filter(|n| matches!(n.op, Operator::Aggregate { .. }) && n.owner.is_some())
            .collect();
        assert_eq!(local_aggs.len(), 3);
        let mpc_aggs: Vec<_> = dag
            .iter()
            .filter(|n| matches!(n.op, Operator::Aggregate { .. }) && n.owner.is_none())
            .collect();
        assert_eq!(mpc_aggs.len(), 1);
        // The concat now feeds the secondary aggregation directly.
        let concat = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Concat))
            .unwrap();
        let children = dag.children_of(concat.id);
        assert_eq!(children.len(), 1);
        assert!(matches!(
            dag.node(children[0]).unwrap().op,
            Operator::Aggregate { .. }
        ));
    }

    #[test]
    fn correctness_is_preserved_by_pushdown() {
        use conclave_engine::{execute, Relation};
        // Execute both the original and rewritten DAG on the same data and
        // compare results.
        let query = three_party_query();
        let mut rewritten = query.dag.clone();
        let config = ConclaveConfig::standard();
        run(&mut rewritten, &config).unwrap();
        rewritten.recompute_schemas().unwrap();

        let data = [
            Relation::from_ints(
                &["companyID", "price"],
                &[vec![1, 10], vec![2, 0], vec![1, 5]],
            ),
            Relation::from_ints(&["companyID", "price"], &[vec![2, 7], vec![3, 9]]),
            Relation::from_ints(&["companyID", "price"], &[vec![1, 3], vec![3, 0]]),
        ];
        let run_dag = |dag: &OpDag| -> Relation {
            let mut results: std::collections::HashMap<usize, Relation> = Default::default();
            for id in dag.topo_order().unwrap() {
                let node = dag.node(id).unwrap();
                let out = match &node.op {
                    Operator::Input { name, .. } => {
                        let idx = match name.as_str() {
                            "a" => 0,
                            "b" => 1,
                            _ => 2,
                        };
                        data[idx].clone()
                    }
                    op => {
                        let inputs: Vec<&Relation> =
                            node.inputs.iter().map(|i| &results[i]).collect();
                        execute(op, &inputs).unwrap()
                    }
                };
                results.insert(id, out);
            }
            results[&dag.leaves()[0]].clone()
        };
        let original = run_dag(&query.dag);
        let optimized = run_dag(&rewritten);
        assert!(original.same_rows_unordered(&optimized));
    }

    #[test]
    fn cardinality_leaking_split_requires_consent() {
        let query = three_party_query();
        let mut dag = query.dag.clone();
        let mut config = ConclaveConfig::standard();
        config.allow_cardinality_leaking_pushdown = false;
        let log = run(&mut dag, &config).unwrap();
        assert!(
            !log.iter().any(|l| l.contains("secondary aggregation")),
            "aggregation must not be split without consent"
        );
        // The distributive push-downs are still applied: they do not change
        // MPC input cardinalities beyond what filters always reveal.
        assert!(log.iter().any(|l| l.contains("project")));
    }

    #[test]
    fn pushdown_is_a_noop_without_concat() {
        let pa = Party::new(1, "a");
        let mut q = QueryBuilder::new();
        let t = q.input("t", Schema::ints(&["k", "v"]), pa.clone());
        let agg = q.aggregate(t, "s", AggFunc::Sum, &["k"], "v");
        q.collect(agg, &[pa]);
        let mut dag = q.build().unwrap().dag;
        let before = dag.node_count();
        let log = run(&mut dag, &ConclaveConfig::standard()).unwrap();
        assert!(log.is_empty());
        assert_eq!(dag.node_count(), before);
    }
}
