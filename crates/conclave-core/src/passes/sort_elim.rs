//! Oblivious-sort tracking and elimination (§5.4): delete work *inside* the
//! frontier.
//!
//! While the other passes relocate or split operators, this one removes them
//! outright. Oblivious sorts are among the most expensive MPC sub-protocols.
//! This pass
//! tracks, for every intermediate relation, the column (if any) by which it
//! is known to be sorted, then removes `sort_by` operators whose input is
//! already sorted on the same column and direction. The tracked order is also
//! recorded on the DAG nodes so the driver and the cardinality estimator can
//! skip the sorting step inside MPC aggregations whose input arrives
//! pre-sorted (the optimization behind the aspirin-count speedup in §7.4).

use conclave_ir::dag::{NodeId, OpDag};
use conclave_ir::error::IrResult;
use conclave_ir::ops::Operator;

/// Runs the pass: annotates `sorted_by` on every node and deletes redundant
/// sorts. Returns a log of eliminated sort operators.
pub fn run(dag: &mut OpDag) -> IrResult<Vec<String>> {
    let mut log = Vec::new();
    loop {
        annotate(dag)?;
        let Some(redundant) = find_redundant_sort(dag)? else {
            break;
        };
        let input = dag.node(redundant)?.inputs[0];
        dag.replace_input_everywhere(redundant, input);
        dag.delete_node(redundant)?;
        log.push(format!(
            "sort-elimination: removed redundant sort #{redundant} (input already sorted)"
        ));
    }
    Ok(log)
}

/// Annotates every node's `sorted_by` field in topological order.
fn annotate(dag: &mut OpDag) -> IrResult<()> {
    let order = dag.topo_order()?;
    for id in order {
        let node = dag.node(id)?;
        let input_order: Option<String> = node
            .inputs
            .first()
            .and_then(|&i| dag.node(i).ok())
            .and_then(|n| n.sorted_by.clone());
        let sorted_by = match &node.op {
            Operator::SortBy { column, .. } | Operator::Merge { column, .. } => {
                Some(column.clone())
            }
            // The public join's helper sorts the joined result by the join
            // key in the clear (§7.4: "Conclave performs the sort in the
            // clear, as part of the public join").
            Operator::PublicJoin { left_keys, .. } => left_keys.first().cloned(),
            op if op.preserves_order() => {
                // The order survives only if the column itself survives.
                match (&input_order, op) {
                    (Some(col), Operator::Project { columns }) if !columns.contains(col) => None,
                    _ => input_order,
                }
            }
            _ => None,
        };
        dag.node_mut(id)?.sorted_by = sorted_by;
    }
    Ok(())
}

/// Finds a `sort_by` node whose input is already sorted by the same column.
fn find_redundant_sort(dag: &OpDag) -> IrResult<Option<NodeId>> {
    for node in dag.iter() {
        if let Operator::SortBy { column, ascending } = &node.op {
            if !*ascending {
                continue; // descending orders are not tracked
            }
            let input = dag.node(node.inputs[0])?;
            if input.sorted_by.as_deref() == Some(column.as_str()) {
                return Ok(Some(node.id));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::builder::QueryBuilder;
    use conclave_ir::expr::Expr;
    use conclave_ir::ops::AggFunc;
    use conclave_ir::party::Party;
    use conclave_ir::schema::Schema;

    #[test]
    fn redundant_sort_after_sort_is_removed() {
        let pa = Party::new(1, "a");
        let mut q = QueryBuilder::new();
        let t = q.input("t", Schema::ints(&["k", "v"]), pa.clone());
        let s1 = q.sort_by(t, "k", true);
        let f = q.filter(s1, Expr::col("v").gt(Expr::lit(0)));
        let s2 = q.sort_by(f, "k", true); // redundant: filter preserves order
        let agg = q.aggregate(s2, "s", AggFunc::Sum, &["k"], "v");
        q.collect(agg, &[pa]);
        let mut dag = q.build().unwrap().dag;
        let before = dag.node_count();
        let log = run(&mut dag).unwrap();
        assert_eq!(log.len(), 1, "{log:?}");
        assert_eq!(dag.node_count(), before - 1);
        assert!(dag.validate().is_ok());
        // The aggregation's input is known-sorted, which the driver uses to
        // skip the oblivious sort.
        let agg_node = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Aggregate { .. }))
            .unwrap();
        let agg_input = dag.node(agg_node.inputs[0]).unwrap();
        assert_eq!(agg_input.sorted_by.as_deref(), Some("k"));
    }

    #[test]
    fn projection_dropping_the_sort_column_clears_the_order() {
        let pa = Party::new(1, "a");
        let mut q = QueryBuilder::new();
        let t = q.input("t", Schema::ints(&["k", "v"]), pa.clone());
        let s = q.sort_by(t, "k", true);
        let p = q.project(s, &["v"]);
        let s2 = q.sort_by(p, "v", true); // not redundant
        q.collect(s2, &[pa]);
        let mut dag = q.build().unwrap().dag;
        let log = run(&mut dag).unwrap();
        assert!(log.is_empty());
        let proj = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Project { .. }))
            .unwrap();
        assert_eq!(proj.sorted_by, None);
    }

    #[test]
    fn shuffling_operators_clear_the_order() {
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let mut q = QueryBuilder::new();
        let a = q.input("a", Schema::ints(&["k", "v"]), pa.clone());
        let b = q.input("b", Schema::ints(&["k", "v"]), pb);
        let sa = q.sort_by(a, "k", true);
        let sb = q.sort_by(b, "k", true);
        let cat = q.concat(&[sa, sb]); // concat does not preserve a global order
        let s = q.sort_by(cat, "k", true); // NOT redundant
        q.collect(s, &[pa]);
        let mut dag = q.build().unwrap().dag;
        let log = run(&mut dag).unwrap();
        assert!(log.is_empty());
    }

    #[test]
    fn public_join_output_counts_as_sorted() {
        use conclave_ir::ops::Operator;
        let pa = Party::new(1, "a");
        let pb = Party::new(2, "b");
        let mut q = QueryBuilder::new();
        let a = q.input("a", Schema::ints(&["k", "v"]), pa.clone());
        let b = q.input("b", Schema::ints(&["k", "w"]), pb);
        let j = q.join(a, b, &["k"], &["k"]);
        let s = q.sort_by(j, "k", true);
        q.collect(s, &[pa]);
        let mut dag = q.build().unwrap().dag;
        // Manually rewrite the join into a public join (as the hybrid pass
        // would for public keys), then the sort becomes redundant.
        let join_id = dag
            .iter()
            .find(|n| matches!(n.op, Operator::Join { .. }))
            .unwrap()
            .id;
        dag.node_mut(join_id).unwrap().op = Operator::PublicJoin {
            left_keys: vec!["k".into()],
            right_keys: vec!["k".into()],
            helper: 1,
        };
        let log = run(&mut dag).unwrap();
        assert_eq!(log.len(), 1, "{log:?}");
    }
}
