//! The offline phase: a standalone dealer producing authenticated correlated
//! randomness for the online party runtime.
//!
//! Production SPDZ-family deployments split work into an **offline phase**
//! that pregenerates correlated randomness — Beaver triples, binary triples,
//! shared random bits, daBits, input masks — and a fast **online phase** that
//! only consumes it. This module implements the dealer side of that split for
//! the party runtime in [`crate::runtime`]:
//!
//! * [`DealerStream`] derives the material deterministically from a dealer
//!   seed, with a domain-separated RNG per material type so independent
//!   consumers (one per party link) generate identical global streams no
//!   matter how block requests interleave across types.
//! * Every arithmetic value is dealt as a SPDZ-authenticated sharing
//!   ([`crate::share::AuthShare`]): additive shares of the value plus
//!   additive shares of its MAC `α·x` under the dealer's global key `α`.
//! * Material reaches a party either **preloaded** — written to per-party
//!   files by [`write_party_files`] and loaded with [`load_party_file`] — or
//!   **streamed** on demand over a dedicated two-endpoint link served by
//!   [`serve_party`] (wire kind [`MessageKind::Dealer`]).
//!
//! The trusted-dealer trust model itself is unchanged from the paper's
//! Sharemind-style deployment (see `docs/SECURITY.md`); what the split buys
//! is that *computing parties no longer hold the dealer seed*, so no computing
//! party can unmask another party's masked openings, and the MACs extend the
//! guarantee from "passive observer learns nothing" to "active tampering is
//! detected before any result is revealed".

use crate::ring::RingElem;
use crate::runtime::{PartyError, PartyResult};
use crate::share::AuthShare;
use conclave_net::{MessageKind, Transport, TransportError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Block-request code: the requesting party's share of the MAC key `α`.
pub const REQ_ALPHA: u64 = 0;
/// Block-request code: arithmetic Beaver triples.
pub const REQ_TRIPLES: u64 = 1;
/// Block-request code: binary (bitwise-AND) Beaver triples.
pub const REQ_BIT_TRIPLES: u64 = 2;
/// Block-request code: shared random bits (XOR shares + authenticated
/// arithmetic shares of the same value).
pub const REQ_SHARED_BITS: u64 = 3;
/// Block-request code: daBits (XOR-shared random bits with authenticated
/// arithmetic shares of each bit).
pub const REQ_DABITS: u64 = 4;
/// Block-request code: input masks for one owner (`[code, owner, count]`).
pub const REQ_INPUT_MASKS: u64 = 5;

const DOMAIN_ALPHA: u64 = 1;
const DOMAIN_TRIPLES: u64 = 2;
const DOMAIN_BIT_TRIPLES: u64 = 3;
const DOMAIN_SHARED_BITS: u64 = 4;
const DOMAIN_DABITS: u64 = 5;
const DOMAIN_INPUT_MASKS: u64 = 6;

/// Words on the wire / in a file per Beaver triple share.
const TRIPLE_WORDS: usize = 6;
/// Words per binary triple share.
const BIT_TRIPLE_WORDS: usize = 3;
/// Words per shared-bit share.
const SHARED_BIT_WORDS: usize = 3;
/// Words per daBit share: the XOR-share word plus 64 (value, MAC) pairs.
const DABIT_WORDS: usize = 1 + 2 * 64;

fn domain_rng(seed: u64, tag: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn additive_share(rng: &mut StdRng, value: RingElem, n: usize) -> Vec<RingElem> {
    let mut shares = Vec::with_capacity(n);
    let mut acc = RingElem::ZERO;
    for _ in 0..n - 1 {
        let r = RingElem(rng.gen::<u64>());
        shares.push(r);
        acc += r;
    }
    shares.push(value - acc);
    shares
}

fn xor_share(rng: &mut StdRng, value: u64, n: usize) -> Vec<u64> {
    let mut shares = Vec::with_capacity(n);
    let mut acc = 0u64;
    for _ in 0..n - 1 {
        let r = rng.gen::<u64>();
        shares.push(r);
        acc ^= r;
    }
    shares.push(value ^ acc);
    shares
}

/// One party's slice of an input mask: the authenticated sharing of a random
/// `r`, plus — for the owner of the input column only — `r` in the clear so
/// the owner can broadcast `δ = x − r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputMask {
    /// This party's authenticated share of the random mask `r`.
    pub share: AuthShare,
    /// The mask value itself; `Some` only in the owner's material.
    pub clear: Option<RingElem>,
}

/// Deterministic generator for all offline material, seeded by the dealer
/// seed. Each material type draws from its own domain-separated RNG, so two
/// `DealerStream`s with the same seed produce identical global streams even
/// when their callers request blocks in different type interleavings — the
/// property that lets one independent server thread per party link stay
/// share-consistent with its siblings.
#[derive(Debug)]
pub struct DealerStream {
    parties: usize,
    alpha: RingElem,
    alpha_shares: Vec<RingElem>,
    triples: StdRng,
    bit_triples: StdRng,
    shared_bits: StdRng,
    dabits: StdRng,
    input_masks: Vec<StdRng>,
}

impl DealerStream {
    /// Creates a stream for `parties` computing parties from the dealer seed.
    pub fn new(seed: u64, parties: usize) -> Self {
        assert!(parties >= 2, "need at least two parties");
        let mut alpha_rng = domain_rng(seed, DOMAIN_ALPHA);
        let alpha = RingElem(alpha_rng.gen::<u64>());
        let alpha_shares = additive_share(&mut alpha_rng, alpha, parties);
        DealerStream {
            parties,
            alpha,
            alpha_shares,
            triples: domain_rng(seed, DOMAIN_TRIPLES),
            bit_triples: domain_rng(seed, DOMAIN_BIT_TRIPLES),
            shared_bits: domain_rng(seed, DOMAIN_SHARED_BITS),
            dabits: domain_rng(seed, DOMAIN_DABITS),
            input_masks: (0..parties)
                .map(|p| domain_rng(seed, DOMAIN_INPUT_MASKS + p as u64))
                .collect(),
        }
    }

    /// Number of computing parties this stream deals for.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// The global MAC key (dealer-side only; parties hold additive shares).
    pub fn alpha(&self) -> RingElem {
        self.alpha
    }

    /// Party `p`'s additive share of the MAC key.
    pub fn alpha_share(&self, p: usize) -> RingElem {
        self.alpha_shares[p]
    }

    fn auth_shares(
        &mut self,
        value: RingElem,
        which: fn(&mut Self) -> &mut StdRng,
    ) -> Vec<AuthShare> {
        let alpha = self.alpha;
        let n = self.parties;
        let rng = which(self);
        let vs = additive_share(rng, value, n);
        let ms = additive_share(rng, alpha * value, n);
        vs.into_iter()
            .zip(ms)
            .map(|(v, m)| AuthShare::new(v, m))
            .collect()
    }

    /// Generates `count` authenticated Beaver triples; result is indexed
    /// `[party][i]`.
    pub fn triples(&mut self, count: usize) -> Vec<Vec<(AuthShare, AuthShare, AuthShare)>> {
        let mut out = vec![Vec::with_capacity(count); self.parties];
        for _ in 0..count {
            let a = RingElem(self.triples.gen::<u64>());
            let b = RingElem(self.triples.gen::<u64>());
            let c = a * b;
            let sa = self.auth_shares(a, |s| &mut s.triples);
            let sb = self.auth_shares(b, |s| &mut s.triples);
            let sc = self.auth_shares(c, |s| &mut s.triples);
            for p in 0..self.parties {
                out[p].push((sa[p], sb[p], sc[p]));
            }
        }
        out
    }

    /// Generates `count` binary triples (`c = a & b`, XOR-shared words);
    /// indexed `[party][i]`.
    pub fn bit_triples(&mut self, count: usize) -> Vec<Vec<(u64, u64, u64)>> {
        let mut out = vec![Vec::with_capacity(count); self.parties];
        for _ in 0..count {
            let a = self.bit_triples.gen::<u64>();
            let b = self.bit_triples.gen::<u64>();
            let c = a & b;
            let sa = xor_share(&mut self.bit_triples, a, self.parties);
            let sb = xor_share(&mut self.bit_triples, b, self.parties);
            let sc = xor_share(&mut self.bit_triples, c, self.parties);
            for p in 0..self.parties {
                out[p].push((sa[p], sb[p], sc[p]));
            }
        }
        out
    }

    /// Generates `count` shared random bits: a word of XOR shares of the bit
    /// pattern `r` together with an authenticated arithmetic sharing of the
    /// same 64-bit value; indexed `[party][i]`.
    pub fn shared_bits(&mut self, count: usize) -> Vec<Vec<(u64, AuthShare)>> {
        let mut out = vec![Vec::with_capacity(count); self.parties];
        for _ in 0..count {
            let r = self.shared_bits.gen::<u64>();
            let bits = xor_share(&mut self.shared_bits, r, self.parties);
            let adds = self.auth_shares(RingElem(r), |s| &mut s.shared_bits);
            for p in 0..self.parties {
                out[p].push((bits[p], adds[p]));
            }
        }
        out
    }

    /// Generates `count` daBits: a word of 64 XOR-shared random bits together
    /// with an authenticated arithmetic sharing of each individual bit;
    /// indexed `[party][i]`.
    pub fn dabits(&mut self, count: usize) -> Vec<Vec<(u64, Vec<AuthShare>)>> {
        let mut out = vec![Vec::with_capacity(count); self.parties];
        for _ in 0..count {
            let rho = self.dabits.gen::<u64>();
            let bits = xor_share(&mut self.dabits, rho, self.parties);
            let mut adds: Vec<Vec<AuthShare>> = vec![Vec::with_capacity(64); self.parties];
            for k in 0..64 {
                let bit = RingElem((rho >> k) & 1);
                let shares = self.auth_shares(bit, |s| &mut s.dabits);
                for p in 0..self.parties {
                    adds[p].push(shares[p]);
                }
            }
            for (p, word) in bits.iter().enumerate() {
                out[p].push((*word, std::mem::take(&mut adds[p])));
            }
        }
        out
    }

    /// Generates `count` input masks for `owner`: each is `(r, shares)` where
    /// `shares[p]` is party `p`'s authenticated share of the random `r`. The
    /// caller must forward `r` in the clear **only** to the owner.
    pub fn input_masks(&mut self, owner: usize, count: usize) -> Vec<(RingElem, Vec<AuthShare>)> {
        let alpha = self.alpha;
        let n = self.parties;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let rng = &mut self.input_masks[owner];
            let r = RingElem(rng.gen::<u64>());
            let vs = additive_share(rng, r, n);
            let ms = additive_share(rng, alpha * r, n);
            let shares = vs
                .into_iter()
                .zip(ms)
                .map(|(v, m)| AuthShare::new(v, m))
                .collect();
            out.push((r, shares));
        }
        out
    }
}

/// How much material to pregenerate per party (counts, not bytes). The
/// defaults cover the integration-test query mixes with headroom; size them
/// explicitly for bigger workloads — preloaded sessions fail with a `Proto`
/// error when the stock runs dry rather than silently reusing material.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaterialSpec {
    /// Arithmetic Beaver triples.
    pub triples: usize,
    /// Binary triples (each covers 64 bit-ANDs).
    pub bit_triples: usize,
    /// Shared random bits (each covers one 64-bit mask).
    pub shared_bits: usize,
    /// daBits (each covers 64 bit-to-arithmetic conversions).
    pub dabits: usize,
    /// Input masks per owning party.
    pub input_masks: usize,
}

impl Default for MaterialSpec {
    fn default() -> Self {
        MaterialSpec {
            triples: 4096,
            bit_triples: 8192,
            shared_bits: 2048,
            dabits: 512,
            input_masks: 2048,
        }
    }
}

/// One party's preloaded stock of offline material, as produced by
/// [`generate_blocks`] or loaded from a dealer file.
#[derive(Debug, Clone, Default)]
pub struct MaterialBlocks {
    /// The party this stock belongs to.
    pub party: u32,
    /// Number of computing parties the material was dealt for.
    pub parties: u32,
    /// This party's additive share of the MAC key `α`.
    pub alpha: RingElem,
    /// Authenticated Beaver triples.
    pub triples: VecDeque<(AuthShare, AuthShare, AuthShare)>,
    /// Binary triples.
    pub bit_triples: VecDeque<(u64, u64, u64)>,
    /// Shared random bits.
    pub shared_bits: VecDeque<(u64, AuthShare)>,
    /// daBits.
    pub dabits: VecDeque<(u64, Vec<AuthShare>)>,
    /// Input masks, indexed by owning party.
    pub input_masks: Vec<VecDeque<InputMask>>,
}

impl DealerStream {
    /// Deals one bundle of [`MaterialBlocks`] — one block per party — drawn
    /// from this stream's current position. The MAC key `α` and the per-party
    /// `α`-shares are fixed at stream construction, so every bundle dealt by
    /// the same stream authenticates under the same key: bundles from later
    /// calls can safely [`refill`](crate::runtime::PartySession::refill) a
    /// session initialized from an earlier one.
    pub fn blocks(&mut self, spec: MaterialSpec) -> Vec<MaterialBlocks> {
        let parties = self.parties();
        let triples = self.triples(spec.triples);
        let bit_triples = self.bit_triples(spec.bit_triples);
        let shared_bits = self.shared_bits(spec.shared_bits);
        let dabits = self.dabits(spec.dabits);
        let mut masks: Vec<Vec<(RingElem, Vec<AuthShare>)>> = Vec::with_capacity(parties);
        for owner in 0..parties {
            masks.push(self.input_masks(owner, spec.input_masks));
        }
        let mut out = Vec::with_capacity(parties);
        for ((((p, t), bt), sb), db) in (0..parties)
            .zip(triples)
            .zip(bit_triples)
            .zip(shared_bits)
            .zip(dabits)
        {
            let input_masks = masks
                .iter()
                .enumerate()
                .map(|(owner, per_owner)| {
                    per_owner
                        .iter()
                        .map(|(r, shares)| InputMask {
                            share: shares[p],
                            clear: if owner == p { Some(*r) } else { None },
                        })
                        .collect()
                })
                .collect();
            out.push(MaterialBlocks {
                party: p as u32,
                parties: parties as u32,
                alpha: self.alpha_share(p),
                triples: t.into_iter().collect(),
                bit_triples: bt.into_iter().collect(),
                shared_bits: sb.into_iter().collect(),
                dabits: db.into_iter().collect(),
                input_masks,
            });
        }
        out
    }
}

/// Generates every party's [`MaterialBlocks`] for one dealer seed and spec.
pub fn generate_blocks(seed: u64, parties: usize, spec: MaterialSpec) -> Vec<MaterialBlocks> {
    DealerStream::new(seed, parties).blocks(spec)
}

fn io_err(what: &str, e: std::io::Error) -> PartyError {
    PartyError::Proto(format!("dealer file {what}: {e}"))
}

/// Writes one dealer file per party under `dir` (created if missing) and
/// returns the paths, indexed by party. Each file holds only that party's
/// shares; the cleartext mask values appear only in the owning party's file.
pub fn write_party_files(
    dir: &Path,
    seed: u64,
    parties: usize,
    spec: MaterialSpec,
) -> PartyResult<Vec<PathBuf>> {
    std::fs::create_dir_all(dir).map_err(|e| io_err("create dir", e))?;
    let blocks = generate_blocks(seed, parties, spec);
    let mut paths = Vec::with_capacity(parties);
    for b in &blocks {
        let mut s = String::new();
        let _ = writeln!(s, "conclave-dealer v1");
        let _ = writeln!(s, "party {} of {}", b.party, b.parties);
        let _ = writeln!(s, "alpha {}", b.alpha.0);
        let _ = writeln!(s, "triples {}", b.triples.len());
        for (a, x, c) in &b.triples {
            let _ = writeln!(
                s,
                "{} {} {} {} {} {}",
                a.v.0, a.m.0, x.v.0, x.m.0, c.v.0, c.m.0
            );
        }
        let _ = writeln!(s, "bit-triples {}", b.bit_triples.len());
        for (a, x, c) in &b.bit_triples {
            let _ = writeln!(s, "{a} {x} {c}");
        }
        let _ = writeln!(s, "shared-bits {}", b.shared_bits.len());
        for (bits, add) in &b.shared_bits {
            let _ = writeln!(s, "{} {} {}", bits, add.v.0, add.m.0);
        }
        let _ = writeln!(s, "dabits {}", b.dabits.len());
        for (bits, adds) in &b.dabits {
            let _ = write!(s, "{bits}");
            for a in adds {
                let _ = write!(s, " {} {}", a.v.0, a.m.0);
            }
            let _ = writeln!(s);
        }
        for (owner, masks) in b.input_masks.iter().enumerate() {
            let _ = writeln!(s, "input-masks {} {}", owner, masks.len());
            for m in masks {
                match m.clear {
                    Some(r) => {
                        let _ = writeln!(s, "{} {} {}", m.share.v.0, m.share.m.0, r.0);
                    }
                    None => {
                        let _ = writeln!(s, "{} {}", m.share.v.0, m.share.m.0);
                    }
                }
            }
        }
        let path = dir.join(format!("party-{}.dealer", b.party));
        std::fs::write(&path, s).map_err(|e| io_err("write", e))?;
        paths.push(path);
    }
    Ok(paths)
}

struct Tokens<'a> {
    it: std::str::SplitWhitespace<'a>,
}

impl<'a> Tokens<'a> {
    fn word(&mut self) -> PartyResult<&'a str> {
        self.it
            .next()
            .ok_or_else(|| PartyError::Proto("dealer file truncated".into()))
    }

    fn num(&mut self) -> PartyResult<u64> {
        let w = self.word()?;
        w.parse::<u64>()
            .map_err(|_| PartyError::Proto(format!("dealer file: expected number, got {w:?}")))
    }

    fn expect(&mut self, want: &str) -> PartyResult<()> {
        let w = self.word()?;
        if w == want {
            Ok(())
        } else {
            Err(PartyError::Proto(format!(
                "dealer file: expected {want:?}, got {w:?}"
            )))
        }
    }
}

/// Upper bound used when pre-reserving from counts read out of a dealer
/// file. A corrupted count must produce a parse error once the items run
/// out, never an allocation the size of the lie (capacity-overflow aborts
/// are panics, and loading untrusted bytes must stay panic-free).
const MAX_FILE_PREALLOC: usize = 1 << 16;

fn file_capacity(n: usize) -> usize {
    n.min(MAX_FILE_PREALLOC)
}

/// Loads one party's [`MaterialBlocks`] from a file written by
/// [`write_party_files`].
///
/// Never panics on malformed input: truncation, corruption, absurd counts,
/// out-of-range party indices and trailing garbage all surface as
/// [`PartyError`] values (the property tests in `tests/dealer_files.rs`
/// fuzz exactly this contract).
pub fn load_party_file(path: &Path) -> PartyResult<MaterialBlocks> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err("read", e))?;
    let mut t = Tokens {
        it: text.split_whitespace(),
    };
    t.expect("conclave-dealer")?;
    t.expect("v1")?;
    t.expect("party")?;
    let party = t.num()? as u32;
    t.expect("of")?;
    let parties = t.num()? as u32;
    if parties < 2 || party >= parties {
        return Err(PartyError::Proto(format!(
            "dealer file: party {party} of {parties} is not a valid endpoint"
        )));
    }
    t.expect("alpha")?;
    let alpha = RingElem(t.num()?);
    t.expect("triples")?;
    let n = t.num()? as usize;
    let mut triples = VecDeque::with_capacity(file_capacity(n));
    for _ in 0..n {
        let a = AuthShare::new(RingElem(t.num()?), RingElem(t.num()?));
        let b = AuthShare::new(RingElem(t.num()?), RingElem(t.num()?));
        let c = AuthShare::new(RingElem(t.num()?), RingElem(t.num()?));
        triples.push_back((a, b, c));
    }
    t.expect("bit-triples")?;
    let n = t.num()? as usize;
    let mut bit_triples = VecDeque::with_capacity(file_capacity(n));
    for _ in 0..n {
        bit_triples.push_back((t.num()?, t.num()?, t.num()?));
    }
    t.expect("shared-bits")?;
    let n = t.num()? as usize;
    let mut shared_bits = VecDeque::with_capacity(file_capacity(n));
    for _ in 0..n {
        let bits = t.num()?;
        let add = AuthShare::new(RingElem(t.num()?), RingElem(t.num()?));
        shared_bits.push_back((bits, add));
    }
    t.expect("dabits")?;
    let n = t.num()? as usize;
    let mut dabits = VecDeque::with_capacity(file_capacity(n));
    for _ in 0..n {
        let bits = t.num()?;
        let mut adds = Vec::with_capacity(64);
        for _ in 0..64 {
            adds.push(AuthShare::new(RingElem(t.num()?), RingElem(t.num()?)));
        }
        dabits.push_back((bits, adds));
    }
    let mut input_masks: Vec<VecDeque<InputMask>> = (0..parties).map(|_| VecDeque::new()).collect();
    for _ in 0..parties {
        t.expect("input-masks")?;
        let owner = t.num()? as usize;
        if owner >= parties as usize {
            return Err(PartyError::Proto(format!(
                "dealer file: input-mask owner {owner} out of range"
            )));
        }
        let n = t.num()? as usize;
        let is_owner = owner == party as usize;
        let mut masks = VecDeque::with_capacity(file_capacity(n));
        for _ in 0..n {
            let share = AuthShare::new(RingElem(t.num()?), RingElem(t.num()?));
            let clear = if is_owner {
                Some(RingElem(t.num()?))
            } else {
                None
            };
            masks.push_back(InputMask { share, clear });
        }
        input_masks[owner] = masks;
    }
    if let Some(extra) = t.it.next() {
        return Err(PartyError::Proto(format!(
            "dealer file: trailing data starting at {extra:?}"
        )));
    }
    Ok(MaterialBlocks {
        party,
        parties,
        alpha,
        triples,
        bit_triples,
        shared_bits,
        dabits,
        input_masks,
    })
}

// ---------------------------------------------------------------------------
// Wire encoding for the streamed dealer protocol.
// ---------------------------------------------------------------------------

pub(crate) fn encode_triples(ts: &[(AuthShare, AuthShare, AuthShare)]) -> Vec<u64> {
    let mut w = Vec::with_capacity(ts.len() * TRIPLE_WORDS);
    for (a, b, c) in ts {
        w.extend_from_slice(&[a.v.0, a.m.0, b.v.0, b.m.0, c.v.0, c.m.0]);
    }
    w
}

pub(crate) fn decode_triples(w: &[u64]) -> PartyResult<Vec<(AuthShare, AuthShare, AuthShare)>> {
    if !w.len().is_multiple_of(TRIPLE_WORDS) {
        return Err(PartyError::Proto("misframed dealer triple block".into()));
    }
    Ok(w.chunks_exact(TRIPLE_WORDS)
        .map(|c| {
            (
                AuthShare::new(RingElem(c[0]), RingElem(c[1])),
                AuthShare::new(RingElem(c[2]), RingElem(c[3])),
                AuthShare::new(RingElem(c[4]), RingElem(c[5])),
            )
        })
        .collect())
}

pub(crate) fn encode_bit_triples(ts: &[(u64, u64, u64)]) -> Vec<u64> {
    let mut w = Vec::with_capacity(ts.len() * BIT_TRIPLE_WORDS);
    for (a, b, c) in ts {
        w.extend_from_slice(&[*a, *b, *c]);
    }
    w
}

pub(crate) fn decode_bit_triples(w: &[u64]) -> PartyResult<Vec<(u64, u64, u64)>> {
    if !w.len().is_multiple_of(BIT_TRIPLE_WORDS) {
        return Err(PartyError::Proto(
            "misframed dealer bit-triple block".into(),
        ));
    }
    Ok(w.chunks_exact(BIT_TRIPLE_WORDS)
        .map(|c| (c[0], c[1], c[2]))
        .collect())
}

pub(crate) fn encode_shared_bits(ts: &[(u64, AuthShare)]) -> Vec<u64> {
    let mut w = Vec::with_capacity(ts.len() * SHARED_BIT_WORDS);
    for (bits, add) in ts {
        w.extend_from_slice(&[*bits, add.v.0, add.m.0]);
    }
    w
}

pub(crate) fn decode_shared_bits(w: &[u64]) -> PartyResult<Vec<(u64, AuthShare)>> {
    if !w.len().is_multiple_of(SHARED_BIT_WORDS) {
        return Err(PartyError::Proto(
            "misframed dealer shared-bit block".into(),
        ));
    }
    Ok(w.chunks_exact(SHARED_BIT_WORDS)
        .map(|c| (c[0], AuthShare::new(RingElem(c[1]), RingElem(c[2]))))
        .collect())
}

pub(crate) fn encode_dabits(ts: &[(u64, Vec<AuthShare>)]) -> Vec<u64> {
    let mut w = Vec::with_capacity(ts.len() * DABIT_WORDS);
    for (bits, adds) in ts {
        w.push(*bits);
        for a in adds {
            w.extend_from_slice(&[a.v.0, a.m.0]);
        }
    }
    w
}

pub(crate) fn decode_dabits(w: &[u64]) -> PartyResult<Vec<(u64, Vec<AuthShare>)>> {
    if !w.len().is_multiple_of(DABIT_WORDS) {
        return Err(PartyError::Proto("misframed dealer daBit block".into()));
    }
    Ok(w.chunks_exact(DABIT_WORDS)
        .map(|c| {
            let adds = c[1..]
                .chunks_exact(2)
                .map(|p| AuthShare::new(RingElem(p[0]), RingElem(p[1])))
                .collect();
            (c[0], adds)
        })
        .collect())
}

pub(crate) fn encode_input_masks(ms: &[InputMask], include_clear: bool) -> Vec<u64> {
    let width = if include_clear { 3 } else { 2 };
    let mut w = Vec::with_capacity(ms.len() * width);
    for m in ms {
        w.extend_from_slice(&[m.share.v.0, m.share.m.0]);
        if include_clear {
            // Encoding a clear value the material does not carry would be a
            // dealer-side bug, not a recoverable wire condition.
            w.push(m.clear.map(|r| r.0).unwrap_or_default());
        }
    }
    w
}

pub(crate) fn decode_input_masks(w: &[u64], has_clear: bool) -> PartyResult<Vec<InputMask>> {
    let width = if has_clear { 3 } else { 2 };
    if !w.len().is_multiple_of(width) {
        return Err(PartyError::Proto(
            "misframed dealer input-mask block".into(),
        ));
    }
    Ok(w.chunks_exact(width)
        .map(|c| InputMask {
            share: AuthShare::new(RingElem(c[0]), RingElem(c[1])),
            clear: if has_clear {
                Some(RingElem(c[2]))
            } else {
                None
            },
        })
        .collect())
}

/// Serves one party's offline material over a dedicated two-endpoint link
/// until the party drops its end. `link` is the **dealer's** endpoint;
/// `party`/`parties` identify the served party within the computing mesh
/// (the link's own ids are just `0`/`1`).
///
/// The protocol is pull-based: the party sends a [`MessageKind::Dealer`]
/// request `[code, ...]` (see the `REQ_*` constants) and the dealer answers
/// with one block. Because every server derives the same deterministic
/// [`DealerStream`], independent per-party servers stay share-consistent as
/// long as the parties consume blocks in the same collective order — which
/// the synchronous online protocol guarantees.
pub fn serve_party(link: &dyn Transport, party: u32, parties: u32, seed: u64) -> PartyResult<()> {
    let peer = 1 - link.party();
    let mut stream = DealerStream::new(seed, parties as usize);
    loop {
        let env = match link.recv_from(peer) {
            Ok(env) => env,
            // The session dropped its end of the link: offline phase over.
            Err(TransportError::Disconnected { .. }) => return Ok(()),
            // An idle party is not an error; keep serving until disconnect.
            Err(TransportError::Timeout { .. }) => continue,
            Err(e) => return Err(e.into()),
        };
        if env.kind != MessageKind::Dealer || env.payload.is_empty() {
            return Err(PartyError::Proto(format!(
                "unexpected frame on dealer link: kind {}, {} words",
                env.kind,
                env.payload.len()
            )));
        }
        let count = env.payload.get(1).copied().unwrap_or(0) as usize;
        let words = match env.payload[0] {
            REQ_ALPHA => vec![stream.alpha_share(party as usize).0],
            REQ_TRIPLES => encode_triples(&stream.triples(count)[party as usize]),
            REQ_BIT_TRIPLES => encode_bit_triples(&stream.bit_triples(count)[party as usize]),
            REQ_SHARED_BITS => encode_shared_bits(&stream.shared_bits(count)[party as usize]),
            REQ_DABITS => encode_dabits(&stream.dabits(count)[party as usize]),
            REQ_INPUT_MASKS => {
                let owner = env.payload.get(1).copied().unwrap_or(0) as usize;
                let count = env.payload.get(2).copied().unwrap_or(0) as usize;
                if owner >= parties as usize {
                    return Err(PartyError::Proto(format!(
                        "dealer request names owner {owner} outside the mesh"
                    )));
                }
                let masks: Vec<InputMask> = stream
                    .input_masks(owner, count)
                    .into_iter()
                    .map(|(r, shares)| InputMask {
                        share: shares[party as usize],
                        clear: if owner == party as usize {
                            Some(r)
                        } else {
                            None
                        },
                    })
                    .collect();
                encode_input_masks(&masks, owner == party as usize)
            }
            other => {
                return Err(PartyError::Proto(format!(
                    "unknown dealer request code {other}"
                )))
            }
        };
        link.send_to(peer, MessageKind::Dealer, "dealer block", &words)?;
    }
}

/// Where a [`crate::runtime::PartySession`] obtains its offline material.
pub enum DealerSource {
    /// Derive material on the fly from the session's common seed — the
    /// original semi-honest development mode, in which every party can
    /// recompute the dealer. Kept as the default for differential testing.
    Seeded,
    /// Consume pregenerated per-party material (e.g. loaded from a dealer
    /// file with [`load_party_file`]). Requests beyond the preloaded stock
    /// fail with [`PartyError::Proto`] instead of silently reusing material.
    Preloaded(Box<MaterialBlocks>),
    /// Pull blocks on demand from a dealer served by [`serve_party`] over a
    /// dedicated two-endpoint link.
    Streamed {
        /// This party's endpoint of the party↔dealer link.
        link: Box<dyn Transport>,
        /// The dealer's id on that link (normally `1 - link.party()`).
        dealer: u32,
    },
}

impl fmt::Debug for DealerSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DealerSource::Seeded => f.write_str("Seeded"),
            DealerSource::Preloaded(b) => f
                .debug_struct("Preloaded")
                .field("party", &b.party)
                .field("triples", &b.triples.len())
                .finish(),
            DealerSource::Streamed { dealer, .. } => {
                f.debug_struct("Streamed").field("dealer", dealer).finish()
            }
        }
    }
}

/// Counters describing a [`MaterialPool`]'s activity so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Bundles dealt by the background refiller.
    pub dealt: u64,
    /// Bundles taken by consumers.
    pub taken: u64,
    /// `take` calls that found the pool empty and had to block.
    pub starved: u64,
}

/// A `Mutex<T>` lock that shrugs off poisoning: a consumer panicking while
/// holding the pool lock must not wedge every other tenant of the server.
fn locked<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct PoolState {
    ready: VecDeque<Vec<MaterialBlocks>>,
    stats: PoolStats,
    paused: bool,
    closed: bool,
}

struct PoolInner {
    state: std::sync::Mutex<PoolState>,
    /// Signals consumers blocked in [`MaterialPool::take`].
    bundle_ready: std::sync::Condvar,
    /// Signals the refiller that capacity freed up or pause/close changed.
    refill_needed: std::sync::Condvar,
    depth: usize,
    parties: usize,
    alpha: RingElem,
    alpha_shares: Vec<RingElem>,
}

/// A shared pool of dealer bundles refilled by a background thread, so the
/// online phase draws MACed material without blocking on the offline phase.
///
/// The pool owns **one** persistent [`DealerStream`]: every bundle it deals
/// authenticates under the same MAC key `α` with identical per-party
/// `α`-shares, which is what makes it sound to top up a running
/// [`crate::runtime::PartySession`] (via `refill`) with a later bundle. The
/// refiller thread keeps up to `depth` bundles ready and parks when the pool
/// is full; it holds only a weak reference, so dropping the last pool handle
/// shuts it down.
///
/// Cloning the pool is cheap (an `Arc` bump); clones share the same stock.
#[derive(Clone)]
pub struct MaterialPool {
    inner: std::sync::Arc<PoolInner>,
}

impl fmt::Debug for MaterialPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = locked(&self.inner.state);
        f.debug_struct("MaterialPool")
            .field("parties", &self.inner.parties)
            .field("depth", &self.inner.depth)
            .field("ready", &st.ready.len())
            .field("stats", &st.stats)
            .field("paused", &st.paused)
            .finish()
    }
}

impl MaterialPool {
    /// Starts a pool dealing bundles of `spec`-sized material for `parties`
    /// computing parties, keeping up to `depth` bundles ready.
    pub fn start(seed: u64, parties: usize, spec: MaterialSpec, depth: usize) -> MaterialPool {
        MaterialPool::spawn(seed, parties, spec, depth, false)
    }

    /// Like [`MaterialPool::start`], but the refiller begins paused: `take`
    /// blocks until [`MaterialPool::resume`] is called. Test hook for
    /// deterministic starvation scenarios ("the refiller lags").
    pub fn start_paused(
        seed: u64,
        parties: usize,
        spec: MaterialSpec,
        depth: usize,
    ) -> MaterialPool {
        MaterialPool::spawn(seed, parties, spec, depth, true)
    }

    fn spawn(seed: u64, parties: usize, spec: MaterialSpec, depth: usize, paused: bool) -> Self {
        assert!(parties >= 2, "a dealer needs at least 2 computing parties");
        let stream = DealerStream::new(seed, parties);
        let inner = std::sync::Arc::new(PoolInner {
            state: std::sync::Mutex::new(PoolState {
                ready: VecDeque::new(),
                stats: PoolStats::default(),
                paused,
                closed: false,
            }),
            bundle_ready: std::sync::Condvar::new(),
            refill_needed: std::sync::Condvar::new(),
            depth: depth.max(1),
            parties,
            alpha: stream.alpha(),
            alpha_shares: (0..parties).map(|p| stream.alpha_share(p)).collect(),
        });
        let weak = std::sync::Arc::downgrade(&inner);
        std::thread::Builder::new()
            .name("conclave-dealer-pool".into())
            .spawn(move || MaterialPool::refiller(weak, stream, spec))
            .unwrap_or_else(|e| panic!("failed to spawn dealer-pool refiller: {e}"));
        MaterialPool { inner }
    }

    fn refiller(weak: std::sync::Weak<PoolInner>, mut stream: DealerStream, spec: MaterialSpec) {
        loop {
            // Holding only a weak reference between iterations (and a short
            // timed wait while parked) keeps the refiller from pinning the
            // pool alive: once the last handle drops, the next upgrade fails
            // and the thread exits within one poll interval.
            let deal = {
                let Some(inner) = weak.upgrade() else { return };
                let st = locked(&inner.state);
                if st.closed {
                    return;
                }
                if st.paused || st.ready.len() >= inner.depth {
                    let _parked = inner
                        .refill_needed
                        .wait_timeout(st, std::time::Duration::from_millis(50))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    false
                } else {
                    true
                }
            };
            if !deal {
                continue;
            }
            // Deal outside the lock: consumers can keep taking ready bundles
            // while the next one is being generated.
            let bundle = stream.blocks(spec);
            let Some(inner) = weak.upgrade() else { return };
            let mut st = locked(&inner.state);
            if st.closed {
                return;
            }
            st.ready.push_back(bundle);
            st.stats.dealt += 1;
            inner.bundle_ready.notify_all();
        }
    }

    /// Number of computing parties each bundle covers.
    pub fn parties(&self) -> usize {
        self.inner.parties
    }

    /// The global MAC key `α` shared by every bundle this pool deals.
    pub fn alpha(&self) -> RingElem {
        self.inner.alpha
    }

    /// Party `p`'s additive share of `α` (identical in every bundle).
    pub fn alpha_share(&self, p: usize) -> RingElem {
        self.inner.alpha_shares[p]
    }

    /// Takes one bundle (one [`MaterialBlocks`] per party), blocking until
    /// the refiller has one ready. Queries therefore *wait* on a starved pool
    /// — they never run with partial material.
    pub fn take(&self) -> Vec<MaterialBlocks> {
        let mut st = locked(&self.inner.state);
        if st.ready.is_empty() {
            st.stats.starved += 1;
        }
        while st.ready.is_empty() {
            st = self
                .inner
                .bundle_ready
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let bundle = st.ready.pop_front().unwrap_or_default();
        st.stats.taken += 1;
        self.inner.refill_needed.notify_all();
        bundle
    }

    /// Pauses the background refiller (already-dealt bundles remain takeable).
    pub fn pause(&self) {
        locked(&self.inner.state).paused = true;
    }

    /// Resumes a paused refiller.
    pub fn resume(&self) {
        locked(&self.inner.state).paused = false;
        self.inner.refill_needed.notify_all();
    }

    /// Bundles currently ready to take.
    pub fn ready(&self) -> usize {
        locked(&self.inner.state).ready.len()
    }

    /// Activity counters (dealt / taken / starved).
    pub fn stats(&self) -> PoolStats {
        locked(&self.inner.state).stats
    }

    /// Whether `other` is a handle to this same pool.
    pub fn same_pool(&self, other: &MaterialPool) -> bool {
        std::sync::Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Drop for MaterialPool {
    fn drop(&mut self) {
        // When the last handle drops, flag the pool closed and wake the
        // refiller so it exits promptly; the timed wait in `refiller` is the
        // fallback for the race where it briefly holds its own strong ref.
        if std::sync::Arc::strong_count(&self.inner) == 1 {
            let mut st = locked(&self.inner.state);
            st.closed = true;
            self.inner.refill_needed.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    // Reconstruction asserts index the same correlation slot across every
    // party's block; an indexed loop mirrors that access pattern directly.
    #![allow(clippy::needless_range_loop)]

    use super::*;
    use conclave_net::ChannelTransport;

    fn reconstruct(shares: impl IntoIterator<Item = AuthShare>) -> (RingElem, RingElem) {
        shares
            .into_iter()
            .fold((RingElem::ZERO, RingElem::ZERO), |(v, m), s| {
                (v + s.v, m + s.m)
            })
    }

    #[test]
    fn dealt_material_is_consistent_and_authenticated() {
        let mut stream = DealerStream::new(77, 3);
        let alpha = stream.alpha();
        assert_eq!(
            (0..3)
                .map(|p| stream.alpha_share(p))
                .fold(RingElem::ZERO, |a, s| a + s),
            alpha
        );

        let triples = stream.triples(8);
        for i in 0..8 {
            let (av, am) = reconstruct((0..3).map(|p| triples[p][i].0));
            let (bv, bm) = reconstruct((0..3).map(|p| triples[p][i].1));
            let (cv, cm) = reconstruct((0..3).map(|p| triples[p][i].2));
            assert_eq!(cv, av * bv, "triple {i} is not multiplicative");
            assert_eq!(am, alpha * av);
            assert_eq!(bm, alpha * bv);
            assert_eq!(cm, alpha * cv);
        }

        let bits = stream.bit_triples(4);
        for i in 0..4 {
            let a = (0..3).fold(0u64, |acc, p| acc ^ bits[p][i].0);
            let b = (0..3).fold(0u64, |acc, p| acc ^ bits[p][i].1);
            let c = (0..3).fold(0u64, |acc, p| acc ^ bits[p][i].2);
            assert_eq!(c, a & b);
        }

        let sb = stream.shared_bits(4);
        for i in 0..4 {
            let r = (0..3).fold(0u64, |acc, p| acc ^ sb[p][i].0);
            let (v, m) = reconstruct((0..3).map(|p| sb[p][i].1));
            assert_eq!(v, RingElem(r), "XOR and arithmetic views disagree");
            assert_eq!(m, alpha * v);
        }

        let db = stream.dabits(2);
        for i in 0..2 {
            let rho = (0..3).fold(0u64, |acc, p| acc ^ db[p][i].0);
            for k in 0..64 {
                let (v, m) = reconstruct((0..3).map(|p| db[p][i].1[k]));
                assert_eq!(v, RingElem((rho >> k) & 1));
                assert_eq!(m, alpha * v);
            }
        }

        let masks = stream.input_masks(1, 4);
        for (r, shares) in masks {
            let (v, m) = reconstruct(shares);
            assert_eq!(v, r);
            assert_eq!(m, alpha * v);
        }
    }

    #[test]
    fn type_interleaving_does_not_change_the_streams() {
        // One consumer asks triples-then-bits, the other bits-then-triples;
        // the per-type streams must be identical.
        let mut a = DealerStream::new(9, 2);
        let mut b = DealerStream::new(9, 2);
        let ta = a.triples(3);
        let ba = a.bit_triples(2);
        let bb = b.bit_triples(2);
        let tb = b.triples(3);
        assert_eq!(ta, tb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn files_round_trip_and_hide_foreign_clear_masks() {
        let dir = std::env::temp_dir().join(format!("conclave-dealer-test-{}", std::process::id()));
        let spec = MaterialSpec {
            triples: 5,
            bit_triples: 3,
            shared_bits: 2,
            dabits: 1,
            input_masks: 2,
        };
        let paths = write_party_files(&dir, 123, 3, spec).unwrap();
        let blocks = generate_blocks(123, 3, spec);
        for (p, path) in paths.iter().enumerate() {
            let loaded = load_party_file(path).unwrap();
            assert_eq!(loaded.party, p as u32);
            assert_eq!(loaded.parties, 3);
            assert_eq!(loaded.alpha, blocks[p].alpha);
            assert_eq!(loaded.triples, blocks[p].triples);
            assert_eq!(loaded.bit_triples, blocks[p].bit_triples);
            assert_eq!(loaded.shared_bits, blocks[p].shared_bits);
            assert_eq!(loaded.dabits, blocks[p].dabits);
            assert_eq!(loaded.input_masks, blocks[p].input_masks);
            for (owner, masks) in loaded.input_masks.iter().enumerate() {
                for m in masks {
                    assert_eq!(
                        m.clear.is_some(),
                        owner == p,
                        "clear mask must exist only in the owner's file"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_or_corrupt_files_are_rejected() {
        let dir =
            std::env::temp_dir().join(format!("conclave-dealer-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.dealer");
        std::fs::write(
            &path,
            "conclave-dealer v1\nparty 0 of 2\nalpha 7\ntriples 1\n1 2 3\n",
        )
        .unwrap();
        let err = load_party_file(&path).unwrap_err();
        assert!(err.to_string().contains("truncated"), "got: {err}");
        std::fs::write(&path, "not-a-dealer-file").unwrap();
        assert!(load_party_file(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn independent_servers_deal_consistent_shares() {
        // One server thread per party link, each with its own DealerStream;
        // the shares pulled across links must still reconstruct.
        let parties = 3u32;
        let seed = 4242;
        let mut party_ends = Vec::new();
        let mut handles = Vec::new();
        for p in 0..parties {
            let mut mesh = ChannelTransport::mesh(2);
            let dealer_end = mesh.pop().unwrap();
            party_ends.push(mesh.pop().unwrap());
            handles.push(std::thread::spawn(move || {
                serve_party(&dealer_end, p, parties, seed)
            }));
        }
        let mut pulled = Vec::new();
        for link in &party_ends {
            link.send_to(1, MessageKind::Dealer, "dealer request", &[REQ_TRIPLES, 2])
                .unwrap();
            let env = link.recv_from(1).unwrap();
            assert_eq!(env.kind, MessageKind::Dealer);
            pulled.push(decode_triples(&env.payload).unwrap());
        }
        let stream = DealerStream::new(seed, parties as usize);
        let alpha = stream.alpha();
        for i in 0..2 {
            let (av, am) = reconstruct((0..parties as usize).map(|p| pulled[p][i].0));
            let (bv, _) = reconstruct((0..parties as usize).map(|p| pulled[p][i].1));
            let (cv, _) = reconstruct((0..parties as usize).map(|p| pulled[p][i].2));
            assert_eq!(cv, av * bv);
            assert_eq!(am, alpha * av);
        }
        drop(party_ends);
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }

    fn tiny_spec() -> MaterialSpec {
        MaterialSpec {
            triples: 8,
            bit_triples: 8,
            shared_bits: 4,
            dabits: 2,
            input_masks: 4,
        }
    }

    #[test]
    fn pool_bundles_share_one_mac_key_and_reconstruct() {
        let pool = MaterialPool::start(77, 3, tiny_spec(), 2);
        let first = pool.take();
        let second = pool.take();
        assert_eq!(first.len(), 3);
        // Same α-shares across bundles (the refill soundness requirement)…
        for p in 0..3 {
            assert_eq!(first[p].alpha, second[p].alpha);
            assert_eq!(first[p].alpha, pool.alpha_share(p));
        }
        // …but fresh correlations: the streams advanced between bundles.
        assert_ne!(first[0].triples[0].0.v, second[0].triples[0].0.v);
        // Each bundle's triples reconstruct under the pool's global key.
        for bundle in [&first, &second] {
            let (av, am) = reconstruct((0..3).map(|p| bundle[p].triples[0].0));
            let (bv, _) = reconstruct((0..3).map(|p| bundle[p].triples[0].1));
            let (cv, _) = reconstruct((0..3).map(|p| bundle[p].triples[0].2));
            assert_eq!(cv, av * bv);
            assert_eq!(am, pool.alpha() * av);
        }
        let stats = pool.stats();
        assert_eq!(stats.taken, 2);
        assert!(stats.dealt >= 2);
    }

    #[test]
    fn paused_pool_starves_takers_until_resumed() {
        let pool = MaterialPool::start_paused(9, 2, tiny_spec(), 1);
        assert_eq!(pool.ready(), 0);
        let taker = {
            let pool = pool.clone();
            std::thread::spawn(move || pool.take())
        };
        // The taker must block: no bundle can appear while paused.
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert!(!taker.is_finished());
        assert_eq!(pool.stats().dealt, 0);
        pool.resume();
        let bundle = taker.join().unwrap();
        assert_eq!(bundle.len(), 2);
        let stats = pool.stats();
        assert_eq!(stats.taken, 1);
        assert_eq!(stats.starved, 1);
    }
}
