//! The distributed party runtime: per-party protocol state over a
//! [`Transport`].
//!
//! The single-process [`crate::protocol::Protocol`] materializes *every*
//! party's shares inside one struct — convenient for simulation, but it
//! cannot measure the thing the paper's evaluation is about: per-party
//! message exchange. This module provides the real counterpart, split into
//! **session-lifetime** and **per-step** state:
//!
//! * [`PartySession`] is **one party's** query-lifetime endpoint: identity,
//!   the dealer state (common + private randomness streams, seeded once per
//!   query), the Beaver triple cache, and the [`Transport`]. Because the
//!   additive sharing is defined by the session, shares produced in one plan
//!   step remain valid in every later step — intermediate relations stay
//!   resident on the parties instead of being opened and re-shared at every
//!   step boundary.
//! * [`StepCtx`] (from [`PartySession::step`]) is one plan step's view: the
//!   protocol primitives — input sharing, opening, Beaver multiplication,
//!   comparisons — driven through explicit [`Transport`] message rounds, each
//!   tagged with a `(step, stream)` [`StreamTag`] so concurrent steps can
//!   multiplex the same session-lifetime connections. The transport's
//!   [`NetStats`](conclave_net::NetStats) record *observed* bytes and rounds.
//! * [`PartyRelation`] is the per-party slice of a secret-shared relation
//!   (public schema, one share per cell), and the free functions implement
//!   the oblivious relational operators over it ([`sort_by`], [`shuffle`],
//!   [`aggregate_sorted`], [`cartesian_join`], [`filter`], …), mirroring the
//!   in-process implementations in [`crate::oblivious`] cell for cell.
//! * [`execute_party_op`] dispatches one relational [`Operator`] exactly like
//!   [`crate::backend::MpcEngine::execute_shared`], so a driver can swap the
//!   simulated engine for a party mesh without changing plan semantics.
//!
//! ## Open/reveal semantics
//!
//! Opening is no longer implicit at every step boundary: a result is opened
//! **only at reveal boundaries** — when a non-party consumer (a local or STP
//! step, a hybrid protocol, or the query output) needs the cleartext.
//! [`begin_open_relation`] broadcasts this party's shares immediately and
//! returns a [`PendingOpen`]; [`finish_open_relation`] collects the peers'
//! shares later, so a worker can start the *next* step's rounds while the
//! previous step's final open is still in flight (the stream tags keep the
//! interleaved frames apart).
//!
//! ## Fidelity note
//!
//! One substitution mirrors the one documented on the in-process protocol:
//! **preprocessing**. Beaver triples (arithmetic and binary), dual-shared
//! bit-decomposition masks and daBits all come from a *common-seed dealer* —
//! every party derives the identical dealer stream from the shared RNG seed
//! and keeps its own share, standing in for the offline preprocessing phase
//! (like Sharemind's deployment model). The *online* phase is exchanged for
//! real: Beaver `d`/`e` openings, and the comparison circuits' masked
//! openings and AND rounds, all cross the transport as
//! [`MessageKind::MaskedOpen`] traffic.
//!
//! Comparisons are **not** simulated: `lt`/`eq` run the bit-decomposed
//! comparison circuits of [`crate::circuits`] entirely on shares (9 rounds
//! for a less-than batch, 8 for an equality batch, independent of batch
//! size). No operand, bit, or intermediate ever appears on the wire
//! unmasked — `tests/wire_privacy.rs` pins this against a sniffing
//! transport.
//!
//! The substitution preserves exact `Z_{2^64}` arithmetic, which is what the
//! transport-equivalence test suite pins against the in-process oracle.

use crate::cost::PrimitiveCounts;
use crate::ring::RingElem;
use conclave_engine::Relation;
use conclave_ir::expr::{BinOp, Expr};
use conclave_ir::ops::{aggregate_schema, join_schema, AggFunc, Operand, Operator};
use conclave_ir::schema::{ColumnDef, Schema};
use conclave_ir::types::{DataType, Value};
use conclave_net::{MessageKind, StreamTag, Transport, TransportError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Errors raised by the party runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartyError {
    /// A transport failure (timeout, disconnect, I/O).
    Net(TransportError),
    /// A protocol-level failure (bad column, arity, malformed peer data).
    Proto(String),
    /// The operator is not executable by the party runtime.
    Unsupported(String),
}

impl fmt::Display for PartyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartyError::Net(e) => write!(f, "party transport error: {e}"),
            PartyError::Proto(s) => write!(f, "party protocol error: {s}"),
            PartyError::Unsupported(s) => write!(f, "unsupported in the party runtime: {s}"),
        }
    }
}

impl std::error::Error for PartyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartyError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for PartyError {
    fn from(e: TransportError) -> Self {
        PartyError::Net(e)
    }
}

/// Result alias for party-runtime operations.
pub type PartyResult<T> = Result<T, PartyError>;

/// Number of Beaver triples derived from the common stream per cache refill.
const TRIPLE_BLOCK: usize = 1024;

/// Binary (bitwise) Beaver triple words per cache refill. One word carries
/// 64 AND gates, so a block covers ~16 k gates.
const BIT_TRIPLE_BLOCK: usize = 256;

/// Dual-shared bit-decomposition masks per cache refill.
const SHARED_BITS_BLOCK: usize = 256;

/// daBit words (64 dual-shared random bits each) per cache refill.
const DABIT_BLOCK: usize = 16;

/// One party's **session-lifetime** protocol state: identity, dealer state
/// (the common and private randomness streams), the Beaver triple cache and
/// the transport endpoint. A session lives as long as the query — shares it
/// produced in one plan step stay valid in every later step, because the
/// additive sharing is defined by the session, not by any step.
///
/// All parties of a mesh must construct their `PartySession` with the *same*
/// `seed` and then execute the *same* sequence of collective operations; the
/// shared seed drives the common-randomness stream (triples, permutations,
/// deterministic re-sharing) that keeps the parties in lock-step without a
/// coordinator.
///
/// Per-step work happens through [`PartySession::step`], which hands out a
/// [`StepCtx`] carrying the plan-step id: every collective exchange inside
/// the step is tagged with a fresh `(step, stream)` [`StreamTag`], so a
/// step's final open can still be in flight while the next step's rounds are
/// already crossing the same connections.
pub struct PartySession<'n> {
    net: &'n dyn Transport,
    /// Common randomness: identical stream on every party.
    common: StdRng,
    /// Private randomness: distinct per party (used to share own inputs).
    private: StdRng,
    /// Beaver triple shares pre-derived from the common stream in blocks.
    triples: std::collections::VecDeque<(RingElem, RingElem, RingElem)>,
    /// Binary Beaver triple words `(a, b, c = a & b)`, XOR-shared: each word
    /// feeds 64 AND gates of the comparison circuits.
    bit_triples: std::collections::VecDeque<(u64, u64, u64)>,
    /// Bit-decomposition masks in dual representation: the mask's 64 bits
    /// XOR-shared as one word, plus an additive share of the same value.
    shared_bits: std::collections::VecDeque<(u64, RingElem)>,
    /// daBits, word-packed: 64 random bits XOR-shared as one word, with an
    /// additive share of each individual bit (for bit-to-arithmetic).
    dabits: std::collections::VecDeque<(u64, Vec<RingElem>)>,
    counts: PrimitiveCounts,
}

impl<'n> PartySession<'n> {
    /// Creates the session for `net`'s party with the mesh-wide `seed`,
    /// seeding the dealer **once** for the whole query.
    pub fn new(net: &'n dyn Transport, seed: u64) -> Self {
        let party = net.party() as u64;
        PartySession {
            net,
            common: StdRng::seed_from_u64(seed),
            private: StdRng::seed_from_u64(seed ^ (party + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            triples: std::collections::VecDeque::new(),
            bit_triples: std::collections::VecDeque::new(),
            shared_bits: std::collections::VecDeque::new(),
            dabits: std::collections::VecDeque::new(),
            counts: PrimitiveCounts::default(),
        }
    }

    /// This endpoint's party id.
    pub fn party(&self) -> u32 {
        self.net.party()
    }

    /// Number of parties in the mesh.
    pub fn parties(&self) -> u32 {
        self.net.parties()
    }

    /// The transport endpoint this session drives.
    pub fn net(&self) -> &'n dyn Transport {
        self.net
    }

    /// Snapshot of the primitive counters (identical on every party, because
    /// every party counts the same collective operations).
    pub fn counts(&self) -> PrimitiveCounts {
        self.counts
    }

    /// Opens the per-step context for plan step `step`: collective exchanges
    /// made through it are tagged `(step, 0..)`. Every party must open steps
    /// in the same order with the same ids.
    pub fn step(&mut self, step: u32) -> StepCtx<'_, 'n> {
        StepCtx {
            sess: self,
            step,
            next_stream: 0,
        }
    }

    /// Draws `n` shares of `value` from the common randomness stream and
    /// returns this party's one. Every party performs the identical draws, so
    /// the shares are consistent without communication.
    fn reshare_from_common(&mut self, value: RingElem) -> RingElem {
        let n = self.parties() as usize;
        let mut acc = RingElem::ZERO;
        let mut own = RingElem::ZERO;
        for p in 0..n - 1 {
            let r = RingElem(self.common.gen::<u64>());
            if p == self.party() as usize {
                own = r;
            }
            acc += r;
        }
        if self.party() as usize == n - 1 {
            own = value - acc;
        }
        own
    }

    /// Takes the next Beaver triple share from the cache, refilling a whole
    /// block from the common stream when it runs dry. All parties refill at
    /// the same point of the same collective operation, so their dealer
    /// streams stay aligned.
    fn next_triple(&mut self) -> (RingElem, RingElem, RingElem) {
        if self.triples.is_empty() {
            for _ in 0..TRIPLE_BLOCK {
                let a = RingElem(self.common.gen::<u64>());
                let b = RingElem(self.common.gen::<u64>());
                let c = a * b;
                let a_i = self.reshare_from_common(a);
                let b_i = self.reshare_from_common(b);
                let c_i = self.reshare_from_common(c);
                self.triples.push_back((a_i, b_i, c_i));
            }
        }
        self.triples.pop_front().expect("refilled above")
    }

    /// Draws XOR shares of `value` from the common stream and returns this
    /// party's word. The binary analogue of
    /// [`PartySession::reshare_from_common`].
    fn xor_share_from_common(&mut self, value: u64) -> u64 {
        let n = self.parties() as usize;
        let mut acc = 0u64;
        let mut own = 0u64;
        for p in 0..n - 1 {
            let r = self.common.gen::<u64>();
            if p == self.party() as usize {
                own = r;
            }
            acc ^= r;
        }
        if self.party() as usize == n - 1 {
            own = value ^ acc;
        }
        own
    }

    /// Takes `n` binary Beaver triple words, refilling whole blocks from the
    /// common stream when the cache runs dry (same alignment argument as
    /// [`PartySession::next_triple`]).
    fn take_bit_triples(&mut self, n: usize) -> Vec<(u64, u64, u64)> {
        while self.bit_triples.len() < n {
            for _ in 0..BIT_TRIPLE_BLOCK {
                let a = self.common.gen::<u64>();
                let b = self.common.gen::<u64>();
                let c = a & b;
                let a_i = self.xor_share_from_common(a);
                let b_i = self.xor_share_from_common(b);
                let c_i = self.xor_share_from_common(c);
                self.bit_triples.push_back((a_i, b_i, c_i));
            }
        }
        self.bit_triples.drain(..n).collect()
    }

    /// Takes `n` dual-shared bit-decomposition masks (XOR-shared bits plus
    /// an additive share of the same 64-bit value).
    fn take_shared_bits(&mut self, n: usize) -> Vec<(u64, RingElem)> {
        while self.shared_bits.len() < n {
            for _ in 0..SHARED_BITS_BLOCK {
                let r = self.common.gen::<u64>();
                let bits_i = self.xor_share_from_common(r);
                let add_i = self.reshare_from_common(RingElem(r));
                self.shared_bits.push_back((bits_i, add_i));
            }
        }
        self.shared_bits.drain(..n).collect()
    }

    /// Takes `n` daBit words: 64 random bits per word, XOR-shared as a word
    /// and additively shared bit by bit.
    fn take_dabits(&mut self, n: usize) -> Vec<(u64, Vec<RingElem>)> {
        while self.dabits.len() < n {
            for _ in 0..DABIT_BLOCK {
                let rho = self.common.gen::<u64>();
                let bits_i = self.xor_share_from_common(rho);
                let adds: Vec<RingElem> = (0..64)
                    .map(|k| self.reshare_from_common(RingElem((rho >> k) & 1)))
                    .collect();
                self.dabits.push_back((bits_i, adds));
            }
        }
        self.dabits.drain(..n).collect()
    }

    /// A random permutation of `0..n` from the common stream — identical on
    /// every party, so a shuffle needs no index exchange.
    pub fn random_permutation(&mut self, n: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.common.gen_range(0..=i);
            perm.swap(i, j);
        }
        perm
    }
}

impl fmt::Debug for PartySession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PartySession")
            .field("party", &self.party())
            .field("parties", &self.parties())
            .field("counts", &self.counts)
            .finish()
    }
}

/// One plan step's view of a [`PartySession`]: the same protocol primitives,
/// with every collective exchange tagged `(step, stream)` so concurrent
/// steps can share the session-lifetime connections. Borrowing the session
/// mutably keeps the step sequence race-free within one party while the
/// dealer state advances across steps.
pub struct StepCtx<'s, 'n> {
    sess: &'s mut PartySession<'n>,
    step: u32,
    next_stream: u32,
}

impl<'n> StepCtx<'_, 'n> {
    /// This endpoint's party id.
    pub fn party(&self) -> u32 {
        self.sess.party()
    }

    /// Number of parties in the mesh.
    pub fn parties(&self) -> u32 {
        self.sess.parties()
    }

    /// The plan step this context belongs to.
    pub fn step_id(&self) -> u32 {
        self.step
    }

    /// Snapshot of the session's primitive counters.
    pub fn counts(&self) -> PrimitiveCounts {
        self.sess.counts()
    }

    /// The session this step borrows.
    pub fn session(&mut self) -> &mut PartySession<'n> {
        self.sess
    }

    /// Allocates the tag for the step's next collective exchange. Every
    /// party executes the same exchanges in the same order, so the counters
    /// advance identically mesh-wide.
    fn next_tag(&mut self) -> StreamTag {
        let tag = StreamTag::new(self.step, self.next_stream);
        self.next_stream += 1;
        tag
    }

    // ------------------------------------------------------------------
    // Input / output.
    // ------------------------------------------------------------------

    /// Collective input sharing of a column of `n` values owned by `owner`.
    ///
    /// The owner passes `Some(values)`, splits each value with its *private*
    /// randomness and sends every other party its share vector (one message
    /// per party); everyone else passes `None` and receives. Returns this
    /// party's local share vector.
    pub fn input_column(
        &mut self,
        owner: u32,
        values: Option<&[i64]>,
        n: usize,
    ) -> PartyResult<Vec<RingElem>> {
        self.sess.counts.input_elems += n as u64;
        let tag = self.next_tag();
        if self.party() == owner {
            let values = values.ok_or_else(|| {
                PartyError::Proto("input owner must supply the cleartext values".into())
            })?;
            if values.len() != n {
                return Err(PartyError::Proto(format!(
                    "input length mismatch: {} values for {n} rows",
                    values.len()
                )));
            }
            let parties = self.parties() as usize;
            // per_party[p][i] = party p's share of values[i].
            let mut per_party = vec![vec![RingElem::ZERO; n]; parties];
            for (i, &v) in values.iter().enumerate() {
                let mut acc = RingElem::ZERO;
                for row in per_party.iter_mut().take(parties - 1) {
                    let r = RingElem(self.sess.private.gen::<u64>());
                    row[i] = r;
                    acc += r;
                }
                per_party[parties - 1][i] = RingElem::from_i64(v) - acc;
            }
            for (p, shares) in per_party.iter().enumerate() {
                if p as u32 != owner {
                    let payload: Vec<u64> = shares.iter().map(|s| s.0).collect();
                    self.sess.net.send_tagged(
                        p as u32,
                        tag,
                        MessageKind::SecretShare,
                        "input",
                        &payload,
                    )?;
                }
            }
            Ok(per_party.swap_remove(owner as usize))
        } else {
            let env = self.sess.net.recv_tagged(owner, tag)?;
            if env.payload.len() != n {
                return Err(PartyError::Proto(format!(
                    "expected {n} input shares from P{owner}, got {}",
                    env.payload.len()
                )));
            }
            Ok(env.payload.into_iter().map(RingElem).collect())
        }
    }

    /// Opens a batch of shared values to every party: one broadcast round.
    pub fn open_column(&mut self, shares: &[RingElem]) -> PartyResult<Vec<i64>> {
        self.sess.counts.opened_elems += shares.len() as u64;
        let opened = self.exchange_and_sum(shares, MessageKind::Reveal, "open")?;
        Ok(opened.into_iter().map(RingElem::to_i64).collect())
    }

    /// Opens a single shared value. Scalar fast path: the one-word exchange
    /// happens on the stack instead of allocating the `open_column` vectors.
    pub fn open(&mut self, x: RingElem) -> PartyResult<i64> {
        self.sess.counts.opened_elems += 1;
        let tag = self.next_tag();
        self.sess
            .net
            .send_all_tagged(tag, MessageKind::Reveal, "open1", &[x.0])?;
        let mut sum = x;
        for peer in 0..self.parties() {
            if peer == self.party() {
                continue;
            }
            let env = self.sess.net.recv_tagged(peer, tag)?;
            if env.payload.len() != 1 {
                return Err(PartyError::Proto(format!(
                    "P{peer} sent {} words in a scalar open",
                    env.payload.len()
                )));
            }
            sum += RingElem(env.payload[0]);
        }
        self.sess.net.record_round();
        Ok(sum.to_i64())
    }

    /// Broadcasts this party's words and sums them with every peer's: the
    /// core of every opening. One synchronous round.
    fn exchange_and_sum(
        &mut self,
        shares: &[RingElem],
        kind: MessageKind,
        label: &str,
    ) -> PartyResult<Vec<RingElem>> {
        if shares.is_empty() {
            return Ok(Vec::new());
        }
        let tag = self.next_tag();
        let payload: Vec<u64> = shares.iter().map(|s| s.0).collect();
        self.sess.net.send_all_tagged(tag, kind, label, &payload)?;
        let mut sums = shares.to_vec();
        for peer in 0..self.parties() {
            if peer == self.party() {
                continue;
            }
            let env = self.sess.net.recv_tagged(peer, tag)?;
            if env.payload.len() != shares.len() {
                return Err(PartyError::Proto(format!(
                    "P{peer} sent {} words in a {label} round of {}",
                    env.payload.len(),
                    shares.len()
                )));
            }
            for (acc, word) in sums.iter_mut().zip(&env.payload) {
                *acc += RingElem(*word);
            }
        }
        self.sess.net.record_round();
        Ok(sums)
    }

    // ------------------------------------------------------------------
    // Circuit support (used by `crate::circuits`).
    // ------------------------------------------------------------------

    /// Opens masked ring values (`x − r` for dealer masks `r`): an additive
    /// exchange attributed as [`MessageKind::MaskedOpen`] and counted as a
    /// circuit round.
    pub(crate) fn open_masked(
        &mut self,
        shares: &[RingElem],
        label: &str,
    ) -> PartyResult<Vec<RingElem>> {
        self.sess.counts.circuit_rounds += 1;
        self.exchange_and_sum(shares, MessageKind::MaskedOpen, label)
    }

    /// Opens masked XOR-shared words (`x ⊕ a` for binary Beaver masks `a`):
    /// broadcast and XOR-combine, one synchronous round.
    pub(crate) fn open_xor_words(&mut self, words: &[u64], label: &str) -> PartyResult<Vec<u64>> {
        if words.is_empty() {
            return Ok(Vec::new());
        }
        self.sess.counts.circuit_rounds += 1;
        let tag = self.next_tag();
        self.sess
            .net
            .send_all_tagged(tag, MessageKind::MaskedOpen, label, words)?;
        let mut acc = words.to_vec();
        for peer in 0..self.parties() {
            if peer == self.party() {
                continue;
            }
            let env = self.sess.net.recv_tagged(peer, tag)?;
            if env.payload.len() != words.len() {
                return Err(PartyError::Proto(format!(
                    "P{peer} sent {} words in a {label} round of {}",
                    env.payload.len(),
                    words.len()
                )));
            }
            for (a, w) in acc.iter_mut().zip(&env.payload) {
                *a ^= w;
            }
        }
        self.sess.net.record_round();
        Ok(acc)
    }

    /// Takes binary Beaver triple words from the dealer cache.
    pub(crate) fn take_bit_triples(&mut self, n: usize) -> Vec<(u64, u64, u64)> {
        self.sess.take_bit_triples(n)
    }

    /// Takes dual-shared bit-decomposition masks from the dealer cache.
    pub(crate) fn take_shared_bits(&mut self, n: usize) -> Vec<(u64, RingElem)> {
        self.sess.take_shared_bits(n)
    }

    /// Takes daBit words from the dealer cache.
    pub(crate) fn take_dabits(&mut self, n: usize) -> Vec<(u64, Vec<RingElem>)> {
        self.sess.take_dabits(n)
    }

    /// Tallies evaluated binary AND gates.
    pub(crate) fn tally_bit_ands(&mut self, gates: u64) {
        self.sess.counts.bit_ands += gates;
    }

    // ------------------------------------------------------------------
    // Linear operations (local).
    // ------------------------------------------------------------------

    /// A public constant: party 0 holds the value, everyone else zero.
    pub fn constant(&self, v: i64) -> RingElem {
        if self.party() == 0 {
            RingElem::from_i64(v)
        } else {
            RingElem::ZERO
        }
    }

    /// Local addition of two sharings.
    pub fn add(&self, x: RingElem, y: RingElem) -> RingElem {
        x + y
    }

    /// Local subtraction of two sharings.
    pub fn sub(&self, x: RingElem, y: RingElem) -> RingElem {
        x - y
    }

    /// Local addition of a public constant (party 0 adjusts its share).
    pub fn add_public(&self, x: RingElem, c: i64) -> RingElem {
        if self.party() == 0 {
            x + RingElem::from_i64(c)
        } else {
            x
        }
    }

    /// Local multiplication by a public constant.
    pub fn mul_public(&self, x: RingElem, c: i64) -> RingElem {
        x * RingElem::from_i64(c)
    }

    // ------------------------------------------------------------------
    // Non-linear operations (communication).
    // ------------------------------------------------------------------

    /// Beaver multiplication of a batch of pairs: one opening round for the
    /// whole batch. Triples come from the common-seed dealer (see the module
    /// fidelity note); the `d = x − a`, `e = y − b` openings are real.
    pub fn mul_batch(&mut self, pairs: &[(RingElem, RingElem)]) -> PartyResult<Vec<RingElem>> {
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        self.sess.counts.mults += pairs.len() as u64;
        let mut a_shares = Vec::with_capacity(pairs.len());
        let mut b_shares = Vec::with_capacity(pairs.len());
        let mut c_shares = Vec::with_capacity(pairs.len());
        let mut masked = Vec::with_capacity(pairs.len() * 2);
        for &(x, y) in pairs {
            let (a_i, b_i, c_i) = self.sess.next_triple();
            masked.push(x - a_i);
            masked.push(y - b_i);
            a_shares.push(a_i);
            b_shares.push(b_i);
            c_shares.push(c_i);
        }
        let opened = self.exchange_and_sum(&masked, MessageKind::MaskedOpen, "beaver d/e")?;
        let mut out = Vec::with_capacity(pairs.len());
        for i in 0..pairs.len() {
            let d = opened[2 * i];
            let e = opened[2 * i + 1];
            // z_i = c_i + d·b_i + e·a_i (+ d·e on party 0).
            let mut z = c_shares[i] + b_shares[i] * d + a_shares[i] * e;
            if self.party() == 0 {
                z += d * e;
            }
            out.push(z);
        }
        Ok(out)
    }

    /// Beaver multiplication of one pair.
    pub fn mul(&mut self, x: RingElem, y: RingElem) -> PartyResult<RingElem> {
        Ok(self.mul_batch(&[(x, y)])?[0])
    }

    /// Oblivious less-than over a batch of pairs: shared `1` where `x < y`
    /// as signed 64-bit values. Runs the bit-decomposed comparison circuit
    /// of [`crate::circuits`] entirely on shares — 9 synchronous rounds for
    /// the whole batch, independent of its size.
    pub fn lt_batch(&mut self, pairs: &[(RingElem, RingElem)]) -> PartyResult<Vec<RingElem>> {
        self.sess.counts.comparisons += pairs.len() as u64;
        crate::circuits::lt_batch(self, pairs)
    }

    /// Oblivious equality over a batch of pairs: shared `1` where `x == y`.
    /// Runs the equality circuit of [`crate::circuits`] on shares — 8
    /// synchronous rounds for the whole batch, independent of its size.
    pub fn eq_batch(&mut self, pairs: &[(RingElem, RingElem)]) -> PartyResult<Vec<RingElem>> {
        self.sess.counts.equalities += pairs.len() as u64;
        crate::circuits::eq_batch(self, pairs)
    }

    /// Oblivious equality over **several independent batches at once**: all
    /// groups flatten into a single circuit execution, so the whole set
    /// costs the same 8 rounds as one `eq_batch` call, where a per-group
    /// loop would pay 8 rounds per group. Returns one flag vector per group.
    pub fn eq_batch_groups(
        &mut self,
        groups: &[Vec<(RingElem, RingElem)>],
    ) -> PartyResult<Vec<Vec<RingElem>>> {
        self.sess.counts.equalities += groups.iter().map(|g| g.len() as u64).sum::<u64>();
        let flat: Vec<(RingElem, RingElem)> = groups.iter().flatten().copied().collect();
        let bits = crate::circuits::eq_batch(self, &flat)?;
        let mut bits = bits.into_iter();
        Ok(groups
            .iter()
            .map(|g| bits.by_ref().take(g.len()).collect())
            .collect())
    }

    /// Oblivious less-than of one pair.
    pub fn lt(&mut self, x: RingElem, y: RingElem) -> PartyResult<RingElem> {
        Ok(self.lt_batch(&[(x, y)])?[0])
    }

    /// Oblivious equality of one pair.
    pub fn eq(&mut self, x: RingElem, y: RingElem) -> PartyResult<RingElem> {
        Ok(self.eq_batch(&[(x, y)])?[0])
    }

    /// Oblivious multiplexer batch: element-wise `b + c·(a − b)`.
    pub fn mux_batch(
        &mut self,
        selectors: &[(RingElem, RingElem, RingElem)],
    ) -> PartyResult<Vec<RingElem>> {
        let pairs: Vec<(RingElem, RingElem)> =
            selectors.iter().map(|&(c, a, b)| (c, a - b)).collect();
        let scaled = self.mul_batch(&pairs)?;
        Ok(selectors
            .iter()
            .zip(scaled)
            .map(|(&(_, _, b), s)| b + s)
            .collect())
    }

    /// Oblivious multiplexer: `a` if the shared bit `c` is 1, else `b`.
    pub fn mux(&mut self, c: RingElem, a: RingElem, b: RingElem) -> PartyResult<RingElem> {
        Ok(self.mux_batch(&[(c, a, b)])?[0])
    }

    /// Charges the cost of obliviously shuffling `elements` field elements.
    pub fn charge_shuffle(&mut self, elements: u64) {
        self.sess.counts.shuffled_elems += elements;
    }

    /// Adds externally-derived primitive counts (for operators whose real
    /// cost is charged analytically, mirroring the in-process engine).
    pub fn charge(&mut self, extra: &PrimitiveCounts) {
        self.sess.counts.merge(extra);
    }

    /// A random permutation of `0..n` from the common stream — identical on
    /// every party, so a shuffle needs no index exchange.
    pub fn random_permutation(&mut self, n: usize) -> Vec<usize> {
        self.sess.random_permutation(n)
    }
}

impl fmt::Debug for StepCtx<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StepCtx")
            .field("party", &self.party())
            .field("step", &self.step)
            .field("stream", &self.next_stream)
            .finish()
    }
}

/// A secret-shared relation as held by **one** party: public schema, one
/// additive share per cell.
#[derive(Debug, Clone)]
pub struct PartyRelation {
    /// Public schema (column names and types).
    pub schema: Schema,
    /// This party's share of every cell, row-major.
    pub rows: Vec<Vec<RingElem>>,
}

impl PartyRelation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        PartyRelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.schema.len()
    }

    /// Total number of shared field elements.
    pub fn num_elems(&self) -> u64 {
        (self.num_rows() * self.num_cols()) as u64
    }

    /// Index of a named column.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.schema.index_of(name)
    }

    /// This party's shares of one column.
    pub fn column(&self, idx: usize) -> Vec<RingElem> {
        self.rows.iter().map(|r| r[idx]).collect()
    }

    /// Applies a row permutation.
    pub fn permute(&self, perm: &[usize]) -> PartyRelation {
        assert_eq!(perm.len(), self.num_rows());
        PartyRelation {
            schema: self.schema.clone(),
            rows: perm.iter().map(|&i| self.rows[i].clone()).collect(),
        }
    }

    /// Projects onto the named columns (local share re-arrangement).
    pub fn project(&self, columns: &[String]) -> PartyResult<PartyRelation> {
        let idxs: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.col_index(c)
                    .ok_or_else(|| PartyError::Proto(format!("unknown column `{c}`")))
            })
            .collect::<PartyResult<_>>()?;
        let schema = self
            .schema
            .project(columns)
            .map_err(|e| PartyError::Proto(e.to_string()))?;
        let rows = self
            .rows
            .iter()
            .map(|row| idxs.iter().map(|&i| row[i]).collect())
            .collect();
        Ok(PartyRelation { schema, rows })
    }

    /// Concatenates relations with identical arity (local).
    pub fn concat(parts: &[PartyRelation]) -> PartyResult<PartyRelation> {
        let Some(first) = parts.first() else {
            return Err(PartyError::Proto("concat of zero relations".into()));
        };
        let mut rows = Vec::new();
        for p in parts {
            if p.num_cols() != first.num_cols() {
                return Err(PartyError::Proto("concat arity mismatch".into()));
            }
            rows.extend(p.rows.iter().cloned());
        }
        Ok(PartyRelation {
            schema: first.schema.clone(),
            rows,
        })
    }
}

// ---------------------------------------------------------------------------
// Relation-level protocol steps.
// ---------------------------------------------------------------------------

/// Collective sharing of a whole relation owned by `owner`. The owner passes
/// the cleartext relation; everyone passes the (public) schema and row count.
pub fn share_relation(
    proto: &mut StepCtx,
    owner: u32,
    cleartext: Option<&Relation>,
    schema: &Schema,
    num_rows: usize,
) -> PartyResult<PartyRelation> {
    for col in &schema.columns {
        if !col.dtype.mpc_compatible() {
            return Err(PartyError::Proto(format!(
                "column `{}` has type {} which cannot be secret-shared",
                col.name, col.dtype
            )));
        }
    }
    let cols = schema.len();
    let flat: Option<Vec<i64>> = match cleartext {
        Some(rel) => {
            let mut flat = Vec::with_capacity(num_rows * cols);
            for row in &rel.rows {
                for v in row {
                    flat.push(v.as_int().ok_or_else(|| {
                        PartyError::Proto(format!("cannot share non-integer value {v}"))
                    })?);
                }
            }
            Some(flat)
        }
        None => None,
    };
    let shares = proto.input_column(owner, flat.as_deref(), num_rows * cols)?;
    let rows = shares
        .chunks(cols.max(1))
        .take(num_rows)
        .map(<[RingElem]>::to_vec)
        .collect();
    Ok(PartyRelation {
        schema: schema.clone(),
        rows,
    })
}

/// Opens a whole shared relation to every party: one broadcast round.
pub fn open_relation(proto: &mut StepCtx, rel: &PartyRelation) -> PartyResult<Relation> {
    let pending = begin_open_relation(proto, rel)?;
    finish_open_relation(proto.session(), pending)
}

/// A relation open whose broadcast has been **sent** but whose peer shares
/// have not yet been collected. Produced by [`begin_open_relation`]; redeem
/// with [`finish_open_relation`]. Holding one is what lets a party worker
/// pipeline: the next step's rounds can start while this open is in flight.
#[derive(Debug)]
pub struct PendingOpen {
    tag: StreamTag,
    schema: Schema,
    num_rows: usize,
    /// This party's flattened share words (row-major), summed in place as
    /// peers' broadcasts arrive.
    local: Vec<u64>,
}

/// First half of a relation open: broadcasts this party's shares on a fresh
/// stream of `proto`'s step and returns the pending handle without waiting
/// for the peers.
pub fn begin_open_relation(proto: &mut StepCtx, rel: &PartyRelation) -> PartyResult<PendingOpen> {
    proto.session().counts.opened_elems += rel.num_elems();
    let tag = proto.next_tag();
    let local: Vec<u64> = rel.rows.iter().flatten().map(|s| s.0).collect();
    if !local.is_empty() {
        proto
            .session()
            .net()
            .send_all_tagged(tag, MessageKind::Reveal, "open", &local)?;
    }
    Ok(PendingOpen {
        tag,
        schema: rel.schema.clone(),
        num_rows: rel.num_rows(),
        local,
    })
}

/// Second half of a relation open: collects every peer's broadcast for the
/// pending stream (frames that raced ahead of other streams were buffered by
/// the transport), reconstructs the cleartext relation, and records the
/// round.
pub fn finish_open_relation(
    sess: &mut PartySession,
    pending: PendingOpen,
) -> PartyResult<Relation> {
    let PendingOpen {
        tag,
        schema,
        num_rows,
        mut local,
    } = pending;
    let cols = schema.len();
    if !local.is_empty() {
        for peer in 0..sess.parties() {
            if peer == sess.party() {
                continue;
            }
            let env = sess.net().recv_tagged(peer, tag)?;
            if env.payload.len() != local.len() {
                return Err(PartyError::Proto(format!(
                    "P{peer} sent {} words in an open of {}",
                    env.payload.len(),
                    local.len()
                )));
            }
            for (acc, word) in local.iter_mut().zip(&env.payload) {
                *acc = acc.wrapping_add(*word);
            }
        }
        sess.net().record_round();
    }
    let rows = local
        .chunks(cols.max(1))
        .take(num_rows)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&w| Value::Int(RingElem(w).to_i64()))
                .collect()
        })
        .collect();
    // Reconstructed cells are integers; coerce Bool columns like the
    // in-process `SharedRelation::reconstruct` does.
    let mut schema = schema;
    for col in &mut schema.columns {
        if col.dtype == DataType::Bool {
            col.dtype = DataType::Int;
        }
    }
    Ok(Relation { schema, rows })
}

/// Obliviously shuffles the relation: the permutation comes from the common
/// randomness stream (standing in for a resharing-based shuffle), the moved
/// elements are charged like the in-process implementation.
pub fn shuffle(proto: &mut StepCtx, rel: &PartyRelation) -> PartyRelation {
    proto.charge_shuffle(rel.num_elems());
    let perm = proto.random_permutation(rel.num_rows());
    rel.permute(&perm)
}

/// One oblivious compare-exchange across all columns: one comparison round
/// plus one (batched) multiplexer round.
fn compare_exchange(
    proto: &mut StepCtx,
    rows: &mut [Vec<RingElem>],
    i: usize,
    j: usize,
    key: usize,
    ascending: bool,
) -> PartyResult<()> {
    let (a, b) = (rows[i][key], rows[j][key]);
    let swap = if ascending {
        proto.lt(b, a)?
    } else {
        proto.lt(a, b)?
    };
    let cols = rows[i].len();
    let mut selectors = Vec::with_capacity(cols * 2);
    // Indexing (not iterators) because each column reads two distinct rows.
    #[allow(clippy::needless_range_loop)]
    for c in 0..cols {
        let x = rows[i][c];
        let y = rows[j][c];
        selectors.push((swap, y, x)); // new row i
        selectors.push((swap, x, y)); // new row j
    }
    let muxed = proto.mux_batch(&selectors)?;
    // Indexing (not iterators) because each column writes two distinct rows.
    #[allow(clippy::needless_range_loop)]
    for c in 0..cols {
        rows[i][c] = muxed[2 * c];
        rows[j][c] = muxed[2 * c + 1];
    }
    Ok(())
}

/// Generates the Batcher odd-even merge-sort compare-exchange pairs
/// (identical to the in-process network, so both runtimes sort in the same
/// order).
fn batcher_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut p = 1;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut j = k % p;
            while j + k < n {
                for i in 0..k {
                    let a = i + j;
                    let b = i + j + k;
                    if b < n && (a / (p * 2)) == (b / (p * 2)) {
                        pairs.push((a, b));
                    }
                }
                j += k * 2;
            }
            k /= 2;
        }
        p *= 2;
    }
    pairs
}

/// Obliviously sorts by the named column with a Batcher network.
pub fn sort_by(
    proto: &mut StepCtx,
    rel: &PartyRelation,
    column: &str,
    ascending: bool,
) -> PartyResult<PartyRelation> {
    let key = rel
        .col_index(column)
        .ok_or_else(|| PartyError::Proto(format!("unknown sort column `{column}`")))?;
    let mut rows = rel.rows.clone();
    let n = rows.len();
    if n > 1 {
        for (i, j) in batcher_pairs(n) {
            compare_exchange(proto, &mut rows, i, j, key, ascending)?;
        }
    }
    Ok(PartyRelation {
        schema: rel.schema.clone(),
        rows,
    })
}

/// Sorting-based oblivious aggregation over a key-sorted relation, mirroring
/// [`crate::oblivious::aggregate_sorted`]: a linear accumulation scan, then a
/// shuffle-and-reveal of the group-boundary flags.
pub fn aggregate_sorted(
    proto: &mut StepCtx,
    rel: &PartyRelation,
    group_by: &[String],
    func: AggFunc,
    over: Option<&str>,
    out: &str,
) -> PartyResult<PartyRelation> {
    let key_cols: Vec<usize> = group_by
        .iter()
        .map(|c| {
            rel.col_index(c)
                .ok_or_else(|| PartyError::Proto(format!("unknown column `{c}`")))
        })
        .collect::<PartyResult<_>>()?;
    let over_col = match over {
        Some(o) => Some(
            rel.col_index(o)
                .ok_or_else(|| PartyError::Proto(format!("unknown column `{o}`")))?,
        ),
        None => None,
    };
    if func.needs_over() && over_col.is_none() {
        return Err(PartyError::Proto(format!("{func} requires an over column")));
    }
    let schema = aggregate_schema(&rel.schema, group_by, func, over, out)
        .map_err(|e| PartyError::Proto(e.to_string()))?;

    let n = rel.num_rows();
    if n == 0 {
        return Ok(PartyRelation::empty(schema));
    }

    // Scalar aggregation.
    if key_cols.is_empty() {
        let value = match func {
            AggFunc::Count => proto.constant(n as i64),
            AggFunc::Sum => {
                let c = over_col.expect("checked above");
                rel.rows
                    .iter()
                    .fold(proto.constant(0), |acc, row| acc + row[c])
            }
            AggFunc::Min | AggFunc::Max => {
                let c = over_col.expect("checked above");
                let mut acc = rel.rows[0][c];
                for row in rel.rows.iter().skip(1) {
                    let cond = if func == AggFunc::Min {
                        proto.lt(row[c], acc)?
                    } else {
                        proto.lt(acc, row[c])?
                    };
                    acc = proto.mux(cond, row[c], acc)?;
                }
                acc
            }
        };
        return Ok(PartyRelation {
            schema,
            rows: vec![vec![value]],
        });
    }

    // Group-boundary flags: eq[i-1] = 1 iff row i is in the same group as
    // row i-1 (all key columns equal). The per-column equality openings are
    // coalesced into ONE round, then combined with batched multiplications.
    let groups: Vec<Vec<(RingElem, RingElem)>> = key_cols
        .iter()
        .map(|&k| {
            (1..n)
                .map(|i| (rel.rows[i][k], rel.rows[i - 1][k]))
                .collect()
        })
        .collect();
    let mut per_col = proto.eq_batch_groups(&groups)?.into_iter();
    let mut eq: Vec<RingElem> = per_col.next().expect("at least one key column");
    for flags in per_col {
        let products: Vec<(RingElem, RingElem)> = eq.iter().copied().zip(flags).collect();
        eq = proto.mul_batch(&products)?;
    }

    let init = |proto: &StepCtx, row: &[RingElem]| -> RingElem {
        match func {
            AggFunc::Count => proto.constant(1),
            _ => row[over_col.expect("checked above")],
        }
    };
    let mut acc: Vec<RingElem> = Vec::with_capacity(n);
    let mut last_of_group: Vec<RingElem> = Vec::with_capacity(n);
    acc.push(init(proto, &rel.rows[0]));
    for i in 1..n {
        let current = init(proto, &rel.rows[i]);
        let combined = match func {
            AggFunc::Count | AggFunc::Sum => acc[i - 1] + current,
            AggFunc::Min => {
                let cond = proto.lt(acc[i - 1], current)?;
                proto.mux(cond, acc[i - 1], current)?
            }
            AggFunc::Max => {
                let cond = proto.lt(current, acc[i - 1])?;
                proto.mux(cond, acc[i - 1], current)?
            }
        };
        let value = proto.mux(eq[i - 1], combined, current)?;
        acc.push(value);
        let one = proto.constant(1);
        last_of_group.push(one - eq[i - 1]);
    }
    last_of_group.push(proto.constant(1));

    // Candidates = keys + aggregate + flag; shuffle; open the flags (one
    // round); keep the group-final rows.
    let mut candidates = Vec::with_capacity(n);
    for i in 0..n {
        let mut row: Vec<RingElem> = key_cols.iter().map(|&k| rel.rows[i][k]).collect();
        row.push(acc[i]);
        row.push(last_of_group[i]);
        candidates.push(row);
    }
    let mut flagged_schema = schema.clone();
    flagged_schema
        .push(ColumnDef::new("__last_of_group", DataType::Int))
        .map_err(|e| PartyError::Proto(e.to_string()))?;
    let tmp = PartyRelation {
        schema: flagged_schema,
        rows: candidates,
    };
    let shuffled = shuffle(proto, &tmp);
    let flag_col = shuffled.num_cols() - 1;
    let flags = proto.open_column(&shuffled.column(flag_col))?;
    let rows = shuffled
        .rows
        .into_iter()
        .zip(flags)
        .filter(|(_, flag)| *flag == 1)
        .map(|(row, _)| row[..flag_col].to_vec())
        .collect();
    Ok(PartyRelation { schema, rows })
}

/// Standard MPC join: Cartesian-product oblivious equality tests, mirroring
/// [`crate::oblivious::cartesian_join`]. All pair flags are computed in one
/// batched round per key column, then opened in one round.
pub fn cartesian_join(
    proto: &mut StepCtx,
    left: &PartyRelation,
    right: &PartyRelation,
    left_keys: &[String],
    right_keys: &[String],
) -> PartyResult<PartyRelation> {
    let lk: Vec<usize> = left_keys
        .iter()
        .map(|c| {
            left.col_index(c)
                .ok_or_else(|| PartyError::Proto(format!("unknown column `{c}`")))
        })
        .collect::<PartyResult<_>>()?;
    let rk: Vec<usize> = right_keys
        .iter()
        .map(|c| {
            right
                .col_index(c)
                .ok_or_else(|| PartyError::Proto(format!("unknown column `{c}`")))
        })
        .collect::<PartyResult<_>>()?;
    let schema = join_schema(&left.schema, &right.schema, left_keys, right_keys)
        .map_err(|e| PartyError::Proto(e.to_string()))?;
    let right_keep: Vec<usize> = (0..right.num_cols()).filter(|i| !rk.contains(i)).collect();

    let n = left.num_rows();
    let m = right.num_rows();
    if n == 0 || m == 0 {
        return Ok(PartyRelation::empty(schema));
    }

    // match[i*m + j] = 1 iff all key columns of (left i, right j) agree.
    // All key columns' equality openings cross the wire in one round.
    let groups: Vec<Vec<(RingElem, RingElem)>> = lk
        .iter()
        .zip(&rk)
        .map(|(&lc, &rc)| {
            (0..n)
                .flat_map(|i| (0..m).map(move |j| (i, j)))
                .map(|(i, j)| (left.rows[i][lc], right.rows[j][rc]))
                .collect()
        })
        .collect();
    let mut per_col = proto.eq_batch_groups(&groups)?.into_iter();
    let mut matched: Vec<RingElem> = per_col.next().expect("at least one key column");
    for flags in per_col {
        let products: Vec<(RingElem, RingElem)> = matched.iter().copied().zip(flags).collect();
        matched = proto.mul_batch(&products)?;
    }
    // Reveal which pairs matched (the paper's non-padded join reveals the
    // output size and match structure identically).
    let opened = proto.open_column(&matched)?;

    let mut rows = Vec::new();
    for i in 0..n {
        for j in 0..m {
            if opened[i * m + j] == 1 {
                let mut out = left.rows[i].clone();
                for &c in &right_keep {
                    out.push(right.rows[j][c]);
                }
                rows.push(out);
            }
        }
    }
    Ok(PartyRelation { schema, rows })
}

/// Evaluates a (restricted) predicate over every row at once, producing a
/// shared 0/1 flag per row. Each expression node costs one batched round.
fn eval_predicate(
    proto: &mut StepCtx,
    rel: &PartyRelation,
    expr: &Expr,
) -> PartyResult<Vec<RingElem>> {
    let n = rel.num_rows();
    match expr {
        Expr::Bin { op, left, right } => match op {
            BinOp::And | BinOp::Or => {
                let l = eval_predicate(proto, rel, left)?;
                let r = eval_predicate(proto, rel, right)?;
                let pairs: Vec<(RingElem, RingElem)> =
                    l.iter().copied().zip(r.iter().copied()).collect();
                let prod = proto.mul_batch(&pairs)?;
                if *op == BinOp::And {
                    Ok(prod)
                } else {
                    // a OR b = a + b − a·b
                    Ok((0..n).map(|i| l[i] + r[i] - prod[i]).collect())
                }
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let l = eval_operand(proto, rel, left)?;
                let r = eval_operand(proto, rel, right)?;
                let pairs: Vec<(RingElem, RingElem)> = match op {
                    BinOp::Gt | BinOp::Le => r.into_iter().zip(l).collect(),
                    _ => l.into_iter().zip(r).collect(),
                };
                let raw = match op {
                    BinOp::Eq | BinOp::Ne => proto.eq_batch(&pairs)?,
                    _ => proto.lt_batch(&pairs)?,
                };
                match op {
                    BinOp::Ne | BinOp::Le | BinOp::Ge => {
                        let one = proto.constant(1);
                        Ok(raw.into_iter().map(|b| one - b).collect())
                    }
                    _ => Ok(raw),
                }
            }
            _ => Err(PartyError::Unsupported(format!(
                "arithmetic operator {op} in an MPC filter predicate"
            ))),
        },
        Expr::Not(inner) => {
            let b = eval_predicate(proto, rel, inner)?;
            let one = proto.constant(1);
            Ok(b.into_iter().map(|x| one - x).collect())
        }
        other => Err(PartyError::Unsupported(format!(
            "predicate form `{other}` under MPC"
        ))),
    }
}

fn eval_operand(
    proto: &mut StepCtx,
    rel: &PartyRelation,
    expr: &Expr,
) -> PartyResult<Vec<RingElem>> {
    match expr {
        Expr::Col(name) => {
            let idx = rel
                .col_index(name)
                .ok_or_else(|| PartyError::Proto(format!("unknown column `{name}`")))?;
            Ok(rel.column(idx))
        }
        Expr::Const(v) => {
            let i = v
                .as_int()
                .ok_or_else(|| PartyError::Unsupported("non-integer literal under MPC".into()))?;
            Ok(vec![proto.constant(i); rel.num_rows()])
        }
        other => Err(PartyError::Unsupported(format!(
            "operand form `{other}` under MPC"
        ))),
    }
}

/// Oblivious filter, mirroring the in-process one: per-row predicate flags,
/// shuffle, open the flags, keep the selected rows (leaking only the output
/// size).
pub fn filter(
    proto: &mut StepCtx,
    rel: &PartyRelation,
    predicate: &Expr,
) -> PartyResult<PartyRelation> {
    if rel.num_rows() == 0 {
        // Still validate the predicate shape on the public schema.
        eval_predicate(proto, rel, predicate)?;
        return Ok(rel.clone());
    }
    let flags = eval_predicate(proto, rel, predicate)?;
    let mut flagged_schema = rel.schema.clone();
    flagged_schema
        .push(ColumnDef::new("__filter_flag", DataType::Int))
        .map_err(|e| PartyError::Proto(e.to_string()))?;
    let flagged_rows: Vec<Vec<RingElem>> = rel
        .rows
        .iter()
        .zip(&flags)
        .map(|(row, &flag)| {
            let mut r = row.clone();
            r.push(flag);
            r
        })
        .collect();
    let flagged = PartyRelation {
        schema: flagged_schema,
        rows: flagged_rows,
    };
    let shuffled = shuffle(proto, &flagged);
    let flag_col = shuffled.num_cols() - 1;
    let opened = proto.open_column(&shuffled.column(flag_col))?;
    let rows = shuffled
        .rows
        .into_iter()
        .zip(opened)
        .filter(|(_, f)| *f == 1)
        .map(|(row, _)| row[..flag_col].to_vec())
        .collect();
    Ok(PartyRelation {
        schema: rel.schema.clone(),
        rows,
    })
}

/// Column arithmetic: multiplies operand columns/literals into `out`,
/// mirroring the in-process `mpc_multiply` (one batched Beaver round per
/// extra factor).
pub fn multiply_columns(
    proto: &mut StepCtx,
    rel: &PartyRelation,
    out: &str,
    operands: &[Operand],
) -> PartyResult<PartyRelation> {
    let replace = rel.col_index(out);
    let mut schema = rel.schema.clone();
    if replace.is_none() {
        schema
            .push(ColumnDef::new(out, DataType::Int))
            .map_err(|e| PartyError::Proto(e.to_string()))?;
    }
    let n = rel.num_rows();
    let mut acc: Vec<RingElem> = vec![proto.constant(1); n];
    let mut first = true;
    for o in operands {
        match o {
            Operand::Col(c) => {
                let idx = rel
                    .col_index(c)
                    .ok_or_else(|| PartyError::Proto(format!("unknown column `{c}`")))?;
                if first {
                    acc = rel.column(idx);
                    first = false;
                } else {
                    let pairs: Vec<(RingElem, RingElem)> =
                        acc.into_iter().zip(rel.column(idx)).collect();
                    acc = proto.mul_batch(&pairs)?;
                }
            }
            Operand::Lit(v) => {
                let i = v.as_int().ok_or_else(|| {
                    PartyError::Unsupported("non-integer literal under MPC".into())
                })?;
                acc = acc.into_iter().map(|a| proto.mul_public(a, i)).collect();
                first = false;
            }
        }
    }
    let rows = rel
        .rows
        .iter()
        .zip(acc)
        .map(|(row, a)| {
            let mut new_row = row.clone();
            match replace {
                Some(i) => new_row[i] = a,
                None => new_row.push(a),
            }
            new_row
        })
        .collect();
    Ok(PartyRelation { schema, rows })
}

/// Removes duplicate adjacent rows from a key-sorted relation (the core of
/// `distinct`), mirroring the in-process implementation: adjacent all-column
/// equality flags, opened directly.
fn distinct_sorted(proto: &mut StepCtx, rel: &PartyRelation) -> PartyResult<PartyRelation> {
    let n = rel.num_rows();
    if n == 0 {
        return Ok(rel.clone());
    }
    let cols = rel.num_cols();
    // all_eq[i-1] = 1 iff row i equals row i-1 on every column. One coalesced
    // equality round covers every column.
    let groups: Vec<Vec<(RingElem, RingElem)>> = (0..cols)
        .map(|c| {
            (1..n)
                .map(|i| (rel.rows[i][c], rel.rows[i - 1][c]))
                .collect()
        })
        .collect();
    let mut per_col = proto.eq_batch_groups(&groups)?.into_iter();
    let mut all_eq: Vec<RingElem> = per_col.next().expect("at least one column");
    for flags in per_col {
        let products: Vec<(RingElem, RingElem)> = all_eq.iter().copied().zip(flags).collect();
        all_eq = proto.mul_batch(&products)?;
    }
    let one = proto.constant(1);
    let mut keep_flags = Vec::with_capacity(n);
    keep_flags.push(one);
    for e in all_eq {
        keep_flags.push(one - e);
    }
    let opened = proto.open_column(&keep_flags)?;
    let rows = rel
        .rows
        .iter()
        .zip(opened)
        .filter(|(_, f)| *f == 1)
        .map(|(row, _)| row.clone())
        .collect();
    Ok(PartyRelation {
        schema: rel.schema.clone(),
        rows,
    })
}

/// Laud-style oblivious indexing: the index column is opened (standing in
/// for the oblivious-indexing sub-protocol, whose cost is charged) and each
/// party selects its own shares of the addressed rows.
pub fn oblivious_select(
    proto: &mut StepCtx,
    data: &PartyRelation,
    indexes: &PartyRelation,
    index_column: &str,
) -> PartyResult<PartyRelation> {
    let idx_col = indexes
        .col_index(index_column)
        .ok_or_else(|| PartyError::Proto(format!("unknown index column `{index_column}`")))?;
    let n = data.num_rows() as u64;
    let m = indexes.num_rows() as u64;
    let total = (n + m).max(2);
    let log = 64 - total.leading_zeros() as u64;
    proto.charge(&PrimitiveCounts {
        mults: total * log * data.num_cols() as u64,
        ..Default::default()
    });
    if indexes.num_rows() == 0 {
        return Ok(PartyRelation::empty(data.schema.clone()));
    }
    let opened = proto.open_column(&indexes.column(idx_col))?;
    let mut rows = Vec::with_capacity(indexes.num_rows());
    for i in opened {
        let i = usize::try_from(i)
            .map_err(|_| PartyError::Proto("negative oblivious index".to_string()))?;
        let data_row = data
            .rows
            .get(i)
            .ok_or_else(|| PartyError::Proto(format!("oblivious index {i} out of bounds")))?;
        rows.push(data_row.clone());
    }
    Ok(PartyRelation {
        schema: data.schema.clone(),
        rows,
    })
}

/// Executes one relational operator over already-shared party relations,
/// mirroring [`crate::backend::MpcEngine::execute_shared`] operator for
/// operator. `presorted_aggregate` skips the oblivious sort in front of a
/// grouped aggregation (the §5.4 sort-elimination pay-off).
pub fn execute_party_op(
    proto: &mut StepCtx,
    op: &Operator,
    inputs: &[&PartyRelation],
    presorted_aggregate: bool,
) -> PartyResult<PartyRelation> {
    let need = |n: usize| -> PartyResult<()> {
        if inputs.len() == n {
            Ok(())
        } else {
            Err(PartyError::Proto(format!(
                "{} expects {n} inputs, got {}",
                op.name(),
                inputs.len()
            )))
        }
    };
    match op {
        Operator::Project { columns } => {
            need(1)?;
            inputs[0].project(columns)
        }
        Operator::Concat => {
            let parts: Vec<PartyRelation> = inputs.iter().map(|r| (*r).clone()).collect();
            PartyRelation::concat(&parts)
        }
        Operator::Filter { predicate } => {
            need(1)?;
            filter(proto, inputs[0], predicate)
        }
        Operator::Join {
            left_keys,
            right_keys,
            ..
        } => {
            need(2)?;
            cartesian_join(proto, inputs[0], inputs[1], left_keys, right_keys)
        }
        Operator::Aggregate {
            group_by,
            func,
            over,
            out,
        } => {
            need(1)?;
            if group_by.len() > 1 {
                return Err(PartyError::Unsupported(
                    "multi-column group-by under MPC".into(),
                ));
            }
            let sorted = match group_by.first() {
                Some(key) if !presorted_aggregate => sort_by(proto, inputs[0], key, true)?,
                _ => inputs[0].clone(),
            };
            aggregate_sorted(proto, &sorted, group_by, *func, over.as_deref(), out)
        }
        Operator::Multiply { out, operands } => {
            need(1)?;
            multiply_columns(proto, inputs[0], out, operands)
        }
        Operator::SortBy { column, ascending } => {
            need(1)?;
            sort_by(proto, inputs[0], column, *ascending)
        }
        Operator::Merge { column, ascending } => {
            // The party runtime merges by re-sorting the concatenation: the
            // result is identical, only the (already charged) cost profile
            // of a dedicated merge network is foregone.
            let parts: Vec<PartyRelation> = inputs.iter().map(|r| (*r).clone()).collect();
            let cat = PartyRelation::concat(&parts)?;
            sort_by(proto, &cat, column, *ascending)
        }
        Operator::Limit { n } => {
            need(1)?;
            let mut rel = inputs[0].clone();
            rel.rows.truncate(*n);
            Ok(rel)
        }
        Operator::Shuffle => {
            need(1)?;
            Ok(shuffle(proto, inputs[0]))
        }
        Operator::Enumerate { out } => {
            need(1)?;
            let mut schema = inputs[0].schema.clone();
            schema
                .push(ColumnDef::new(out, DataType::Int))
                .map_err(|e| PartyError::Proto(e.to_string()))?;
            let rows = inputs[0]
                .rows
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let mut row = r.clone();
                    row.push(proto.constant(i as i64));
                    row
                })
                .collect();
            Ok(PartyRelation { schema, rows })
        }
        Operator::ObliviousSelect { index_column } => {
            need(2)?;
            oblivious_select(proto, inputs[0], inputs[1], index_column)
        }
        Operator::Distinct { columns } => {
            need(1)?;
            let proj = inputs[0].project(columns)?;
            let key = columns
                .first()
                .ok_or_else(|| PartyError::Proto("distinct needs columns".into()))?;
            let sorted = sort_by(proto, &proj, key, true)?;
            distinct_sorted(proto, &sorted)
        }
        Operator::DistinctCount { column, out } => {
            need(1)?;
            let proj = inputs[0].project(std::slice::from_ref(column))?;
            let sorted = sort_by(proto, &proj, column, true)?;
            let distinct = distinct_sorted(proto, &sorted)?;
            let n = distinct.num_rows() as i64;
            let schema = Schema::new(vec![ColumnDef::new(out, DataType::Int)]);
            Ok(PartyRelation {
                schema,
                rows: vec![vec![proto.constant(n)]],
            })
        }
        Operator::RevealTo { .. }
        | Operator::Open { .. }
        | Operator::CloseTo
        | Operator::Collect { .. } => {
            need(1)?;
            Ok(inputs[0].clone())
        }
        Operator::Divide { .. } => Err(PartyError::Unsupported(
            "division under MPC; Conclave pushes divisions out of the MPC frontier".into(),
        )),
        Operator::Input { .. } => Err(PartyError::Unsupported("input binding".into())),
        Operator::HybridJoin { .. }
        | Operator::PublicJoin { .. }
        | Operator::HybridAggregate { .. } => Err(PartyError::Unsupported(format!(
            "{} is a multi-site protocol orchestrated by the driver",
            op.name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{MpcBackendConfig, MpcEngine};
    use conclave_ir::ops::JoinKind;
    use conclave_net::ChannelTransport;

    /// Runs `f` on every party of a fresh `n`-party channel mesh and returns
    /// the per-party results (asserting none of the threads failed).
    fn run_parties<R, F>(n: u32, seed: u64, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut StepCtx) -> PartyResult<R> + Sync,
    {
        let mesh = ChannelTransport::mesh(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = mesh
                .into_iter()
                .map(|t| {
                    let f = &f;
                    s.spawn(move || {
                        let mut sess = PartySession::new(&t, seed);
                        let mut proto = sess.step(0);
                        f(&mut proto)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("party thread panicked")
                        .expect("party failed")
                })
                .collect()
        })
    }

    fn demo() -> Relation {
        Relation::from_ints(
            &["k", "v"],
            &[vec![3, 30], vec![1, 10], vec![2, 20], vec![1, 5]],
        )
    }

    /// The owner's view of a relation: `Some` on the owning party, `None`
    /// elsewhere (hoisted out of call expressions for borrow-check clarity).
    fn mine<'a>(proto: &StepCtx, owner: u32, rel: &'a Relation) -> Option<&'a Relation> {
        (proto.party() == owner).then_some(rel)
    }

    #[test]
    fn share_open_round_trip_across_three_parties() {
        let rel = demo();
        let opened = run_parties(3, 7, |proto| {
            let data = mine(proto, 1, &rel);
            let shared = share_relation(proto, 1, data, &rel.schema, rel.num_rows())?;
            open_relation(proto, &shared)
        });
        for out in &opened {
            assert_eq!(out.rows, rel.rows);
        }
    }

    #[test]
    fn beaver_multiplication_is_exact_over_the_mesh() {
        let cases = [(3i64, 4i64), (-5, 7), (0, 123), (i64::MAX, 2)];
        let products = run_parties(3, 8, |proto| {
            let owner = 0;
            let xs: Vec<i64> = cases.iter().map(|c| c.0).collect();
            let ys: Vec<i64> = cases.iter().map(|c| c.1).collect();
            let own = proto.party() == owner;
            let sx = proto.input_column(owner, own.then_some(xs.as_slice()), xs.len())?;
            let sy = proto.input_column(owner, own.then_some(ys.as_slice()), ys.len())?;
            let pairs: Vec<(RingElem, RingElem)> = sx.into_iter().zip(sy).collect();
            let prod = proto.mul_batch(&pairs)?;
            proto.open_column(&prod)
        });
        for opened in &products {
            let expected: Vec<i64> = cases.iter().map(|&(x, y)| x.wrapping_mul(y)).collect();
            assert_eq!(opened, &expected);
        }
    }

    #[test]
    fn comparisons_and_mux_match_semantics() {
        let results = run_parties(2, 9, |proto| {
            let owner = 1;
            let vals = [3i64, 5, 5, -2];
            let own = proto.party() == owner;
            let s = proto.input_column(owner, own.then_some(vals.as_slice()), 4)?;
            let lt = proto.lt(s[0], s[1])?; // 3 < 5 → 1
            let ge = proto.lt(s[1], s[0])?; // 5 < 3 → 0
            let eq = proto.eq(s[1], s[2])?; // 5 == 5 → 1
            let ne = proto.eq(s[0], s[3])?; // 3 == −2 → 0
            let picked = proto.mux(lt, s[0], s[1])?; // → 3
            proto.open_column(&[lt, ge, eq, ne, picked])
        });
        for r in &results {
            assert_eq!(r, &vec![1, 0, 1, 0, 3]);
        }
    }

    #[test]
    fn linear_ops_cost_no_messages() {
        let stats = {
            let mesh = ChannelTransport::mesh(2);
            std::thread::scope(|s| {
                let handles: Vec<_> = mesh
                    .into_iter()
                    .map(|t| {
                        s.spawn(move || {
                            let mut sess = PartySession::new(&t, 3);
                            let proto = sess.step(0);
                            let a = proto.constant(10);
                            let b = proto.constant(4);
                            let _ = proto.add(a, b);
                            let _ = proto.sub(a, b);
                            let _ = proto.add_public(a, 5);
                            let _ = proto.mul_public(a, 3);
                            t.stats()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
            })
        };
        for s in &stats {
            assert_eq!(s.total_messages(), 0);
            assert_eq!(s.rounds, 0);
        }
    }

    #[test]
    fn party_sort_and_aggregate_match_the_inprocess_oracle() {
        let rel = demo();
        let op = Operator::Aggregate {
            group_by: vec!["k".into()],
            func: AggFunc::Sum,
            over: Some("v".into()),
            out: "s".into(),
        };
        let mut oracle = MpcEngine::new(MpcBackendConfig::sharemind());
        let (expected, _) = oracle.execute_op(&op, &[&rel]).unwrap();
        let outs = run_parties(3, 11, |proto| {
            let data = mine(proto, 0, &rel);
            let shared = share_relation(proto, 0, data, &rel.schema, rel.num_rows())?;
            let out = execute_party_op(proto, &op, &[&shared], false)?;
            open_relation(proto, &out)
        });
        for out in &outs {
            assert!(
                out.same_rows_unordered(&expected),
                "got\n{out}\nvs\n{expected}"
            );
        }
        // All parties opened the identical relation (same shuffle stream).
        assert_eq!(outs[0].rows, outs[1].rows);
        assert_eq!(outs[1].rows, outs[2].rows);
    }

    #[test]
    fn party_join_filter_multiply_match_the_oracle() {
        let left = Relation::from_ints(&["k", "a"], &[vec![1, 1], vec![2, 2], vec![3, 3]]);
        let right = Relation::from_ints(&["k", "b"], &[vec![2, 20], vec![3, 30], vec![4, 40]]);
        let join = Operator::Join {
            left_keys: vec!["k".into()],
            right_keys: vec!["k".into()],
            kind: JoinKind::Inner,
        };
        let filter_op = Operator::Filter {
            predicate: Expr::col("a")
                .ge(Expr::lit(2))
                .and(Expr::col("k").ne(Expr::lit(3))),
        };
        let mul = Operator::Multiply {
            out: "sq".into(),
            operands: vec![Operand::col("a"), Operand::col("a"), Operand::lit(2)],
        };
        let mut oracle = MpcEngine::new(MpcBackendConfig::sharemind());
        let (expected_join, _) = oracle.execute_op(&join, &[&left, &right]).unwrap();
        let (expected_filter, _) = oracle.execute_op(&filter_op, &[&left]).unwrap();
        let (expected_mul, _) = oracle.execute_op(&mul, &[&left]).unwrap();
        let outs = run_parties(3, 12, |proto| {
            let ldata = mine(proto, 0, &left);
            let sl = share_relation(proto, 0, ldata, &left.schema, left.num_rows())?;
            let rdata = mine(proto, 1, &right);
            let sr = share_relation(proto, 1, rdata, &right.schema, right.num_rows())?;
            let j = execute_party_op(proto, &join, &[&sl, &sr], false)?;
            let f = execute_party_op(proto, &filter_op, &[&sl], false)?;
            let m = execute_party_op(proto, &mul, &[&sl], false)?;
            Ok((
                open_relation(proto, &j)?,
                open_relation(proto, &f)?,
                open_relation(proto, &m)?,
            ))
        });
        for (j, f, m) in &outs {
            assert!(j.same_rows_unordered(&expected_join));
            assert!(f.same_rows_unordered(&expected_filter));
            assert!(m.same_rows_unordered(&expected_mul));
        }
    }

    #[test]
    fn party_distinct_select_enumerate_and_misc_ops() {
        let rel = Relation::from_ints(
            &["k", "v"],
            &[vec![1, 10], vec![2, 20], vec![1, 10], vec![3, 30]],
        );
        let idx = Relation::from_ints(&["i"], &[vec![2], vec![0]]);
        let outs = run_parties(2, 13, |proto| {
            let data = mine(proto, 0, &rel);
            let shared = share_relation(proto, 0, data, &rel.schema, rel.num_rows())?;
            let idata = mine(proto, 1, &idx);
            let sidx = share_relation(proto, 1, idata, &idx.schema, idx.num_rows())?;
            let distinct = execute_party_op(
                proto,
                &Operator::Distinct {
                    columns: vec!["k".into()],
                },
                &[&shared],
                false,
            )?;
            let dcount = execute_party_op(
                proto,
                &Operator::DistinctCount {
                    column: "v".into(),
                    out: "n".into(),
                },
                &[&shared],
                false,
            )?;
            let selected = execute_party_op(
                proto,
                &Operator::ObliviousSelect {
                    index_column: "i".into(),
                },
                &[&shared, &sidx],
                false,
            )?;
            let enumerated = execute_party_op(
                proto,
                &Operator::Enumerate { out: "row".into() },
                &[&shared],
                false,
            )?;
            let limited = execute_party_op(proto, &Operator::Limit { n: 2 }, &[&shared], false)?;
            let projected = execute_party_op(
                proto,
                &Operator::Project {
                    columns: vec!["v".into()],
                },
                &[&shared],
                false,
            )?;
            Ok((
                open_relation(proto, &distinct)?,
                open_relation(proto, &dcount)?,
                open_relation(proto, &selected)?,
                open_relation(proto, &enumerated)?,
                limited.num_rows(),
                projected
                    .schema
                    .names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<String>>(),
            ))
        });
        for (distinct, dcount, selected, enumerated, limited, projected) in &outs {
            assert_eq!(distinct.num_rows(), 3);
            assert_eq!(dcount.rows[0][0], Value::Int(3));
            assert_eq!(selected.rows[0][0], Value::Int(1));
            assert_eq!(selected.rows[1][0], Value::Int(1));
            assert_eq!(enumerated.column_values("row").unwrap().len(), 4);
            assert_eq!(*limited, 2);
            assert_eq!(projected, &vec!["v".to_string()]);
        }
    }

    #[test]
    fn empty_relations_flow_through_the_party_operators() {
        let schema = Schema::ints(&["k", "v"]);
        let empty_rel = Relation::from_ints(&["k", "v"], &[]);
        let outs = run_parties(2, 14, |proto| {
            let data = mine(proto, 0, &empty_rel);
            let shared = share_relation(proto, 0, data, &schema, 0)?;
            let sorted = execute_party_op(
                proto,
                &Operator::SortBy {
                    column: "k".into(),
                    ascending: true,
                },
                &[&shared],
                false,
            )?;
            let agg = execute_party_op(
                proto,
                &Operator::Aggregate {
                    group_by: vec!["k".into()],
                    func: AggFunc::Sum,
                    over: Some("v".into()),
                    out: "s".into(),
                },
                &[&shared],
                false,
            )?;
            let opened = open_relation(proto, &agg)?;
            Ok((sorted.num_rows(), opened))
        });
        for (sorted_rows, agg) in &outs {
            assert_eq!(*sorted_rows, 0);
            assert_eq!(agg.num_rows(), 0);
            assert_eq!(agg.schema.names(), vec!["k", "s"]);
        }
    }

    #[test]
    fn unsupported_operators_are_rejected() {
        let rel = Relation::from_ints(&["a"], &[vec![1]]);
        let outs = run_parties(2, 15, |proto| {
            let data = mine(proto, 0, &rel);
            let shared = share_relation(proto, 0, data, &rel.schema, rel.num_rows())?;
            let divide = execute_party_op(
                proto,
                &Operator::Divide {
                    out: "x".into(),
                    num: Operand::col("a"),
                    den: Operand::lit(2),
                },
                &[&shared],
                false,
            );
            let hybrid = execute_party_op(
                proto,
                &Operator::HybridJoin {
                    left_keys: vec!["a".into()],
                    right_keys: vec!["a".into()],
                    stp: 1,
                },
                &[&shared, &shared],
                false,
            );
            Ok((
                matches!(divide, Err(PartyError::Unsupported(_))),
                matches!(hybrid, Err(PartyError::Unsupported(_))),
            ))
        });
        for (divide_rejected, hybrid_rejected) in &outs {
            assert!(divide_rejected);
            assert!(hybrid_rejected);
        }
    }

    #[test]
    fn transport_stats_show_real_traffic_and_rounds() {
        let rel = demo();
        let mesh = ChannelTransport::mesh(3);
        let stats = std::thread::scope(|s| {
            let handles: Vec<_> = mesh
                .into_iter()
                .map(|t| {
                    let rel = &rel;
                    s.spawn(move || {
                        let mut sess = PartySession::new(&t, 16);
                        let mut proto = sess.step(0);
                        let data = mine(&proto, 0, rel);
                        let shared =
                            share_relation(&mut proto, 0, data, &rel.schema, rel.num_rows())
                                .unwrap();
                        let sorted = sort_by(&mut proto, &shared, "k", true).unwrap();
                        let _ = open_relation(&mut proto, &sorted).unwrap();
                        t.stats()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        let merged = conclave_net::merge_mesh_stats(stats);
        assert!(merged.total_bytes() > 0, "observed bytes must be non-zero");
        assert!(merged.rounds > 0, "observed rounds must be non-zero");
        // Every directed link between the three parties saw traffic.
        for from in 0..3u32 {
            for to in 0..3u32 {
                if from != to {
                    assert!(
                        merged.links.contains_key(&(from, to)),
                        "no traffic on link {from}->{to}"
                    );
                }
            }
        }
    }

    #[test]
    fn error_display_and_sources() {
        let net = PartyError::Net(TransportError::Timeout { from: 2 });
        assert!(net.to_string().contains("P2"));
        assert!(std::error::Error::source(&net).is_some());
        let proto = PartyError::Proto("bad".into());
        assert!(proto.to_string().contains("bad"));
        assert!(std::error::Error::source(&proto).is_none());
        assert!(PartyError::Unsupported("x".into())
            .to_string()
            .contains('x'));
    }
}
