//! Arithmetic in the ring `Z_{2^64}`.
//!
//! Additive secret sharing splits every value into shares that sum to the
//! original value modulo `2^64`. Signed 64-bit integers are embedded via
//! their two's-complement bit pattern, so reconstruction recovers negative
//! values exactly.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// An element of `Z_{2^64}` (wrapping 64-bit arithmetic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct RingElem(pub u64);

impl RingElem {
    /// The additive identity.
    pub const ZERO: RingElem = RingElem(0);
    /// The multiplicative identity.
    pub const ONE: RingElem = RingElem(1);

    /// Embeds a signed integer (two's complement).
    pub fn from_i64(v: i64) -> Self {
        RingElem(v as u64)
    }

    /// Recovers the signed integer this element encodes.
    pub fn to_i64(self) -> i64 {
        self.0 as i64
    }

    /// Wrapping addition.
    pub fn wrapping_add(self, rhs: RingElem) -> RingElem {
        RingElem(self.0.wrapping_add(rhs.0))
    }

    /// Wrapping subtraction.
    pub fn wrapping_sub(self, rhs: RingElem) -> RingElem {
        RingElem(self.0.wrapping_sub(rhs.0))
    }

    /// Wrapping multiplication.
    pub fn wrapping_mul(self, rhs: RingElem) -> RingElem {
        RingElem(self.0.wrapping_mul(rhs.0))
    }
}

impl Add for RingElem {
    type Output = RingElem;
    fn add(self, rhs: RingElem) -> RingElem {
        self.wrapping_add(rhs)
    }
}

impl AddAssign for RingElem {
    fn add_assign(&mut self, rhs: RingElem) {
        *self = *self + rhs;
    }
}

impl Sub for RingElem {
    type Output = RingElem;
    fn sub(self, rhs: RingElem) -> RingElem {
        self.wrapping_sub(rhs)
    }
}

impl Mul for RingElem {
    type Output = RingElem;
    fn mul(self, rhs: RingElem) -> RingElem {
        self.wrapping_mul(rhs)
    }
}

impl Neg for RingElem {
    type Output = RingElem;
    fn neg(self) -> RingElem {
        RingElem(0u64.wrapping_sub(self.0))
    }
}

impl fmt::Display for RingElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_i64())
    }
}

impl From<i64> for RingElem {
    fn from(v: i64) -> Self {
        RingElem::from_i64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn signed_round_trip() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            assert_eq!(RingElem::from_i64(v).to_i64(), v);
        }
    }

    #[test]
    fn ring_identities() {
        let x = RingElem::from_i64(1234);
        assert_eq!(x + RingElem::ZERO, x);
        assert_eq!(x * RingElem::ONE, x);
        assert_eq!(x - x, RingElem::ZERO);
        assert_eq!(x + (-x), RingElem::ZERO);
        assert_eq!((-x).to_i64(), -1234);
    }

    #[test]
    fn wrapping_behaviour() {
        let big = RingElem(u64::MAX);
        assert_eq!(big + RingElem::ONE, RingElem::ZERO);
        let half = RingElem(1u64 << 63);
        assert_eq!(half + half, RingElem::ZERO);
    }

    #[test]
    fn display_shows_signed_value() {
        assert_eq!(RingElem::from_i64(-7).to_string(), "-7");
        assert_eq!(RingElem::from(5i64).to_string(), "5");
    }

    proptest! {
        #[test]
        fn addition_commutes(a in any::<i64>(), b in any::<i64>()) {
            let (x, y) = (RingElem::from_i64(a), RingElem::from_i64(b));
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn add_matches_wrapping_i64(a in any::<i64>(), b in any::<i64>()) {
            let sum = RingElem::from_i64(a) + RingElem::from_i64(b);
            prop_assert_eq!(sum.to_i64(), a.wrapping_add(b));
        }

        #[test]
        fn mul_matches_wrapping_i64(a in any::<i64>(), b in any::<i64>()) {
            let prod = RingElem::from_i64(a) * RingElem::from_i64(b);
            prop_assert_eq!(prod.to_i64(), a.wrapping_mul(b));
        }

        #[test]
        fn add_assign_consistent(a in any::<i64>(), b in any::<i64>()) {
            let mut x = RingElem::from_i64(a);
            x += RingElem::from_i64(b);
            prop_assert_eq!(x, RingElem::from_i64(a) + RingElem::from_i64(b));
        }
    }
}
