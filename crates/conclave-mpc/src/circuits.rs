//! Oblivious comparison circuits over additively-shared `Z_{2^64}` values.
//!
//! The party runtime used to *simulate* obliviousness for `lt`/`eq`: it
//! opened both operands to every party, compared locally, and re-shared the
//! bit. That leaks exactly the column values MPC is supposed to hide — an
//! observer summing the broadcast shares of one opening reconstructs the
//! cleartext. This module replaces that path with real bit-decomposed
//! comparison circuits computed **entirely on shares**; the only values that
//! ever cross the wire are uniformly-masked (`x − r` for a fresh dealer mask
//! `r`, or `x ⊕ a` for a fresh binary Beaver mask `a`), so a wire observer
//! learns nothing about the operands (see `tests/wire_privacy.rs`).
//!
//! # Protocol
//!
//! 1. **Bit decomposition** ([`bit_decompose` internally]): for a shared
//!    `z`, take a dealer mask `r` held in *dual* representation (XOR-shared
//!    bits + additive share), open the uniform value `c = z − r`, and
//!    compute the bits of `z = c + r` with a Kogge-Stone parallel-prefix
//!    adder on the XOR-shared bits of `r` against the public bits of `c`.
//!    Every 64-bit value packs into one machine word per party, so the
//!    adder's six carry levels cost six batched AND rounds *for the whole
//!    batch*, not per value.
//! 2. **Binary AND** ([`and_words` internally]): AND of two XOR-shared
//!    words via a binary Beaver triple word `(a, b, c = a & b)`: open
//!    `d = x ⊕ a`, `e = y ⊕ b`, then `z = c ⊕ (d ∧ b) ⊕ (e ∧ a)` with
//!    party 0 adding `d ∧ e`. XOR is free (local).
//! 3. **Signed less-than** ([`lt_batch`]): with `sa = msb(a)`,
//!    `sb = msb(b)`, `sd = msb(a − b)` (two's-complement sign bits from the
//!    decomposition), `a < b ⟺ (sa ∧ ¬sb) ⊕ (¬(sa ⊕ sb) ∧ sd)`. Same-sign
//!    subtraction cannot wrap, so `sd` is the true comparison there, and the
//!    mixed-sign term handles `i64::MIN`/`i64::MAX` correctly.
//! 4. **Equality** ([`eq_batch`]): `z = x − y` is zero iff the dealer mask
//!    `r` equals `−c` where `c = z − r` was opened; `t = ¬(r ⊕ (−c))` is
//!    local, then an AND-fold of `t`'s 64 bits (`t ∧= t >> s` for
//!    `s = 32,16,8,4,2,1`) leaves the all-bits AND in bit 0. Only that bit
//!    is extracted and converted; the fold's intermediate bits are
//!    secret-dependent and never opened.
//! 5. **Bit-to-arithmetic** ([`bits_to_additive` internally]): a *daBit*
//!    (random bit ρ held both XOR-shared and additively shared) converts
//!    each XOR-shared result bit `t` to an additive sharing: open
//!    `v = t ⊕ ρ` (uniform), then `[t] = v + (1 − 2v)·[ρ]` locally.
//!
//! # Round complexity
//!
//! For a batch of any size: `lt_batch` = 1 masked-open + 6 Kogge-Stone
//! levels + 1 sign-combine AND + 1 bit-to-arithmetic open = **9 rounds**;
//! `eq_batch` = 1 masked-open + 6 AND-folds + 1 bit-to-arithmetic open =
//! **8 rounds**. All per-level ANDs across the batch coalesce into one
//! exchange, preserving the round-coalescing the runtime's callers (sorting
//! network, filter, join, aggregate) rely on.
//!
//! # Where the masks come from
//!
//! The masks and triples come from the session's [`crate::dealer`] source:
//! per-party files or a dedicated dealer link in the real offline/online
//! split, or the seeded in-process substitute (where a party that knows the
//! dealer seed could reconstruct the masks — see `docs/SECURITY.md`). The
//! *online* protocol — what actually crosses the wire — is the real circuit
//! protocol, which is what the wire-privacy test pins, and every arithmetic
//! opening carries its SPDZ MAC share into the session's deferred
//! integrity check.

use crate::ring::RingElem;
use crate::runtime::{PartyResult, StepCtx};
use crate::share::AuthShare;

/// Kogge-Stone carry-prefix shift schedule for 64-bit words.
const KS_SHIFTS: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// AND-fold shift schedule reducing 64 bits to their conjunction in bit 0.
const EQ_FOLDS: [u32; 6] = [32, 16, 8, 4, 2, 1];

/// Batched signed less-than on shares: returns an additive sharing of `1`
/// where `x < y` (as `i64`), `0` elsewhere. 9 rounds for the whole batch.
pub fn lt_batch(
    ctx: &mut StepCtx,
    pairs: &[(AuthShare, AuthShare)],
) -> PartyResult<Vec<AuthShare>> {
    let m = pairs.len();
    if m == 0 {
        return Ok(Vec::new());
    }
    // Decompose a, b and d = a − b in one shot: [a₀..aₘ, b₀..bₘ, d₀..dₘ].
    let mut values = Vec::with_capacity(3 * m);
    values.extend(pairs.iter().map(|&(x, _)| x));
    values.extend(pairs.iter().map(|&(_, y)| y));
    values.extend(pairs.iter().map(|&(x, y)| x - y));
    let bits = bit_decompose(ctx, &values)?;

    // Pack the three sign bits across the batch: bit j of word j/64.
    let words = m.div_ceil(64);
    let mut sa = vec![0u64; words];
    let mut sb = vec![0u64; words];
    let mut sd = vec![0u64; words];
    for j in 0..m {
        sa[j / 64] |= (bits[j] >> 63) << (j % 64);
        sb[j / 64] |= (bits[m + j] >> 63) << (j % 64);
        sd[j / 64] |= (bits[2 * m + j] >> 63) << (j % 64);
    }

    // lt = (sa ∧ ¬sb) ⊕ (¬(sa ⊕ sb) ∧ sd). Complements are public-constant
    // XORs (party 0 flips); both ANDs share one exchange. Padding bits past
    // `m` stay structurally zero: ¬ makes the padding of one operand all-ones
    // but the other side is a shared zero, so the AND result's padding is a
    // shared zero again.
    let party0 = ctx.party() == 0;
    let mut not_sb = sb.clone();
    let mut nxor: Vec<u64> = sa.iter().zip(&sb).map(|(a, b)| a ^ b).collect();
    if party0 {
        for w in &mut not_sb {
            *w = !*w;
        }
        for w in &mut nxor {
            *w = !*w;
        }
    }
    let mut lhs = Vec::with_capacity(2 * words);
    lhs.extend_from_slice(&sa);
    lhs.extend_from_slice(&nxor);
    let mut rhs = Vec::with_capacity(2 * words);
    rhs.extend_from_slice(&not_sb);
    rhs.extend_from_slice(&sd);
    let anded = and_words(ctx, &lhs, &rhs, "lt sign combine")?;
    let lt_bits: Vec<u64> = (0..words).map(|w| anded[w] ^ anded[words + w]).collect();
    bits_to_additive(ctx, &lt_bits, m)
}

/// Batched equality on shares: returns an additive sharing of `1` where
/// `x == y`, `0` elsewhere. 8 rounds for the whole batch.
pub fn eq_batch(
    ctx: &mut StepCtx,
    pairs: &[(AuthShare, AuthShare)],
) -> PartyResult<Vec<AuthShare>> {
    let m = pairs.len();
    if m == 0 {
        return Ok(Vec::new());
    }
    // z = x − y; z == 0 ⟺ r == −c for the opened mask c = z − r.
    let z: Vec<AuthShare> = pairs.iter().map(|&(x, y)| x - y).collect();
    let masks = ctx.take_shared_bits(m)?;
    let masked: Vec<AuthShare> = z
        .iter()
        .zip(&masks)
        .map(|(&zi, &(_, r_add))| zi - r_add)
        .collect();
    let c = ctx.open_masked(&masked, "eq mask open")?;

    // t = ¬(r ⊕ (−c)): all 64 bits of t are 1 iff r == −c. Local.
    let party0 = ctx.party() == 0;
    let mut t: Vec<u64> = masks.iter().map(|&(r_bits, _)| r_bits).collect();
    if party0 {
        for (ti, ci) in t.iter_mut().zip(&c) {
            *ti ^= (RingElem::ZERO - *ci).0 ^ u64::MAX;
        }
    }
    // AND-fold the 64 bits down to bit 0. The fold's upper bits hold
    // secret-dependent partial conjunctions — they are never opened; only
    // bit 0 is extracted (a local public-mask AND) and packed below.
    for &s in &EQ_FOLDS {
        let shifted: Vec<u64> = t.iter().map(|w| w >> s).collect();
        t = and_words(ctx, &t, &shifted, "eq fold")?;
    }
    let words = m.div_ceil(64);
    let mut packed = vec![0u64; words];
    for (j, tw) in t.iter().enumerate() {
        packed[j / 64] |= (tw & 1) << (j % 64);
    }
    bits_to_additive(ctx, &packed, m)
}

/// Opens `c = z − r` for dealer masks `r` (uniform, reveals nothing on the
/// wire) and runs the carry adder to produce one XOR-shared word of the bits
/// of each `z`.
fn bit_decompose(ctx: &mut StepCtx, values: &[AuthShare]) -> PartyResult<Vec<u64>> {
    let masks = ctx.take_shared_bits(values.len())?;
    let masked: Vec<AuthShare> = values
        .iter()
        .zip(&masks)
        .map(|(&z, &(_, r_add))| z - r_add)
        .collect();
    let c = ctx.open_masked(&masked, "bitdec mask open")?;
    let c_words: Vec<u64> = c.iter().map(|e| e.0).collect();
    let r_words: Vec<u64> = masks.iter().map(|&(r_bits, _)| r_bits).collect();
    add_public_bits(ctx, &c_words, &r_words)
}

/// Kogge-Stone addition of a public word `c` to an XOR-shared word `r`,
/// element-wise over the batch: returns XOR-shared words of `c + r`
/// (mod 2^64). Six AND levels; the final level only needs the carry term,
/// not the propagate update.
///
/// The generate/propagate pair stays *exclusive* (`G ∧ P = 0` per bit) at
/// every level, which is what lets the carry merge use ⊕ instead of ∨ on
/// XOR shares.
fn add_public_bits(ctx: &mut StepCtx, c: &[u64], r: &[u64]) -> PartyResult<Vec<u64>> {
    let party0 = ctx.party() == 0;
    // p = r ⊕ c (public XOR, party 0), g = r ∧ c (public mask, local).
    let p0: Vec<u64> = if party0 {
        r.iter().zip(c).map(|(ri, ci)| ri ^ ci).collect()
    } else {
        r.to_vec()
    };
    let g0: Vec<u64> = r.iter().zip(c).map(|(ri, ci)| ri & ci).collect();
    let n = r.len();
    let mut gg = g0;
    let mut pp = p0.clone();
    for (level, &s) in KS_SHIFTS.iter().enumerate() {
        let gs: Vec<u64> = gg.iter().map(|w| w << s).collect();
        if level + 1 == KS_SHIFTS.len() {
            // Last level: the propagate span is never consumed again.
            let t = and_words(ctx, &pp, &gs, "ks carry")?;
            for (g, ti) in gg.iter_mut().zip(t) {
                *g ^= ti;
            }
        } else {
            let ps: Vec<u64> = pp.iter().map(|w| w << s).collect();
            let mut lhs = Vec::with_capacity(2 * n);
            lhs.extend_from_slice(&pp);
            lhs.extend_from_slice(&pp);
            let mut rhs = Vec::with_capacity(2 * n);
            rhs.extend_from_slice(&gs);
            rhs.extend_from_slice(&ps);
            let anded = and_words(ctx, &lhs, &rhs, "ks level")?;
            for (g, ti) in gg.iter_mut().zip(&anded[..n]) {
                *g ^= ti;
            }
            pp = anded[n..].to_vec();
        }
    }
    // sum = p ⊕ (G << 1): the carry into bit i is the prefix generate of
    // bit i−1; bit 0 has no carry-in (structural zero shifted in).
    Ok(p0.iter().zip(&gg).map(|(pi, gi)| pi ^ (gi << 1)).collect())
}

/// Batched AND of XOR-shared words via binary Beaver triples: one masked
/// XOR-opening round for the whole batch.
fn and_words(ctx: &mut StepCtx, x: &[u64], y: &[u64], label: &str) -> PartyResult<Vec<u64>> {
    debug_assert_eq!(x.len(), y.len());
    if x.is_empty() {
        return Ok(Vec::new());
    }
    let triples = ctx.take_bit_triples(x.len())?;
    let mut masked = Vec::with_capacity(2 * x.len());
    for (i, t) in triples.iter().enumerate() {
        masked.push(x[i] ^ t.0);
        masked.push(y[i] ^ t.1);
    }
    let opened = ctx.open_xor_words(&masked, label)?;
    ctx.tally_bit_ands(64 * x.len() as u64);
    let party0 = ctx.party() == 0;
    Ok(triples
        .iter()
        .enumerate()
        .map(|(i, &(a, b, cw))| {
            let d = opened[2 * i];
            let e = opened[2 * i + 1];
            let mut zw = cw ^ (d & b) ^ (e & a);
            if party0 {
                zw ^= d & e;
            }
            zw
        })
        .collect())
}

/// Converts packed XOR-shared bits (the low `nbits` across `words`) into
/// additive sharings of 0/1 using daBits: one masked XOR-opening round.
fn bits_to_additive(ctx: &mut StepCtx, words: &[u64], nbits: usize) -> PartyResult<Vec<AuthShare>> {
    let dabits = ctx.take_dabits(words.len())?;
    let masked: Vec<u64> = words
        .iter()
        .zip(&dabits)
        .map(|(w, (rho_bits, _))| w ^ rho_bits)
        .collect();
    let v = ctx.open_xor_words(&masked, "bit2a open")?;
    let mut out = Vec::with_capacity(nbits);
    for k in 0..nbits {
        let w = k / 64;
        let bit = (v[w] >> (k % 64)) & 1;
        let rho = dabits[w].1[k % 64];
        // [t] = v + (1 − 2v)·[ρ]: v = 0 keeps ρ, v = 1 takes 1 − ρ (a
        // public-constant subtraction, so the MAC adjusts by α_i·1).
        out.push(if bit == 1 {
            ctx.constant_elem(RingElem::ONE) - rho
        } else {
            rho
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::PartySession;
    use conclave_net::ChannelTransport;

    fn run_parties<R, F>(n: u32, seed: u64, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut StepCtx) -> PartyResult<R> + Sync,
    {
        let mesh = ChannelTransport::mesh(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = mesh
                .into_iter()
                .map(|t| {
                    let f = &f;
                    s.spawn(move || {
                        let mut sess = PartySession::new(&t, seed);
                        let mut proto = sess.step(0);
                        f(&mut proto)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("party thread panicked")
                        .expect("party failed")
                })
                .collect()
        })
    }

    /// The boundary matrix naive unsigned bit-decomposition gets wrong.
    const EDGE: [i64; 8] = [i64::MIN, i64::MIN + 1, -2, -1, 0, 1, 2, i64::MAX];

    #[test]
    fn circuit_lt_matches_signed_semantics_on_boundaries() {
        let mut pairs_clear = Vec::new();
        for &a in &EDGE {
            for &b in &EDGE {
                pairs_clear.push((a, b));
            }
        }
        let outs = run_parties(3, 41, |proto| {
            let owner = 0;
            let xs: Vec<i64> = pairs_clear.iter().map(|p| p.0).collect();
            let ys: Vec<i64> = pairs_clear.iter().map(|p| p.1).collect();
            let own = proto.party() == owner;
            let sx = proto.input_column(owner, own.then_some(xs.as_slice()), xs.len())?;
            let sy = proto.input_column(owner, own.then_some(ys.as_slice()), ys.len())?;
            let pairs: Vec<(AuthShare, AuthShare)> = sx.into_iter().zip(sy).collect();
            let bits = proto.lt_batch(&pairs)?;
            proto.open_column(&bits)
        });
        let expected: Vec<i64> = pairs_clear.iter().map(|&(a, b)| i64::from(a < b)).collect();
        for out in &outs {
            assert_eq!(out, &expected);
        }
    }

    #[test]
    fn circuit_eq_matches_on_boundaries() {
        let mut pairs_clear = Vec::new();
        for &a in &EDGE {
            for &b in &EDGE {
                pairs_clear.push((a, b));
            }
        }
        let outs = run_parties(2, 42, |proto| {
            let owner = 1;
            let xs: Vec<i64> = pairs_clear.iter().map(|p| p.0).collect();
            let ys: Vec<i64> = pairs_clear.iter().map(|p| p.1).collect();
            let own = proto.party() == owner;
            let sx = proto.input_column(owner, own.then_some(xs.as_slice()), xs.len())?;
            let sy = proto.input_column(owner, own.then_some(ys.as_slice()), ys.len())?;
            let pairs: Vec<(AuthShare, AuthShare)> = sx.into_iter().zip(sy).collect();
            let bits = proto.eq_batch(&pairs)?;
            proto.open_column(&bits)
        });
        let expected: Vec<i64> = pairs_clear
            .iter()
            .map(|&(a, b)| i64::from(a == b))
            .collect();
        for out in &outs {
            assert_eq!(out, &expected);
        }
    }

    #[test]
    fn batches_larger_than_one_word_pack_correctly() {
        // 150 pairs spans three 64-bit packing words, exercising the
        // bit-extraction paths on non-multiple-of-64 batch sizes.
        let pairs_clear: Vec<(i64, i64)> = (0..150)
            .map(|i| (i64::from(i % 13) - 6, i64::from(i % 7) - 3))
            .collect();
        let outs = run_parties(3, 43, |proto| {
            let owner = 2;
            let xs: Vec<i64> = pairs_clear.iter().map(|p| p.0).collect();
            let ys: Vec<i64> = pairs_clear.iter().map(|p| p.1).collect();
            let own = proto.party() == owner;
            let sx = proto.input_column(owner, own.then_some(xs.as_slice()), xs.len())?;
            let sy = proto.input_column(owner, own.then_some(ys.as_slice()), ys.len())?;
            let pairs: Vec<(AuthShare, AuthShare)> = sx.into_iter().zip(sy).collect();
            let lt = proto.lt_batch(&pairs)?;
            let eq = proto.eq_batch(&pairs)?;
            Ok((proto.open_column(&lt)?, proto.open_column(&eq)?))
        });
        let want_lt: Vec<i64> = pairs_clear.iter().map(|&(a, b)| i64::from(a < b)).collect();
        let want_eq: Vec<i64> = pairs_clear
            .iter()
            .map(|&(a, b)| i64::from(a == b))
            .collect();
        for (lt, eq) in &outs {
            assert_eq!(lt, &want_lt);
            assert_eq!(eq, &want_eq);
        }
    }

    #[test]
    fn circuit_rounds_are_batch_size_independent() {
        for batch in [1usize, 5, 100] {
            let counts = run_parties(2, 44, |proto| {
                let owner = 0;
                let xs: Vec<i64> = (0..batch as i64).collect();
                let ys: Vec<i64> = (0..batch as i64).rev().collect();
                let own = proto.party() == owner;
                let sx = proto.input_column(owner, own.then_some(xs.as_slice()), xs.len())?;
                let sy = proto.input_column(owner, own.then_some(ys.as_slice()), ys.len())?;
                let pairs: Vec<(AuthShare, AuthShare)> = sx.into_iter().zip(sy).collect();
                let before = proto.counts();
                proto.lt_batch(&pairs)?;
                let lt_rounds = proto.counts().since(&before).circuit_rounds;
                let before = proto.counts();
                proto.eq_batch(&pairs)?;
                let eq_rounds = proto.counts().since(&before).circuit_rounds;
                Ok((lt_rounds, eq_rounds))
            });
            for &(lt_rounds, eq_rounds) in &counts {
                assert_eq!(lt_rounds, 9, "lt rounds for batch {batch}");
                assert_eq!(eq_rounds, 8, "eq rounds for batch {batch}");
            }
        }
    }

    #[test]
    fn bit_and_tallies_follow_the_gate_count() {
        let counts = run_parties(2, 45, |proto| {
            let owner = 0;
            let xs = [7i64, -9];
            let own = proto.party() == owner;
            let sx = proto.input_column(owner, own.then_some(xs.as_slice()), 2)?;
            let before = proto.counts();
            proto.lt_batch(&[(sx[0], sx[1])])?;
            Ok(proto.counts().since(&before))
        });
        for c in &counts {
            assert_eq!(c.comparisons, 1);
            // 3 decomposed values × (5 levels × 2 + 1 level × 1) AND-words
            // × 64 bits, plus 2 sign-combine AND-words.
            assert_eq!(c.bit_ands, (3 * 11 + 2) * 64);
            assert_eq!(c.circuit_rounds, 9);
        }
    }
}
