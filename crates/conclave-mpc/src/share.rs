//! Additive secret shares, plain and SPDZ-authenticated.
//!
//! A value `x` is split into `n` random shares that sum to `x` in
//! `Z_{2^64}`. Each computing party holds one share; no strict subset of the
//! parties learns anything about `x`. Linear operations (addition,
//! subtraction, multiplication by public constants) are local; products of
//! two shared values require a Beaver triple and one communication round
//! (see [`crate::protocol`]).
//!
//! [`Shares`] is the *dealer-side* view: all `n` shares of one value, used by
//! the in-process oracle. [`AuthShare`] is the *party-side* view used by the
//! distributed runtime: one party's share of the value paired with its share
//! of the value's SPDZ MAC `α·x` under the additively-shared global key `α`.

use crate::ring::RingElem;
use rand::Rng;

/// The shares of a single secret value, one per computing party.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shares {
    /// `shares[i]` is party `i`'s additive share.
    pub shares: Vec<RingElem>,
}

impl Shares {
    /// Splits `value` into `n` additive shares using `rng` for the masks.
    pub fn share<R: Rng>(value: RingElem, n: usize, rng: &mut R) -> Self {
        assert!(n >= 2, "need at least two parties to secret-share");
        let mut shares = Vec::with_capacity(n);
        let mut acc = RingElem::ZERO;
        for _ in 0..n - 1 {
            let r = RingElem(rng.gen::<u64>());
            shares.push(r);
            acc += r;
        }
        shares.push(value - acc);
        Shares { shares }
    }

    /// A trivial (public) sharing of a constant: the first party holds the
    /// value, everyone else holds zero.
    pub fn constant(value: RingElem, n: usize) -> Self {
        let mut shares = vec![RingElem::ZERO; n];
        shares[0] = value;
        Shares { shares }
    }

    /// Number of parties.
    pub fn num_parties(&self) -> usize {
        self.shares.len()
    }

    /// Reconstructs the secret by summing all shares.
    pub fn reconstruct(&self) -> RingElem {
        self.shares.iter().fold(RingElem::ZERO, |acc, s| acc + *s)
    }

    /// Local addition of two sharings (no communication).
    pub fn add(&self, other: &Shares) -> Shares {
        assert_eq!(self.num_parties(), other.num_parties());
        Shares {
            shares: self
                .shares
                .iter()
                .zip(&other.shares)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }

    /// Local subtraction of two sharings (no communication).
    pub fn sub(&self, other: &Shares) -> Shares {
        assert_eq!(self.num_parties(), other.num_parties());
        Shares {
            shares: self
                .shares
                .iter()
                .zip(&other.shares)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }

    /// Local addition of a public constant (added to the first share only).
    pub fn add_public(&self, c: RingElem) -> Shares {
        let mut shares = self.shares.clone();
        shares[0] += c;
        Shares { shares }
    }

    /// Local multiplication by a public constant (applied to every share).
    pub fn mul_public(&self, c: RingElem) -> Shares {
        Shares {
            shares: self.shares.iter().map(|s| *s * c).collect(),
        }
    }

    /// Bytes needed to transmit one share of this value (u64 per party).
    pub fn share_bytes() -> u64 {
        8
    }
}

/// One party's SPDZ-style authenticated share of a secret value: the additive
/// value share `v` together with an additive share `m` of the value's MAC
/// `α·x`, where `α` is a global key that is itself additively shared (party
/// `i` holds `α_i`, `Σ α_i = α`). The invariant across all parties is
/// `Σ m_i = α · (Σ v_i)`.
///
/// Linear operations are componentwise and local. Operations that involve a
/// *public* constant `c` are **not** symmetric between the components — the
/// value adjustment lands on one designated party while every party adjusts
/// its MAC by `α_i·c` — so they live on the session (which knows the party
/// index and `α_i`), not here.
///
/// The unauthenticated runtime mode reuses this type with `m = 0` throughout,
/// so one cell representation serves both modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuthShare {
    /// This party's additive share of the value.
    pub v: RingElem,
    /// This party's additive share of the MAC `α·x`.
    pub m: RingElem,
}

impl AuthShare {
    /// The all-zero share (a valid sharing of zero under any key).
    pub const ZERO: AuthShare = AuthShare {
        v: RingElem::ZERO,
        m: RingElem::ZERO,
    };

    /// Pairs a value share with its MAC share.
    pub fn new(v: RingElem, m: RingElem) -> Self {
        AuthShare { v, m }
    }

    /// Local multiplication by a public constant (scales both components:
    /// `α·(c·x) = c·(α·x)`).
    pub fn mul_public(self, c: RingElem) -> Self {
        AuthShare {
            v: self.v * c,
            m: self.m * c,
        }
    }
}

impl std::ops::Add for AuthShare {
    type Output = AuthShare;
    fn add(self, rhs: AuthShare) -> AuthShare {
        AuthShare {
            v: self.v + rhs.v,
            m: self.m + rhs.m,
        }
    }
}

impl std::ops::Sub for AuthShare {
    type Output = AuthShare;
    fn sub(self, rhs: AuthShare) -> AuthShare {
        AuthShare {
            v: self.v - rhs.v,
            m: self.m - rhs.m,
        }
    }
}

impl std::ops::AddAssign for AuthShare {
    fn add_assign(&mut self, rhs: AuthShare) {
        *self = *self + rhs;
    }
}

impl std::ops::SubAssign for AuthShare {
    fn sub_assign(&mut self, rhs: AuthShare) {
        *self = *self - rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn share_and_reconstruct() {
        let mut r = rng();
        for v in [0i64, 1, -1, 123456789, i64::MIN, i64::MAX] {
            let s = Shares::share(RingElem::from_i64(v), 3, &mut r);
            assert_eq!(s.num_parties(), 3);
            assert_eq!(s.reconstruct().to_i64(), v);
        }
    }

    #[test]
    #[should_panic(expected = "at least two parties")]
    fn sharing_requires_two_parties() {
        let mut r = rng();
        let _ = Shares::share(RingElem::ONE, 1, &mut r);
    }

    #[test]
    fn shares_are_not_the_value() {
        // With overwhelming probability no single share equals the secret.
        let mut r = rng();
        let v = RingElem::from_i64(42);
        let s = Shares::share(v, 3, &mut r);
        let equal_count = s.shares.iter().filter(|x| **x == v).count();
        assert!(equal_count < 3, "shares should look random");
    }

    #[test]
    fn linear_operations() {
        let mut r = rng();
        let a = Shares::share(RingElem::from_i64(10), 3, &mut r);
        let b = Shares::share(RingElem::from_i64(-4), 3, &mut r);
        assert_eq!(a.add(&b).reconstruct().to_i64(), 6);
        assert_eq!(a.sub(&b).reconstruct().to_i64(), 14);
        assert_eq!(
            a.add_public(RingElem::from_i64(5)).reconstruct().to_i64(),
            15
        );
        assert_eq!(
            a.mul_public(RingElem::from_i64(3)).reconstruct().to_i64(),
            30
        );
    }

    #[test]
    fn constant_sharing() {
        let c = Shares::constant(RingElem::from_i64(9), 4);
        assert_eq!(c.reconstruct().to_i64(), 9);
        assert_eq!(c.shares[1], RingElem::ZERO);
        assert_eq!(Shares::share_bytes(), 8);
    }

    #[test]
    fn auth_share_linear_ops_preserve_the_mac_invariant() {
        // Two parties, key α = α₀ + α₁. Hand-build sharings of 10 and -4 and
        // check the invariant Σm = α·Σv through add/sub/mul_public.
        let alpha = RingElem::from_i64(17);
        let mk = |v0: i64, v1: i64| {
            let x = RingElem::from_i64(v0) + RingElem::from_i64(v1);
            let m0 = RingElem::from_i64(3);
            let m1 = alpha * x - m0;
            [
                AuthShare::new(RingElem::from_i64(v0), m0),
                AuthShare::new(RingElem::from_i64(v1), m1),
            ]
        };
        let a = mk(7, 3);
        let b = mk(-9, 5);
        let check = |s: [AuthShare; 2], expect: i64| {
            let v = s[0].v + s[1].v;
            let m = s[0].m + s[1].m;
            assert_eq!(v.to_i64(), expect);
            assert_eq!(m, alpha * v, "MAC invariant broken");
        };
        check([a[0] + b[0], a[1] + b[1]], 6);
        check([a[0] - b[0], a[1] - b[1]], 14);
        let c = RingElem::from_i64(-3);
        check([a[0].mul_public(c), a[1].mul_public(c)], -30);
        let mut acc = a[0];
        acc += b[0];
        acc -= b[0];
        assert_eq!(acc, a[0]);
        assert_eq!(AuthShare::ZERO.v, RingElem::ZERO);
    }

    proptest! {
        #[test]
        fn reconstruction_is_exact(v in any::<i64>(), n in 2usize..6) {
            let mut r = rng();
            let s = Shares::share(RingElem::from_i64(v), n, &mut r);
            prop_assert_eq!(s.reconstruct().to_i64(), v);
        }

        #[test]
        fn addition_homomorphism(a in any::<i64>(), b in any::<i64>()) {
            let mut r = rng();
            let sa = Shares::share(RingElem::from_i64(a), 3, &mut r);
            let sb = Shares::share(RingElem::from_i64(b), 3, &mut r);
            prop_assert_eq!(sa.add(&sb).reconstruct().to_i64(), a.wrapping_add(b));
        }

        #[test]
        fn public_mul_homomorphism(a in any::<i64>(), c in -1000i64..1000) {
            let mut r = rng();
            let sa = Shares::share(RingElem::from_i64(a), 3, &mut r);
            prop_assert_eq!(
                sa.mul_public(RingElem::from_i64(c)).reconstruct().to_i64(),
                a.wrapping_mul(c)
            );
        }
    }
}
