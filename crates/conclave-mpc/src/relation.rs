//! Secret-shared relations.
//!
//! A [`SharedRelation`] is the MPC-resident counterpart of
//! [`conclave_engine::Relation`]: the schema stays public (as in the paper,
//! relation schemas and sizes are not hidden) while every cell is an
//! additively-shared 64-bit integer.

use crate::protocol::Protocol;
use crate::share::Shares;
use conclave_engine::{ColumnarRelation, Relation, Table};
use conclave_ir::schema::Schema;
use conclave_ir::types::{DataType, Value};

/// A relation whose cells are secret-shared.
#[derive(Debug, Clone)]
pub struct SharedRelation {
    /// Public schema (column names and types).
    pub schema: Schema,
    /// Secret-shared rows.
    pub rows: Vec<Vec<Shares>>,
}

impl SharedRelation {
    /// Secret-shares a cleartext relation into the MPC. Non-integer cells
    /// are rejected because the arithmetic backends operate on `Z_{2^64}`.
    pub fn from_relation(rel: &Relation, proto: &mut Protocol) -> Result<Self, String> {
        for col in &rel.schema.columns {
            if !col.dtype.mpc_compatible() {
                return Err(format!(
                    "column `{}` has type {} which cannot be secret-shared",
                    col.name, col.dtype
                ));
            }
        }
        let mut rows = Vec::with_capacity(rel.num_rows());
        for row in &rel.rows {
            let mut out = Vec::with_capacity(row.len());
            for v in row {
                let int = v
                    .as_int()
                    .ok_or_else(|| format!("cannot share non-integer value {v}"))?;
                out.push(proto.share_value(int));
            }
            rows.push(out);
        }
        Ok(SharedRelation {
            schema: rel.schema.clone(),
            rows,
        })
    }

    /// Secret-shares a columnar relation into the MPC, one whole column at a
    /// time: each column is extracted as a contiguous `i64` vector and handed
    /// to [`Protocol::share_column`] in a single bulk call, instead of
    /// walking boxed row values cell by cell.
    pub fn from_columnar(rel: &ColumnarRelation, proto: &mut Protocol) -> Result<Self, String> {
        for col in &rel.schema.columns {
            if !col.dtype.mpc_compatible() {
                return Err(format!(
                    "column `{}` has type {} which cannot be secret-shared",
                    col.name, col.dtype
                ));
            }
        }
        let n = rel.num_rows();
        let mut shared_columns: Vec<Vec<Shares>> = Vec::with_capacity(rel.num_cols());
        for (c, col) in rel.columns().iter().enumerate() {
            // Fast path: a null-free integer column shares its slice directly,
            // with no intermediate copy.
            let shared = if let Some(slice) = col.as_ints() {
                proto.share_column(slice)
            } else {
                let ints: Vec<i64> = (0..n)
                    .map(|i| {
                        let v = rel.value(i, c);
                        v.as_int()
                            .ok_or_else(|| format!("cannot share non-integer value {v}"))
                    })
                    .collect::<Result<_, _>>()?;
                proto.share_column(&ints)
            };
            shared_columns.push(shared);
        }
        // Transpose into the row-major share layout the oblivious operators
        // consume.
        let rows = (0..n)
            .map(|i| shared_columns.iter().map(|col| col[i].clone()).collect())
            .collect();
        Ok(SharedRelation {
            schema: rel.schema.clone(),
            rows,
        })
    }

    /// Secret-shares a [`Table`] into the MPC, picking the column-at-a-time
    /// sharing path whenever the table's columnar representation is already
    /// materialized (no conversion is ever forced: a row-only table shares
    /// row by row).
    pub fn from_table(table: &Table, proto: &mut Protocol) -> Result<Self, String> {
        if table.has_columns() {
            SharedRelation::from_columnar(table.as_columns(), proto)
        } else {
            SharedRelation::from_relation(table.as_rows(), proto)
        }
    }

    /// Creates an empty shared relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        SharedRelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.schema.len()
    }

    /// Total number of shared field elements (rows × columns).
    pub fn num_elems(&self) -> u64 {
        (self.num_rows() * self.num_cols()) as u64
    }

    /// Index of a named column.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.schema.index_of(name)
    }

    /// Opens the whole relation to cleartext (an `open` per cell is charged).
    pub fn reconstruct(&self, proto: &mut Protocol) -> Relation {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|s| {
                        let v = proto.open(s);
                        Value::Int(v)
                    })
                    .collect()
            })
            .collect();
        // Reconstructed cells are integers; coerce the schema accordingly so
        // downstream cleartext steps treat them consistently.
        let mut schema = self.schema.clone();
        for col in &mut schema.columns {
            if col.dtype == DataType::Bool {
                col.dtype = DataType::Int;
            }
        }
        Relation { schema, rows }
    }

    /// Projects onto the named columns (free: shares are just re-arranged).
    pub fn project(&self, columns: &[String]) -> Result<SharedRelation, String> {
        let idxs: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.col_index(c)
                    .ok_or_else(|| format!("unknown column `{c}`"))
            })
            .collect::<Result<_, _>>()?;
        let schema = self.schema.project(columns).map_err(|e| e.to_string())?;
        let rows = self
            .rows
            .iter()
            .map(|row| idxs.iter().map(|&i| row[i].clone()).collect())
            .collect();
        Ok(SharedRelation { schema, rows })
    }

    /// Concatenates shared relations with identical arity (free).
    pub fn concat(parts: &[SharedRelation]) -> Result<SharedRelation, String> {
        let Some(first) = parts.first() else {
            return Err("concat of zero shared relations".into());
        };
        let mut rows = Vec::new();
        for p in parts {
            if p.num_cols() != first.num_cols() {
                return Err("concat arity mismatch".into());
            }
            rows.extend(p.rows.iter().cloned());
        }
        Ok(SharedRelation {
            schema: first.schema.clone(),
            rows,
        })
    }

    /// Applies a row permutation (used by shuffles; the permutation itself is
    /// known only to the protocol simulator).
    pub fn permute(&self, perm: &[usize]) -> SharedRelation {
        assert_eq!(perm.len(), self.num_rows());
        let rows = perm.iter().map(|&i| self.rows[i].clone()).collect();
        SharedRelation {
            schema: self.schema.clone(),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_ir::schema::ColumnDef;

    fn demo() -> Relation {
        Relation::from_ints(&["k", "v"], &[vec![1, 10], vec![2, 20], vec![3, 30]])
    }

    #[test]
    fn share_and_reconstruct_round_trip() {
        let mut p = Protocol::new(3, 1);
        let rel = demo();
        let shared = SharedRelation::from_relation(&rel, &mut p).unwrap();
        assert_eq!(shared.num_rows(), 3);
        assert_eq!(shared.num_cols(), 2);
        assert_eq!(shared.num_elems(), 6);
        let back = shared.reconstruct(&mut p);
        assert_eq!(back.rows, rel.rows);
        assert_eq!(p.counts().input_elems, 6);
        assert_eq!(p.counts().opened_elems, 6);
    }

    #[test]
    fn from_columnar_shares_whole_columns_and_round_trips() {
        let mut p = Protocol::new(3, 1);
        let rel = demo();
        let columnar = ColumnarRelation::from_rows(&rel);
        let shared = SharedRelation::from_columnar(&columnar, &mut p).unwrap();
        assert_eq!(shared.num_rows(), 3);
        assert_eq!(shared.num_cols(), 2);
        assert_eq!(p.counts().input_elems, 6);
        let back = shared.reconstruct(&mut p);
        assert_eq!(back.rows, rel.rows);
        // Row-wise and column-wise sharing cost the same number of inputs.
        let mut p2 = Protocol::new(3, 1);
        SharedRelation::from_relation(&rel, &mut p2).unwrap();
        assert_eq!(p.counts().input_elems, p2.counts().input_elems);
    }

    #[test]
    fn from_table_picks_the_materialized_representation() {
        let rel = demo();
        // Row-only table: shares row by row, forcing no conversion.
        let mut p = Protocol::new(3, 1);
        let rows_table = Table::from_rows(rel.clone());
        let shared = SharedRelation::from_table(&rows_table, &mut p).unwrap();
        assert_eq!(rows_table.conversion_counts().total(), 0);
        assert_eq!(shared.reconstruct(&mut p).rows, rel.rows);
        // Column-backed table: shares whole columns.
        let mut p2 = Protocol::new(3, 1);
        let cols_table = Table::from_columns(ColumnarRelation::from_rows(&rel));
        let shared2 = SharedRelation::from_table(&cols_table, &mut p2).unwrap();
        assert_eq!(cols_table.conversion_counts().total(), 0);
        assert_eq!(shared2.reconstruct(&mut p2).rows, rel.rows);
        assert_eq!(p.counts().input_elems, p2.counts().input_elems);
    }

    #[test]
    fn from_columnar_rejects_unshareable_data() {
        let mut p = Protocol::new(3, 1);
        let schema = Schema::new(vec![ColumnDef::new("s", DataType::Str)]);
        let rel = Relation::new(schema, vec![vec![Value::Str("x".into())]]).unwrap();
        assert!(SharedRelation::from_columnar(&ColumnarRelation::from_rows(&rel), &mut p).is_err());
        // Null cells cannot be shared either.
        let ints = Schema::ints(&["a"]);
        let nulled = Relation::new(ints, vec![vec![Value::Null]]).unwrap();
        assert!(
            SharedRelation::from_columnar(&ColumnarRelation::from_rows(&nulled), &mut p).is_err()
        );
    }

    #[test]
    fn rejects_non_integer_columns() {
        let mut p = Protocol::new(3, 1);
        let schema = Schema::new(vec![ColumnDef::new("s", DataType::Str)]);
        let rel = Relation::new(schema, vec![vec![Value::Str("x".into())]]).unwrap();
        assert!(SharedRelation::from_relation(&rel, &mut p).is_err());
        let schema2 = Schema::new(vec![ColumnDef::new("f", DataType::Float)]);
        let rel2 = Relation::new(schema2, vec![vec![Value::Float(1.5)]]).unwrap();
        assert!(SharedRelation::from_relation(&rel2, &mut p).is_err());
    }

    #[test]
    fn project_and_concat() {
        let mut p = Protocol::new(3, 2);
        let rel = demo();
        let shared = SharedRelation::from_relation(&rel, &mut p).unwrap();
        let proj = shared.project(&["v".to_string()]).unwrap();
        assert_eq!(proj.num_cols(), 1);
        assert_eq!(
            proj.reconstruct(&mut p).column_values("v").unwrap(),
            vec![Value::Int(10), Value::Int(20), Value::Int(30)]
        );
        assert!(shared.project(&["zzz".to_string()]).is_err());

        let cat = SharedRelation::concat(&[shared.clone(), shared.clone()]).unwrap();
        assert_eq!(cat.num_rows(), 6);
        assert!(SharedRelation::concat(&[]).is_err());
        let other = SharedRelation::empty(Schema::ints(&["a"]));
        assert!(SharedRelation::concat(&[shared, other]).is_err());
    }

    #[test]
    fn permutation_reorders_rows() {
        let mut p = Protocol::new(3, 3);
        let rel = demo();
        let shared = SharedRelation::from_relation(&rel, &mut p).unwrap();
        let permuted = shared.permute(&[2, 0, 1]);
        let back = permuted.reconstruct(&mut p);
        assert_eq!(back.rows[0][0], Value::Int(3));
        assert_eq!(back.rows[1][0], Value::Int(1));
        assert!(back.same_rows_unordered(&rel));
    }

    #[test]
    fn bool_columns_are_shareable() {
        let mut p = Protocol::new(2, 4);
        let schema = Schema::new(vec![ColumnDef::new("b", DataType::Bool)]);
        let rel = Relation::new(
            schema,
            vec![vec![Value::Bool(true)], vec![Value::Bool(false)]],
        )
        .unwrap();
        let shared = SharedRelation::from_relation(&rel, &mut p).unwrap();
        let back = shared.reconstruct(&mut p);
        assert_eq!(back.rows[0][0], Value::Int(1));
        assert_eq!(back.rows[1][0], Value::Int(0));
    }
}
