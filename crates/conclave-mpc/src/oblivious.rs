//! Oblivious relational sub-protocols over secret-shared relations.
//!
//! These are the building blocks §5.3–§5.4 of the paper reason about:
//! oblivious shuffles, Batcher sorting networks, merges, Laud-style oblivious
//! indexing (`select`), Cartesian-product joins, and the sorting-based
//! aggregation of Jónsson et al. Every function charges its primitive cost
//! to the [`Protocol`], so end-to-end simulated runtimes reflect the
//! asymptotics the paper's arguments rely on (e.g. the `𝒪(n²)` join vs the
//! `𝒪((n+m)·log(n+m))` hybrid-join indexing step).

use crate::cost::PrimitiveCounts;
use crate::protocol::Protocol;
use crate::relation::SharedRelation;
use crate::share::Shares;
use conclave_ir::ops::{aggregate_schema, join_schema, AggFunc};

/// Obliviously shuffles the rows of a shared relation.
///
/// The permutation is chosen inside the protocol simulator (standing in for a
/// resharing-based shuffle); the cost charged is proportional to the number
/// of shared elements moved.
pub fn shuffle(rel: &SharedRelation, proto: &mut Protocol) -> SharedRelation {
    proto.charge_shuffle(rel.num_elems());
    let perm = proto.random_permutation(rel.num_rows());
    rel.permute(&perm)
}

/// Obliviously sorts the relation by the named column using a Batcher
/// odd-even merge sorting network (`𝒪(n·log²n)` compare-exchanges).
pub fn sort_by(
    rel: &SharedRelation,
    column: &str,
    ascending: bool,
    proto: &mut Protocol,
) -> Result<SharedRelation, String> {
    let key = rel
        .col_index(column)
        .ok_or_else(|| format!("unknown sort column `{column}`"))?;
    let mut rows = rel.rows.clone();
    let n = rows.len();
    if n > 1 {
        for (i, j) in batcher_pairs(n) {
            compare_exchange(&mut rows, i, j, key, ascending, proto);
        }
    }
    Ok(SharedRelation {
        schema: rel.schema.clone(),
        rows,
    })
}

/// Obliviously merges several relations that are each sorted by `column`.
///
/// A full sorting network is not needed: the concatenation is processed with
/// a single odd-even merge pass, `𝒪(n·log n)` compare-exchanges.
pub fn merge_sorted(
    parts: &[SharedRelation],
    column: &str,
    ascending: bool,
    proto: &mut Protocol,
) -> Result<SharedRelation, String> {
    let cat = SharedRelation::concat(parts)?;
    let key = cat
        .col_index(column)
        .ok_or_else(|| format!("unknown merge column `{column}`"))?;
    let mut rows = cat.rows.clone();
    let n = rows.len();
    if n > 1 {
        // An odd-even transposition-style merge: log n passes of adjacent
        // compare-exchanges is sufficient for merging a small number of
        // sorted runs and has the right 𝒪(n·log n) cost profile. For full
        // generality (arbitrary interleavings) fall back to the sorting
        // network when more than two runs are merged.
        if parts.len() > 2 {
            return sort_by(&cat, column, ascending, proto);
        }
        let passes = (usize::BITS - (n - 1).leading_zeros()) as usize;
        for pass in 0..passes {
            let stride = 1usize << pass;
            let mut i = 0;
            while i + stride < n {
                compare_exchange(&mut rows, i, i + stride, key, ascending, proto);
                i += 1;
            }
        }
        // A final adjacent clean-up pass guarantees sortedness for two runs.
        for _ in 0..2 {
            for i in 0..n - 1 {
                compare_exchange(&mut rows, i, i + 1, key, ascending, proto);
            }
        }
    }
    Ok(SharedRelation {
        schema: cat.schema,
        rows,
    })
}

/// One oblivious compare-exchange: conditionally swaps rows `i` and `j` so
/// that the key at `i` precedes the key at `j` in the requested order.
fn compare_exchange(
    rows: &mut [Vec<Shares>],
    i: usize,
    j: usize,
    key: usize,
    ascending: bool,
    proto: &mut Protocol,
) {
    let (a, b) = (rows[i][key].clone(), rows[j][key].clone());
    // swap = 1 iff the pair is out of order.
    let swap = if ascending {
        proto.lt(&b, &a)
    } else {
        proto.lt(&a, &b)
    };
    let cols = rows[i].len();
    // Indexing (not iterators) because each column touches two distinct rows.
    #[allow(clippy::needless_range_loop)]
    for c in 0..cols {
        let x = rows[i][c].clone();
        let y = rows[j][c].clone();
        let new_i = proto.mux(&swap, &y, &x);
        let new_j = proto.mux(&swap, &x, &y);
        rows[i][c] = new_i;
        rows[j][c] = new_j;
    }
}

/// Generates the compare-exchange pairs of a Batcher odd-even merge sort for
/// `n` elements (indices `>= n` are skipped, which is the standard way to
/// handle non-power-of-two sizes).
fn batcher_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut p = 1;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut j = k % p;
            while j + k < n {
                for i in 0..k {
                    let a = i + j;
                    let b = i + j + k;
                    if b < n && (a / (p * 2)) == (b / (p * 2)) {
                        pairs.push((a, b));
                    }
                }
                j += k * 2;
            }
            k /= 2;
        }
        p *= 2;
    }
    pairs
}

/// Laud-style oblivious indexing (`select`): given a data relation and a
/// single-column relation of secret row indexes, returns the data rows at
/// those positions, in index order, still secret-shared.
///
/// The real protocol costs `𝒪((n+m)·log(n+m))` non-linear operations; that
/// cost is charged here while the selection itself is performed by the
/// protocol simulator.
pub fn oblivious_select(
    data: &SharedRelation,
    indexes: &SharedRelation,
    index_column: &str,
    proto: &mut Protocol,
) -> Result<SharedRelation, String> {
    let idx_col = indexes
        .col_index(index_column)
        .ok_or_else(|| format!("unknown index column `{index_column}`"))?;
    let n = data.num_rows() as u64;
    let m = indexes.num_rows() as u64;
    let total = (n + m).max(2);
    let log = 64 - total.leading_zeros() as u64;
    proto.charge(&PrimitiveCounts {
        mults: total * log * data.num_cols() as u64,
        ..Default::default()
    });
    let mut rows = Vec::with_capacity(indexes.num_rows());
    for row in &indexes.rows {
        let i = row[idx_col].reconstruct().to_i64();
        let i = usize::try_from(i).map_err(|_| "negative oblivious index".to_string())?;
        let data_row = data
            .rows
            .get(i)
            .ok_or_else(|| format!("oblivious index {i} out of bounds"))?;
        rows.push(data_row.clone());
    }
    Ok(SharedRelation {
        schema: data.schema.clone(),
        rows,
    })
}

/// Standard MPC join: a Cartesian-product comparison of all row pairs
/// (`𝒪(n·m)` oblivious equality tests), as implemented by the paper's
/// prototype for both Sharemind and Obliv-C (§6).
pub fn cartesian_join(
    left: &SharedRelation,
    right: &SharedRelation,
    left_keys: &[String],
    right_keys: &[String],
    proto: &mut Protocol,
) -> Result<SharedRelation, String> {
    let lk: Vec<usize> = left_keys
        .iter()
        .map(|c| {
            left.col_index(c)
                .ok_or_else(|| format!("unknown column `{c}`"))
        })
        .collect::<Result<_, _>>()?;
    let rk: Vec<usize> = right_keys
        .iter()
        .map(|c| {
            right
                .col_index(c)
                .ok_or_else(|| format!("unknown column `{c}`"))
        })
        .collect::<Result<_, _>>()?;
    let schema = join_schema(&left.schema, &right.schema, left_keys, right_keys)
        .map_err(|e| e.to_string())?;
    let right_keep: Vec<usize> = (0..right.num_cols()).filter(|i| !rk.contains(i)).collect();

    let mut rows = Vec::new();
    for lrow in &left.rows {
        for rrow in &right.rows {
            // All key columns must match; each pairwise test is an oblivious
            // equality.
            let mut matched = true;
            for (&lc, &rc) in lk.iter().zip(&rk) {
                let flag = proto.eq(&lrow[lc], &rrow[rc]);
                if flag.reconstruct().to_i64() == 0 {
                    matched = false;
                }
            }
            if matched {
                let mut out = lrow.clone();
                for &c in &right_keep {
                    out.push(rrow[c].clone());
                }
                rows.push(out);
            }
        }
    }
    Ok(SharedRelation { schema, rows })
}

/// Sorting-based oblivious aggregation (Jónsson et al.), as used by the
/// paper's prototype: the input must already be sorted (or grouped) by the
/// group-by column; the scan accumulates each group into its last row and the
/// non-final rows are discarded after a shuffle-and-reveal of the equality
/// flags.
pub fn aggregate_sorted(
    rel: &SharedRelation,
    group_by: &[String],
    func: AggFunc,
    over: Option<&str>,
    out: &str,
    proto: &mut Protocol,
) -> Result<SharedRelation, String> {
    let key_cols: Vec<usize> = group_by
        .iter()
        .map(|c| {
            rel.col_index(c)
                .ok_or_else(|| format!("unknown column `{c}`"))
        })
        .collect::<Result<_, _>>()?;
    let over_col = match over {
        Some(o) => Some(
            rel.col_index(o)
                .ok_or_else(|| format!("unknown column `{o}`"))?,
        ),
        None => None,
    };
    if func.needs_over() && over_col.is_none() {
        return Err(format!("{func} requires an over column"));
    }
    let schema =
        aggregate_schema(&rel.schema, group_by, func, over, out).map_err(|e| e.to_string())?;

    let n = rel.num_rows();
    if n == 0 {
        return Ok(SharedRelation::empty(schema));
    }

    // Scalar aggregation: a linear scan of local additions (SUM/COUNT) or
    // oblivious min/max selection.
    if key_cols.is_empty() {
        let value = match func {
            AggFunc::Count => proto.constant(n as i64),
            AggFunc::Sum => {
                let c = over_col.expect("checked above");
                let mut acc = proto.constant(0);
                for row in &rel.rows {
                    acc = proto.add(&acc, &row[c]);
                }
                acc
            }
            AggFunc::Min | AggFunc::Max => {
                let c = over_col.expect("checked above");
                let mut acc = rel.rows[0][c].clone();
                for row in rel.rows.iter().skip(1) {
                    let cond = if func == AggFunc::Min {
                        proto.lt(&row[c], &acc)
                    } else {
                        proto.lt(&acc, &row[c])
                    };
                    acc = proto.mux(&cond, &row[c], &acc);
                }
                acc
            }
        };
        return Ok(SharedRelation {
            schema,
            rows: vec![vec![value]],
        });
    }

    // Grouped aggregation over a key-sorted relation.
    let mut acc: Vec<Shares> = Vec::with_capacity(n); // running aggregate per row
    let mut last_of_group: Vec<Shares> = Vec::with_capacity(n);
    let init = |proto: &mut Protocol, row: &Vec<Shares>| -> Shares {
        match func {
            AggFunc::Count => proto.constant(1),
            _ => row[over_col.expect("checked above")].clone(),
        }
    };
    acc.push(init(proto, &rel.rows[0]));
    for i in 1..n {
        // eq = 1 iff this row belongs to the same group as the previous one
        // (all key columns equal).
        let mut eq = proto.constant(1);
        for &k in &key_cols {
            let e = proto.eq(&rel.rows[i][k], &rel.rows[i - 1][k]);
            eq = proto.mul(&eq, &e);
        }
        let current = init(proto, &rel.rows[i]);
        let combined = match func {
            AggFunc::Count | AggFunc::Sum => proto.add(&acc[i - 1], &current),
            AggFunc::Min => {
                let cond = proto.lt(&acc[i - 1], &current);
                proto.mux(&cond, &acc[i - 1], &current)
            }
            AggFunc::Max => {
                let cond = proto.lt(&current, &acc[i - 1]);
                proto.mux(&cond, &acc[i - 1], &current)
            }
        };
        // If same group, carry the combined aggregate; otherwise restart.
        let value = proto.mux(&eq, &combined, &current);
        acc.push(value);
        // The previous row is the last of its group iff eq == 0.
        let one = proto.constant(1);
        let not_eq = proto.sub(&one, &eq);
        last_of_group.push(not_eq);
    }
    // The final row is always the last of its group.
    last_of_group.push(proto.constant(1));

    // Build candidate output rows (group keys + aggregate), shuffle them
    // together with their flags, reveal the flags and discard non-final rows
    // — revealing only the (already public, §5.3) result cardinality.
    let mut candidates = Vec::with_capacity(n);
    for i in 0..n {
        let mut row: Vec<Shares> = key_cols.iter().map(|&k| rel.rows[i][k].clone()).collect();
        row.push(acc[i].clone());
        row.push(last_of_group[i].clone());
        candidates.push(row);
    }
    let mut flagged_schema = schema.clone();
    flagged_schema
        .push(conclave_ir::schema::ColumnDef::new(
            "__last_of_group",
            conclave_ir::types::DataType::Int,
        ))
        .map_err(|e| e.to_string())?;
    let tmp = SharedRelation {
        schema: flagged_schema,
        rows: candidates,
    };
    let shuffled = shuffle(&tmp, proto);
    let mut rows = Vec::new();
    for row in shuffled.rows {
        let flag_share = row.last().expect("flag column present").clone();
        let keep = proto.open(&flag_share) == 1;
        if keep {
            rows.push(row[..row.len() - 1].to_vec());
        }
    }
    Ok(SharedRelation { schema, rows })
}

/// Multiplies operand columns into a new (or replaced) output column, one
/// Beaver multiplication per row per extra factor.
pub fn multiply_columns(
    rel: &SharedRelation,
    out: &str,
    operand_cols: &[String],
    proto: &mut Protocol,
) -> Result<SharedRelation, String> {
    let idxs: Vec<usize> = operand_cols
        .iter()
        .map(|c| {
            rel.col_index(c)
                .ok_or_else(|| format!("unknown column `{c}`"))
        })
        .collect::<Result<_, _>>()?;
    if idxs.is_empty() {
        return Err("multiply needs at least one operand column".into());
    }
    let replace = rel.col_index(out);
    let mut schema = rel.schema.clone();
    if replace.is_none() {
        schema
            .push(conclave_ir::schema::ColumnDef::new(
                out,
                conclave_ir::types::DataType::Int,
            ))
            .map_err(|e| e.to_string())?;
    }
    let mut rows = Vec::with_capacity(rel.num_rows());
    for row in &rel.rows {
        let mut acc = row[idxs[0]].clone();
        for &i in &idxs[1..] {
            acc = proto.mul(&acc, &row[i]);
        }
        let mut new_row = row.clone();
        match replace {
            Some(i) => new_row[i] = acc,
            None => new_row.push(acc),
        }
        rows.push(new_row);
    }
    Ok(SharedRelation { schema, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conclave_engine::{execute, Relation};
    use conclave_ir::ops::Operator;

    fn share(rel: &Relation, proto: &mut Protocol) -> SharedRelation {
        SharedRelation::from_relation(rel, proto).unwrap()
    }

    #[test]
    fn shuffle_preserves_multiset_and_charges_cost() {
        let mut p = Protocol::new(3, 1);
        let rel = Relation::from_ints(
            &["k", "v"],
            &(0..20).map(|i| vec![i, i * 10]).collect::<Vec<_>>(),
        );
        let shared = share(&rel, &mut p);
        let shuffled = shuffle(&shared, &mut p);
        let back = shuffled.reconstruct(&mut p);
        assert!(back.same_rows_unordered(&rel));
        assert_eq!(p.counts().shuffled_elems, 40);
    }

    #[test]
    fn batcher_pairs_sort_correctly_for_various_sizes() {
        for n in [1usize, 2, 3, 5, 8, 13, 16, 31] {
            let mut vals: Vec<i64> = (0..n as i64).rev().collect();
            // Apply the network on cleartext values to validate the pair set.
            for (i, j) in batcher_pairs(n) {
                if vals[i] > vals[j] {
                    vals.swap(i, j);
                }
            }
            let mut expected: Vec<i64> = (0..n as i64).collect();
            expected.sort_unstable();
            assert_eq!(vals, expected, "network failed for n={n}");
        }
    }

    #[test]
    fn oblivious_sort_matches_cleartext_sort() {
        let mut p = Protocol::new(3, 2);
        let rel = Relation::from_ints(
            &["k", "v"],
            &[
                vec![5, 50],
                vec![1, 10],
                vec![4, 40],
                vec![2, 20],
                vec![3, 30],
            ],
        );
        let shared = share(&rel, &mut p);
        let sorted = sort_by(&shared, "k", true, &mut p).unwrap();
        let back = sorted.reconstruct(&mut p);
        assert!(back.is_sorted_by("k", true));
        assert!(back.same_rows_unordered(&rel));
        assert!(p.counts().comparisons > 0);
        // Descending order too.
        let sorted_desc = sort_by(&shared, "k", false, &mut p).unwrap();
        assert!(sorted_desc.reconstruct(&mut p).is_sorted_by("k", false));
        assert!(sort_by(&shared, "zzz", true, &mut p).is_err());
    }

    #[test]
    fn merge_of_sorted_runs_is_sorted() {
        let mut p = Protocol::new(3, 3);
        let a = Relation::from_ints(&["k"], &[vec![1], vec![4], vec![7]]);
        let b = Relation::from_ints(&["k"], &[vec![2], vec![3], vec![9]]);
        let sa = share(&a, &mut p);
        let sb = share(&b, &mut p);
        let merged = merge_sorted(&[sa, sb], "k", true, &mut p).unwrap();
        let back = merged.reconstruct(&mut p);
        assert_eq!(back.num_rows(), 6);
        assert!(back.is_sorted_by("k", true));
    }

    #[test]
    fn merge_three_runs_falls_back_to_sort() {
        let mut p = Protocol::new(3, 9);
        let a = Relation::from_ints(&["k"], &[vec![5], vec![6]]);
        let b = Relation::from_ints(&["k"], &[vec![1], vec![9]]);
        let c = Relation::from_ints(&["k"], &[vec![0], vec![7]]);
        let parts = [share(&a, &mut p), share(&b, &mut p), share(&c, &mut p)];
        let merged = merge_sorted(&parts, "k", true, &mut p).unwrap();
        assert!(merged.reconstruct(&mut p).is_sorted_by("k", true));
    }

    #[test]
    fn oblivious_select_matches_cleartext_select() {
        let mut p = Protocol::new(3, 4);
        let data = Relation::from_ints(
            &["a", "b"],
            &[vec![0, 0], vec![1, 10], vec![2, 20], vec![3, 30]],
        );
        let idx = Relation::from_ints(&["idx"], &[vec![3], vec![1]]);
        let sdata = share(&data, &mut p);
        let sidx = share(&idx, &mut p);
        let selected = oblivious_select(&sdata, &sidx, "idx", &mut p).unwrap();
        let back = selected.reconstruct(&mut p);
        let expected = execute(
            &Operator::ObliviousSelect {
                index_column: "idx".into(),
            },
            &[&data, &idx],
        )
        .unwrap();
        assert_eq!(back.rows, expected.rows);
        assert!(p.counts().mults > 0, "select must charge its cost");
        // Errors.
        let bad_idx = Relation::from_ints(&["idx"], &[vec![99]]);
        let sbad = share(&bad_idx, &mut p);
        assert!(oblivious_select(&sdata, &sbad, "idx", &mut p).is_err());
        assert!(oblivious_select(&sdata, &sidx, "nope", &mut p).is_err());
    }

    #[test]
    fn cartesian_join_matches_cleartext_join_and_costs_n_squared() {
        let mut p = Protocol::new(3, 5);
        let left =
            Relation::from_ints(&["ssn", "zip"], &[vec![1, 100], vec![2, 200], vec![3, 300]]);
        let right =
            Relation::from_ints(&["ssn", "score"], &[vec![2, 70], vec![3, 65], vec![3, 66]]);
        let sl = share(&left, &mut p);
        let sr = share(&right, &mut p);
        let joined =
            cartesian_join(&sl, &sr, &["ssn".to_string()], &["ssn".to_string()], &mut p).unwrap();
        let back = joined.reconstruct(&mut p);
        let expected = execute(
            &Operator::Join {
                left_keys: vec!["ssn".into()],
                right_keys: vec!["ssn".into()],
                kind: conclave_ir::ops::JoinKind::Inner,
            },
            &[&left, &right],
        )
        .unwrap();
        assert!(back.same_rows_unordered(&expected));
        assert_eq!(p.counts().equalities, 9, "3x3 Cartesian comparisons");
        assert!(
            cartesian_join(&sl, &sr, &["zzz".to_string()], &["ssn".to_string()], &mut p).is_err()
        );
    }

    #[test]
    fn sorted_aggregation_matches_cleartext_sum_and_count() {
        let mut p = Protocol::new(3, 6);
        let rel = Relation::from_ints(
            &["zip", "score"],
            &[
                vec![1, 700],
                vec![1, 650],
                vec![2, 600],
                vec![3, 720],
                vec![3, 680],
            ],
        );
        let shared = share(&rel, &mut p);
        for (func, over, out) in [
            (AggFunc::Sum, Some("score"), "total"),
            (AggFunc::Count, None, "n"),
            (AggFunc::Min, Some("score"), "lo"),
            (AggFunc::Max, Some("score"), "hi"),
        ] {
            let agg =
                aggregate_sorted(&shared, &["zip".to_string()], func, over, out, &mut p).unwrap();
            let back = agg.reconstruct(&mut p);
            let expected = execute(
                &Operator::Aggregate {
                    group_by: vec!["zip".into()],
                    func,
                    over: over.map(|s| s.to_string()),
                    out: out.to_string(),
                },
                &[&rel],
            )
            .unwrap();
            assert!(
                back.same_rows_unordered(&expected),
                "{func} aggregation mismatch:\n{back}\nvs\n{expected}"
            );
        }
    }

    #[test]
    fn scalar_aggregation_and_empty_input() {
        let mut p = Protocol::new(3, 7);
        let rel = Relation::from_ints(&["v"], &[vec![5], vec![7], vec![-2]]);
        let shared = share(&rel, &mut p);
        let sum = aggregate_sorted(&shared, &[], AggFunc::Sum, Some("v"), "t", &mut p).unwrap();
        assert_eq!(
            sum.reconstruct(&mut p).rows[0][0],
            conclave_ir::types::Value::Int(10)
        );
        let min = aggregate_sorted(&shared, &[], AggFunc::Min, Some("v"), "m", &mut p).unwrap();
        assert_eq!(
            min.reconstruct(&mut p).rows[0][0],
            conclave_ir::types::Value::Int(-2)
        );
        let max = aggregate_sorted(&shared, &[], AggFunc::Max, Some("v"), "m", &mut p).unwrap();
        assert_eq!(
            max.reconstruct(&mut p).rows[0][0],
            conclave_ir::types::Value::Int(7)
        );
        let cnt = aggregate_sorted(&shared, &[], AggFunc::Count, None, "n", &mut p).unwrap();
        assert_eq!(
            cnt.reconstruct(&mut p).rows[0][0],
            conclave_ir::types::Value::Int(3)
        );

        let empty = SharedRelation::empty(conclave_ir::schema::Schema::ints(&["v"]));
        let agg = aggregate_sorted(&empty, &[], AggFunc::Sum, Some("v"), "t", &mut p).unwrap();
        assert_eq!(agg.num_rows(), 0);
        // Missing over column.
        assert!(aggregate_sorted(&shared, &[], AggFunc::Sum, None, "t", &mut p).is_err());
        assert!(aggregate_sorted(&shared, &[], AggFunc::Sum, Some("zzz"), "t", &mut p).is_err());
    }

    #[test]
    fn full_mpc_aggregation_pipeline_sort_then_aggregate() {
        // The paper's standard MPC aggregation = oblivious sort + linear scan.
        let mut p = Protocol::new(3, 8);
        let rel = Relation::from_ints(
            &["k", "v"],
            &[
                vec![3, 1],
                vec![1, 5],
                vec![3, 2],
                vec![2, 7],
                vec![1, 1],
                vec![2, 1],
            ],
        );
        let shared = share(&rel, &mut p);
        let sorted = sort_by(&shared, "k", true, &mut p).unwrap();
        let agg = aggregate_sorted(
            &sorted,
            &["k".to_string()],
            AggFunc::Sum,
            Some("v"),
            "s",
            &mut p,
        )
        .unwrap();
        let back = agg.reconstruct(&mut p);
        let expected = execute(
            &Operator::Aggregate {
                group_by: vec!["k".into()],
                func: AggFunc::Sum,
                over: Some("v".into()),
                out: "s".into(),
            },
            &[&rel],
        )
        .unwrap();
        assert!(back.same_rows_unordered(&expected));
    }

    #[test]
    fn empty_relations_flow_through_every_oblivious_operator() {
        let mut p = Protocol::new(3, 21);
        let schema = conclave_ir::schema::Schema::ints(&["k", "v"]);
        let empty = SharedRelation::empty(schema.clone());
        assert_eq!(shuffle(&empty, &mut p).num_rows(), 0);
        assert_eq!(sort_by(&empty, "k", true, &mut p).unwrap().num_rows(), 0);
        assert_eq!(
            merge_sorted(&[empty.clone(), empty.clone()], "k", true, &mut p)
                .unwrap()
                .num_rows(),
            0
        );
        let grouped = aggregate_sorted(
            &empty,
            &["k".to_string()],
            AggFunc::Sum,
            Some("v"),
            "s",
            &mut p,
        )
        .unwrap();
        assert_eq!(grouped.num_rows(), 0);
        assert_eq!(grouped.schema.names(), vec!["k", "s"]);
        // Joining with an empty side yields no rows and no equality tests.
        let some = share(&Relation::from_ints(&["k", "v"], &[vec![1, 2]]), &mut p);
        p.reset_counts();
        let joined = cartesian_join(
            &empty,
            &some,
            &["k".to_string()],
            &["k".to_string()],
            &mut p,
        )
        .unwrap();
        assert_eq!(joined.num_rows(), 0);
        assert_eq!(p.counts().equalities, 0);
        // Selecting with an empty index relation selects nothing.
        let empty_idx = SharedRelation::empty(conclave_ir::schema::Schema::ints(&["i"]));
        let selected = oblivious_select(&some, &empty_idx, "i", &mut p).unwrap();
        assert_eq!(selected.num_rows(), 0);
        // Selecting from empty data with a non-empty index is out of bounds.
        let idx = share(&Relation::from_ints(&["i"], &[vec![0]]), &mut p);
        assert!(oblivious_select(&empty, &idx, "i", &mut p).is_err());
    }

    #[test]
    fn all_duplicate_join_keys_produce_the_full_cross_product_obliviously() {
        let mut p = Protocol::new(3, 22);
        let rows: Vec<Vec<i64>> = (0..4).map(|i| vec![7, i]).collect();
        let rel = Relation::from_ints(&["k", "v"], &rows);
        let sl = share(&rel, &mut p);
        let sr = share(&rel, &mut p);
        p.reset_counts();
        let joined =
            cartesian_join(&sl, &sr, &["k".to_string()], &["k".to_string()], &mut p).unwrap();
        assert_eq!(joined.num_rows(), 16, "4x4 all-match cross product");
        assert_eq!(p.counts().equalities, 16, "one equality test per pair");
        // And an all-duplicate sort/aggregate collapses to a single group.
        let sorted = sort_by(&sl, "k", true, &mut p).unwrap();
        let agg = aggregate_sorted(
            &sorted,
            &["k".to_string()],
            AggFunc::Sum,
            Some("v"),
            "s",
            &mut p,
        )
        .unwrap();
        let back = agg.reconstruct(&mut p);
        assert_eq!(back.num_rows(), 1);
        assert_eq!(
            back.rows[0],
            vec![
                conclave_ir::types::Value::Int(7),
                conclave_ir::types::Value::Int(6)
            ]
        );
    }

    #[test]
    fn single_row_inputs_are_fixed_points_of_oblivious_operators() {
        let mut p = Protocol::new(3, 23);
        let rel = Relation::from_ints(&["k", "v"], &[vec![3, 4]]);
        let shared = share(&rel, &mut p);
        assert_eq!(shuffle(&shared, &mut p).reconstruct(&mut p).rows, rel.rows);
        assert_eq!(
            sort_by(&shared, "k", true, &mut p)
                .unwrap()
                .reconstruct(&mut p)
                .rows,
            rel.rows
        );
        let agg = aggregate_sorted(
            &shared,
            &["k".to_string()],
            AggFunc::Min,
            Some("v"),
            "m",
            &mut p,
        )
        .unwrap();
        assert_eq!(agg.reconstruct(&mut p).rows, rel.rows);
        let joined = cartesian_join(
            &shared,
            &shared,
            &["k".to_string()],
            &["k".to_string()],
            &mut p,
        )
        .unwrap();
        assert_eq!(joined.num_rows(), 1);
    }

    #[test]
    fn multiply_columns_matches_cleartext() {
        let mut p = Protocol::new(3, 10);
        let rel = Relation::from_ints(&["a", "b"], &[vec![2, 3], vec![-4, 5]]);
        let shared = share(&rel, &mut p);
        let out =
            multiply_columns(&shared, "ab", &["a".to_string(), "b".to_string()], &mut p).unwrap();
        let back = out.reconstruct(&mut p);
        assert_eq!(
            back.column_values("ab").unwrap(),
            vec![
                conclave_ir::types::Value::Int(6),
                conclave_ir::types::Value::Int(-20)
            ]
        );
        assert_eq!(p.counts().mults, 2);
        // Replacing an existing column.
        let squared =
            multiply_columns(&shared, "a", &["a".to_string(), "a".to_string()], &mut p).unwrap();
        assert_eq!(squared.num_cols(), 2);
        assert!(multiply_columns(&shared, "x", &[], &mut p).is_err());
        assert!(multiply_columns(&shared, "x", &["zzz".to_string()], &mut p).is_err());
    }
}
