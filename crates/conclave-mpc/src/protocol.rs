//! The secret-sharing protocol engine.
//!
//! [`Protocol`] provides the primitives the oblivious relational operators
//! are built from: sharing and opening values, linear arithmetic, Beaver
//! multiplication, oblivious comparison/equality, and multiplexing. It keeps
//! a [`PrimitiveCounts`] tally that the cost model converts into simulated
//! wall-clock time.
//!
//! ## Fidelity note
//!
//! Sharing, reconstruction, linear operations and Beaver multiplication are
//! implemented for real over `Z_{2^64}` shares. Oblivious comparison and
//! equality are *simulated-oblivious*: the result bit is computed by an
//! in-process simulator (standing in for the bit-decomposition sub-protocol)
//! and re-shared, while the primitive counter charges the full documented
//! cost of the real protocol. This preserves both the data flow (inputs and
//! outputs remain secret-shared) and the performance shape, which is what the
//! paper's evaluation depends on.

use crate::cost::PrimitiveCounts;
use crate::ring::RingElem;
use crate::share::Shares;
use crate::triples::TripleDealer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A secret-sharing MPC protocol instance shared by one MPC job.
#[derive(Debug)]
pub struct Protocol {
    parties: usize,
    dealer: TripleDealer,
    rng: StdRng,
    counts: PrimitiveCounts,
}

impl Protocol {
    /// Creates a protocol instance for `parties` computing parties.
    pub fn new(parties: usize, seed: u64) -> Self {
        assert!(parties >= 2, "MPC needs at least two parties");
        Protocol {
            parties,
            dealer: TripleDealer::new(parties),
            rng: StdRng::seed_from_u64(seed),
            counts: PrimitiveCounts::default(),
        }
    }

    /// Number of computing parties.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Snapshot of the primitive counters.
    pub fn counts(&self) -> PrimitiveCounts {
        self.counts
    }

    /// Resets the primitive counters (e.g. between measured phases).
    pub fn reset_counts(&mut self) {
        self.counts = PrimitiveCounts::default();
    }

    /// Access to the protocol's RNG (for randomized sub-protocols).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    // ------------------------------------------------------------------
    // Input / output.
    // ------------------------------------------------------------------

    /// Secret-shares an input value into the MPC.
    pub fn share_value(&mut self, v: i64) -> Shares {
        self.counts.input_elems += 1;
        Shares::share(RingElem::from_i64(v), self.parties, &mut self.rng)
    }

    /// Secret-shares a whole column of input values at once (one bulk call
    /// per column instead of per-cell call sites). Delegates to
    /// [`Protocol::share_value`] so accounting and share construction have a
    /// single source of truth.
    pub fn share_column(&mut self, values: &[i64]) -> Vec<Shares> {
        values.iter().map(|&v| self.share_value(v)).collect()
    }

    /// Shares a public constant (no randomness, no input cost).
    pub fn constant(&self, v: i64) -> Shares {
        Shares::constant(RingElem::from_i64(v), self.parties)
    }

    /// Opens (reveals) a shared value to all parties.
    pub fn open(&mut self, x: &Shares) -> i64 {
        self.counts.opened_elems += 1;
        x.reconstruct().to_i64()
    }

    /// Reveals a shared value to a single party (e.g. the STP). Costs the
    /// same as an open but is tracked identically; the *authorization* to do
    /// this is checked by the compiler, not here.
    pub fn reveal(&mut self, x: &Shares) -> i64 {
        self.counts.opened_elems += 1;
        x.reconstruct().to_i64()
    }

    // ------------------------------------------------------------------
    // Linear operations (free).
    // ------------------------------------------------------------------

    /// Adds two shared values (local).
    pub fn add(&self, x: &Shares, y: &Shares) -> Shares {
        x.add(y)
    }

    /// Subtracts two shared values (local).
    pub fn sub(&self, x: &Shares, y: &Shares) -> Shares {
        x.sub(y)
    }

    /// Adds a public constant (local).
    pub fn add_public(&self, x: &Shares, c: i64) -> Shares {
        x.add_public(RingElem::from_i64(c))
    }

    /// Multiplies by a public constant (local).
    pub fn mul_public(&self, x: &Shares, c: i64) -> Shares {
        x.mul_public(RingElem::from_i64(c))
    }

    // ------------------------------------------------------------------
    // Non-linear operations (communication).
    // ------------------------------------------------------------------

    /// Multiplies two shared values with a Beaver triple (one round).
    pub fn mul(&mut self, x: &Shares, y: &Shares) -> Shares {
        self.counts.mults += 1;
        let (z, _d, _e) = self.dealer.beaver_multiply(x, y, &mut self.rng);
        z
    }

    /// Oblivious less-than: returns a sharing of `1` if `x < y`, else `0`.
    pub fn lt(&mut self, x: &Shares, y: &Shares) -> Shares {
        self.counts.comparisons += 1;
        let bit = i64::from(x.reconstruct().to_i64() < y.reconstruct().to_i64());
        Shares::share(RingElem::from_i64(bit), self.parties, &mut self.rng)
    }

    /// Oblivious equality: returns a sharing of `1` if `x == y`, else `0`.
    pub fn eq(&mut self, x: &Shares, y: &Shares) -> Shares {
        self.counts.equalities += 1;
        let bit = i64::from(x.reconstruct().to_i64() == y.reconstruct().to_i64());
        Shares::share(RingElem::from_i64(bit), self.parties, &mut self.rng)
    }

    /// Oblivious multiplexer: returns `a` if the shared bit `c` is 1, else
    /// `b`. Computed as `b + c·(a − b)`, i.e. one multiplication.
    pub fn mux(&mut self, c: &Shares, a: &Shares, b: &Shares) -> Shares {
        let diff = a.sub(b);
        let scaled = self.mul(c, &diff);
        b.add(&scaled)
    }

    /// Records the cost of obliviously shuffling `elements` field elements
    /// (the driver calls this from the relational shuffle).
    pub fn charge_shuffle(&mut self, elements: u64) {
        self.counts.shuffled_elems += elements;
    }

    /// Adds externally-computed primitive counts (used by analytical
    /// estimators that skip real execution).
    pub fn charge(&mut self, extra: &PrimitiveCounts) {
        self.counts.merge(extra);
    }

    /// Generates a random permutation of `0..n` (for oblivious shuffles); the
    /// permutation itself stays inside the protocol simulator.
    pub fn random_permutation(&mut self, n: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        // Fisher–Yates.
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proto() -> Protocol {
        Protocol::new(3, 42)
    }

    #[test]
    fn share_open_round_trip() {
        let mut p = proto();
        for v in [-5i64, 0, 7, i64::MAX] {
            let s = p.share_value(v);
            assert_eq!(p.open(&s), v);
        }
        assert_eq!(p.counts().input_elems, 4);
        assert_eq!(p.counts().opened_elems, 4);
    }

    #[test]
    #[should_panic(expected = "at least two parties")]
    fn rejects_single_party() {
        let _ = Protocol::new(1, 0);
    }

    #[test]
    fn linear_ops_are_free() {
        let mut p = proto();
        let a = p.share_value(10);
        let b = p.share_value(4);
        let before = p.counts().nonlinear_ops();
        let sum = p.add(&a, &b);
        let diff = p.sub(&a, &b);
        let scaled = p.mul_public(&a, 3);
        let shifted = p.add_public(&a, 100);
        assert_eq!(p.counts().nonlinear_ops(), before);
        assert_eq!(p.open(&sum), 14);
        assert_eq!(p.open(&diff), 6);
        assert_eq!(p.open(&scaled), 30);
        assert_eq!(p.open(&shifted), 110);
    }

    #[test]
    fn multiplication_counts_and_is_correct() {
        let mut p = proto();
        let a = p.share_value(-7);
        let b = p.share_value(6);
        let prod = p.mul(&a, &b);
        assert_eq!(p.open(&prod), -42);
        assert_eq!(p.counts().mults, 1);
    }

    #[test]
    fn comparisons_and_equality() {
        let mut p = proto();
        let a = p.share_value(3);
        let b = p.share_value(5);
        let lt_ab = p.lt(&a, &b);
        let lt_ba = p.lt(&b, &a);
        let eq_aa = p.eq(&a, &a.clone());
        let eq_ab = p.eq(&a, &b);
        assert_eq!(p.open(&lt_ab), 1);
        assert_eq!(p.open(&lt_ba), 0);
        assert_eq!(p.open(&eq_aa), 1);
        assert_eq!(p.open(&eq_ab), 0);
        let c = p.counts();
        assert_eq!(c.comparisons, 2);
        assert_eq!(c.equalities, 2);
    }

    #[test]
    fn mux_selects_by_bit() {
        let mut p = proto();
        let a = p.share_value(111);
        let b = p.share_value(222);
        let one = p.share_value(1);
        let zero = p.share_value(0);
        let pick_a = p.mux(&one, &a, &b);
        let pick_b = p.mux(&zero, &a, &b);
        assert_eq!(p.open(&pick_a), 111);
        assert_eq!(p.open(&pick_b), 222);
        assert_eq!(p.counts().mults, 2);
    }

    #[test]
    fn constants_and_charges() {
        let mut p = proto();
        let c = p.constant(9);
        assert_eq!(p.open(&c), 9);
        p.charge_shuffle(100);
        p.charge(&PrimitiveCounts {
            mults: 7,
            ..Default::default()
        });
        assert_eq!(p.counts().shuffled_elems, 100);
        assert_eq!(p.counts().mults, 7);
        p.reset_counts();
        assert_eq!(p.counts(), PrimitiveCounts::default());
        assert_eq!(p.parties(), 3);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut p = proto();
        let perm = p.random_permutation(100);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(perm, (0..100).collect::<Vec<_>>(), "should be shuffled");
    }
}
